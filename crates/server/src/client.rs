//! `ServerClient` — the library-side of the wire protocol, used by the
//! integration tests, the benches, and the `ssketch` CLI.
//!
//! One blocking TCP connection. Queries and sequenced sends are strict
//! request/reply; unsequenced [`ServerClient::send_all`] pipelines a
//! small window of batches so encode overlaps the server's decode +
//! ingest. The client owns backpressure handling:
//! [`ServerClient::send_batch`] surfaces THROTTLE as a [`BatchOutcome`],
//! while [`ServerClient::send_all`] retries with capped exponential
//! backoff until the stream is fully acknowledged.
//!
//! With a nonzero [`ClientConfig::client_id`] every batch carries a
//! per-stream sequence number, making sends **idempotent** at the
//! server: after a reconnect, [`ServerClient::resume`] asks how far the
//! server got and the producer replays only what was never applied. The
//! reconnect loop itself lives in
//! [`ResilientClient`](crate::ResilientClient).

use bytes::Bytes;
use skimmed_sketch::{decode_skimmed, SkimmedSchema, SkimmedSketch};
use std::io;
use std::net::{TcpStream, ToSocketAddrs};
use std::sync::Arc;
use std::time::Duration;
use stream_model::update::Update;
use stream_model::Domain;
use stream_wire::{
    ErrorCode, Frame, InspectReport, ServerInfo, ShardMapInfo, StreamId, TraceContext, WireError,
    INSPECT_ALL, PROTOCOL_VERSION,
};

/// Client-side failures.
#[derive(Debug)]
pub enum ClientError {
    /// Socket-level failure.
    Io(io::Error),
    /// Frame-level failure (corruption, truncation, version skew).
    Wire(WireError),
    /// The server answered with an ERROR frame.
    Server {
        /// Machine-readable code.
        code: ErrorCode,
        /// Server-supplied context.
        message: String,
    },
    /// The server sent a well-formed frame that does not answer the
    /// request (protocol bug on one side).
    UnexpectedFrame(&'static str),
    /// No reply arrived within the client's patience window.
    Timeout,
    /// The handshake was rejected with [`ErrorCode::UnsupportedVersion`]:
    /// the server does not speak the protocol version this client
    /// offered. Typed so mixed v2/v3 fleets fail loud during rollout —
    /// callers can distinguish "wrong software version" from a generic
    /// protocol error and name both sides in their diagnostics.
    VersionMismatch {
        /// The protocol version this client offered in HELLO.
        offered: u16,
        /// Server-supplied context (names the server's accepted range).
        message: String,
    },
    /// A protocol >= 3 request (sharding, replication, failover) was
    /// attempted on a session that negotiated an older protocol. Raised
    /// client-side before any bytes hit the wire, so a v2 session never
    /// sends a frame kind its peer cannot decode.
    V3Required {
        /// The protocol this session negotiated at the handshake.
        negotiated: u16,
    },
    /// A [`ResilientClient`](crate::ResilientClient) spent its whole
    /// reconnect budget without completing the operation.
    Exhausted {
        /// Reconnect attempts made.
        attempts: u32,
        /// The failure that ended the last attempt.
        last: Box<ClientError>,
    },
}

impl std::fmt::Display for ClientError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            ClientError::Io(e) => write!(f, "client i/o error: {e}"),
            ClientError::Wire(e) => write!(f, "client wire error: {e}"),
            ClientError::Server { code, message } => {
                write!(f, "server error {code:?}: {message}")
            }
            ClientError::UnexpectedFrame(what) => write!(f, "unexpected reply: {what}"),
            ClientError::Timeout => write!(f, "timed out waiting for a reply"),
            ClientError::VersionMismatch { offered, message } => {
                write!(f, "protocol version {offered} rejected: {message}")
            }
            ClientError::V3Required { negotiated } => {
                write!(f, "request requires protocol >= 3, session negotiated {negotiated}")
            }
            ClientError::Exhausted { attempts, last } => {
                write!(f, "gave up after {attempts} reconnect attempts: {last}")
            }
        }
    }
}

impl std::error::Error for ClientError {}

impl From<io::Error> for ClientError {
    fn from(e: io::Error) -> Self {
        ClientError::Io(e)
    }
}

impl From<WireError> for ClientError {
    fn from(e: WireError) -> Self {
        match e {
            WireError::Io(io) => ClientError::Io(io),
            other => ClientError::Wire(other),
        }
    }
}

// The backoff policy is shared with the cluster router's shard-retry
// path; the single definition (and the test pinning its jitter
// sequence) lives in `ss-retry`.
pub use ss_retry::{Backoff, BackoffConfig};

/// Connection-level configuration for [`ServerClient`].
#[derive(Debug, Clone)]
pub struct ClientConfig {
    /// Client name recorded in server logs.
    pub name: String,
    /// Stable producer identity for idempotent sends; `0` (the default)
    /// opts out of sequencing.
    pub client_id: u64,
    /// Socket read timeout — also the reply-poll tick.
    pub read_timeout: Duration,
    /// Socket write timeout.
    pub write_timeout: Duration,
    /// Idle-retry budget: total reply patience ≈ read timeout × retries.
    pub reply_retries: u32,
    /// Backoff policy for THROTTLE retries (and reconnects, in
    /// [`ResilientClient`](crate::ResilientClient)).
    pub backoff: BackoffConfig,
    /// Protocol version offered in HELLO. Defaults to
    /// [`PROTOCOL_VERSION`]; pin it lower (within the server's accepted
    /// range) to exercise downgraded sessions during mixed-version
    /// rollouts. v3-only requests on such a session fail client-side
    /// with [`ClientError::V3Required`].
    pub offer_protocol: u16,
    /// Stamp every request with a fresh causal trace id (see the wire
    /// grammar's trace extension) and record client-side Request spans
    /// in the flight recorder. Requires the `telemetry` feature to have
    /// any effect; without it requests go out byte-identical to a
    /// pre-trace client's.
    pub trace: bool,
}

impl Default for ClientConfig {
    /// 1 s read tick × 30 retries ≈ 30 s per reply, 10 s write timeout,
    /// unsequenced, default backoff.
    fn default() -> Self {
        ClientConfig {
            name: "ss-client".to_string(),
            client_id: 0,
            read_timeout: Duration::from_secs(1),
            write_timeout: Duration::from_secs(10),
            reply_retries: 30,
            backoff: BackoffConfig::default(),
            offer_protocol: PROTOCOL_VERSION,
            trace: false,
        }
    }
}

/// Result of one non-blocking batch send.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum BatchOutcome {
    /// The server queued the batch; `accepted` updates acknowledged.
    Accepted(u64),
    /// The server's ingest queue was full; the batch was **not** queued.
    Throttled {
        /// Chunks pending at the server when the batch bounced.
        pending: u64,
        /// The server's queue capacity.
        limit: u64,
    },
}

/// Accounting from [`ServerClient::send_all`].
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct SendReport {
    /// Batches acknowledged.
    pub batches: u64,
    /// Updates acknowledged.
    pub updates: u64,
    /// THROTTLE replies absorbed (each one retried until acked).
    pub throttled: u64,
}

/// A join-size answer with its sub-join anatomy (zeros for self-joins).
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct JoinAnswer {
    /// The estimate.
    pub estimate: f64,
    /// Exact dense⋈dense term.
    pub dense_dense: f64,
    /// Estimated dense⋈sparse term.
    pub dense_sparse: f64,
    /// Estimated sparse⋈dense term.
    pub sparse_dense: f64,
    /// Estimated sparse⋈sparse term.
    pub sparse_sparse: f64,
    /// Dense values skimmed from `F`.
    pub dense_f: u64,
    /// Dense values skimmed from `G`.
    pub dense_g: u64,
}

/// One chunk of a primary's WAL byte stream, as returned by
/// [`ServerClient::replicate_poll`].
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ReplicaChunk {
    /// The primary's fencing epoch.
    pub epoch: u64,
    /// Segment the chunk starts in (snapshot id when `snapshot`).
    pub segment: u64,
    /// Byte offset of the chunk within `segment`.
    pub offset: u64,
    /// `bytes` is an encoded snapshot blob (pruned-position bootstrap)
    /// rather than record bytes.
    pub snapshot: bool,
    /// The primary's durable frontier: active segment id…
    pub frontier_segment: u64,
    /// …and its length, when the chunk was cut.
    pub frontier_offset: u64,
    /// Frame-aligned record bytes (empty = caught up).
    pub bytes: Vec<u8>,
}

/// A node's replication-facing state, from [`ServerClient::heartbeat`].
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct ReplicaStatus {
    /// The node's fencing epoch.
    pub epoch: u64,
    /// Whether the node currently accepts writes.
    pub primary: bool,
    /// Durable frontier: active segment id…
    pub segment: u64,
    /// …and its length.
    pub offset: u64,
}

/// How many batches an unsequenced [`ServerClient::send_all`] keeps in
/// flight before waiting for the oldest ack. A few are enough to hide
/// the ack round trip (the next batches are already encoded and in the
/// socket while the previous ack travels back); much larger windows
/// just overrun the server's per-worker ingest queue and convert the
/// headroom into THROTTLE round trips. Deadlock-free by sizing: the
/// replies for a full window are a few hundred bytes, far below any
/// socket buffer, so the server can always finish writing an ack and
/// return to draining the data the client is blocked sending.
const PIPELINE_WINDOW: usize = 4;

/// A connected, handshaken client session.
#[derive(Debug)]
pub struct ServerClient {
    sock: TcpStream,
    info: ServerInfo,
    max_payload: u32,
    /// The protocol this session negotiated at the handshake (the
    /// accepted HELLO offer). Gates the v3-only request surface.
    protocol: u16,
    config: ClientConfig,
    /// Next sequence number per stream (meaningful when
    /// `config.client_id != 0`); advanced only on BATCH_ACK.
    next_seq: [u64; 2],
    /// THROTTLE-retry backoff state for [`ServerClient::send_all`].
    backoff: Backoff,
    /// Trace id stamped on the most recent traced request (0 = none),
    /// for pairing CLI output with server-side INSPECT events.
    last_trace: u64,
    /// When set, requests carry this exact context instead of starting
    /// fresh client-side traces — the cluster router uses it to
    /// propagate an incoming request's trace across its shard fan-out.
    forward_trace: Option<TraceContext>,
    /// Reusable payload buffer for replies: grows to the largest reply
    /// seen (a snapshot, typically), then no reply allocates.
    scratch: Vec<u8>,
}

impl ServerClient {
    /// Connects and handshakes with the default [`ClientConfig`].
    pub fn connect<A: ToSocketAddrs>(addr: A) -> Result<Self, ClientError> {
        Self::connect_with(addr, ClientConfig::default())
    }

    /// [`ServerClient::connect`] with an explicit client name for the
    /// server's logs.
    pub fn connect_named<A: ToSocketAddrs>(addr: A, name: &str) -> Result<Self, ClientError> {
        Self::connect_with(
            addr,
            ClientConfig {
                name: name.to_string(),
                ..ClientConfig::default()
            },
        )
    }

    /// Connects and handshakes under an explicit configuration.
    pub fn connect_with<A: ToSocketAddrs>(
        addr: A,
        config: ClientConfig,
    ) -> Result<Self, ClientError> {
        let sock = TcpStream::connect(addr)?;
        sock.set_nodelay(true)?;
        sock.set_read_timeout(Some(config.read_timeout))?;
        sock.set_write_timeout(Some(config.write_timeout))?;
        let backoff = Backoff::new(&config.backoff);
        let mut client = Self {
            sock,
            info: ServerInfo {
                domain_log2: 0,
                dyadic: false,
                tables: 0,
                buckets: 0,
                seed: 0,
                max_batch: 0,
                queue_limit: 0,
            },
            max_payload: stream_wire::DEFAULT_MAX_PAYLOAD,
            protocol: config.offer_protocol,
            config,
            next_seq: [1, 1],
            backoff,
            last_trace: 0,
            forward_trace: None,
            scratch: Vec::new(),
        };
        let reply = client.call(&Frame::Hello {
            protocol: client.protocol,
            client: client.config.name.clone(),
        });
        match reply {
            Ok(Frame::HelloAck(info)) => {
                client.info = info;
                Ok(client)
            }
            // The typed handshake rejection: surface which version was
            // refused, not just a generic server error.
            Err(ClientError::Server {
                code: ErrorCode::UnsupportedVersion,
                message,
            }) => Err(ClientError::VersionMismatch {
                offered: client.protocol,
                message,
            }),
            Err(e) => Err(e),
            Ok(_) => Err(ClientError::UnexpectedFrame("handshake reply")),
        }
    }

    /// The schema and limits the server advertised.
    pub fn info(&self) -> &ServerInfo {
        &self.info
    }

    /// The protocol version this session negotiated at the handshake.
    pub fn protocol(&self) -> u16 {
        self.protocol
    }

    /// Typed gate on the protocol >= 3 request surface: sharding,
    /// replication, and failover calls refuse, client-side, to
    /// serialize v3-only frame kinds onto an older session.
    fn require_v3(&self) -> Result<(), ClientError> {
        if self.protocol < 3 {
            return Err(ClientError::V3Required {
                negotiated: self.protocol,
            });
        }
        Ok(())
    }

    /// The producer identity batches are sequenced under (0 = none).
    pub fn client_id(&self) -> u64 {
        self.config.client_id
    }

    /// The next sequence number this session will assign for `stream`.
    pub fn next_seq(&self, stream: StreamId) -> u64 {
        // ss-analyze: allow(a2-panic-free) -- two-variant `StreamId` indexing a `[u64; 2]`
        self.next_seq[stream as usize]
    }

    /// Rebuilds the server's synopsis schema locally (identical hash
    /// families — decoded snapshots are mergeable with sketches built
    /// under it).
    pub fn schema(&self) -> Arc<SkimmedSchema> {
        let domain = Domain::with_log2(self.info.domain_log2 as u32);
        if self.info.dyadic {
            SkimmedSchema::dyadic(
                domain,
                self.info.tables as usize,
                self.info.buckets as usize,
                self.info.seed,
            )
        } else {
            SkimmedSchema::scanning(
                domain,
                self.info.tables as usize,
                self.info.buckets as usize,
                self.info.seed,
            )
        }
    }

    /// The trace id stamped on the most recent traced request (0 when
    /// tracing is off or nothing has been sent yet). `ssketch trace`
    /// prints it so the operator can grep the server's INSPECT events.
    pub fn last_trace_id(&self) -> u64 {
        self.last_trace
    }

    /// Starts a client-side Request span when tracing is on: the
    /// returned context goes out on the wire; the returned guard ends
    /// the span (hold it across the reply to time the round trip).
    /// `None`/`None` when tracing is off or compiled out — the frame
    /// encoding is then byte-identical to an untraced client's.
    fn begin_trace(&mut self, arg: u64) -> (Option<TraceContext>, Option<ss_trace::SpanGuard>) {
        if let Some(ctx) = self.forward_trace {
            // Propagation, not origination: the caller owns the span
            // tree; we just stamp its context on the wire.
            self.last_trace = ctx.trace_id;
            return (Some(ctx), None);
        }
        if !self.config.trace || !ss_trace::ENABLED {
            return (None, None);
        }
        let trace_id = ss_trace::new_trace_id();
        let span = ss_trace::span(ss_trace::Phase::Request, trace_id, 0, arg);
        self.last_trace = trace_id;
        let ctx = TraceContext {
            trace_id,
            span_id: span.id(),
        };
        (Some(ctx), Some(span))
    }

    /// One request, one reply. ERROR replies become `ClientError::Server`.
    /// The Request span (when tracing) covers the full round trip.
    fn call(&mut self, request: &Frame) -> Result<Frame, ClientError> {
        let (ctx, _span) = self.begin_trace(0);
        request.write_to_traced(&mut self.sock, ctx)?;
        self.read_reply()
    }

    /// Waits out the strict-request/reply turnaround for one reply frame,
    /// absorbing idle ticks up to the configured patience budget.
    fn read_reply(&mut self) -> Result<Frame, ClientError> {
        for _ in 0..self.config.reply_retries {
            match Frame::read_from_with_scratch(&mut self.sock, self.max_payload, &mut self.scratch)
            {
                Ok((Frame::Error { code, message }, _)) => {
                    return Err(ClientError::Server { code, message })
                }
                Ok((frame, _)) => return Ok(frame),
                Err(WireError::Idle) => continue,
                Err(e) => return Err(e.into()),
            }
        }
        Err(ClientError::Timeout)
    }

    /// Asks the server how far this producer's sequenced batches have
    /// been applied (per stream) and fast-forwards the session's
    /// sequence counters past them. Call after reconnecting to replay
    /// from the first unacknowledged batch.
    pub fn resume(&mut self) -> Result<(u64, u64), ClientError> {
        match self.call(&Frame::Resume {
            client_id: self.config.client_id,
        })? {
            Frame::ResumeAck {
                last_seq_f,
                last_seq_g,
            } => {
                self.next_seq = [last_seq_f + 1, last_seq_g + 1];
                Ok((last_seq_f, last_seq_g))
            }
            // ss-analyze: allow(a6-frame-exhaustive) -- client-side strict request/reply: every non-matching kind is uniformly *rejected* as UnexpectedFrame, not absorbed
            _ => Err(ClientError::UnexpectedFrame("resume reply")),
        }
    }

    /// Sends one batch without retrying: THROTTLE surfaces as
    /// [`BatchOutcome::Throttled`] and the caller owns the retry policy.
    ///
    /// Sequenced sessions stamp the batch with the stream's next
    /// sequence number and advance it only on BATCH_ACK, so a throttled
    /// (never-queued) batch re-sends under the same number.
    pub fn send_batch(
        &mut self,
        stream: StreamId,
        updates: &[Update],
    ) -> Result<BatchOutcome, ClientError> {
        let sequenced = self.config.client_id != 0;
        let seq = if sequenced {
            // ss-analyze: allow(a2-panic-free) -- two-variant `StreamId` indexing a `[u64; 2]`
            self.next_seq[stream as usize]
        } else {
            0
        };
        // Vectored borrowed-parts send: no `Frame` is materialised and the
        // updates are never cloned — header + payload go out in one
        // `write_vectored` call.
        let (ctx, _span) = self.begin_trace(updates.len() as u64);
        stream_wire::write_update_batch_traced(
            &mut self.sock,
            stream,
            self.config.client_id,
            seq,
            updates,
            ctx,
        )
        .map_err(ClientError::Io)?;
        let reply = self.read_reply()?;
        match reply {
            Frame::BatchAck { accepted } => {
                if sequenced {
                    // ss-analyze: allow(a2-panic-free) -- two-variant `StreamId` indexing a `[u64; 2]`
                    self.next_seq[stream as usize] = seq + 1;
                }
                Ok(BatchOutcome::Accepted(accepted))
            }
            Frame::Throttle { pending, limit } => Ok(BatchOutcome::Throttled { pending, limit }),
            // ss-analyze: allow(a6-frame-exhaustive) -- client-side strict request/reply: every non-matching kind is uniformly *rejected* as UnexpectedFrame, not absorbed
            _ => Err(ClientError::UnexpectedFrame("batch reply")),
        }
    }

    /// Sends one batch under an explicit `(client_id, seq)` identity,
    /// leaving this session's own sequence counters untouched. The
    /// cluster router forwards an upstream producer's sequenced batches
    /// *as that producer*: the shard's `(client_id, stream, seq)` dedup
    /// then absorbs duplicates end to end, no matter which router
    /// handler — or which router incarnation, after a restart — resends
    /// them. Plain clients should prefer [`ServerClient::send_batch`].
    pub fn send_batch_as(
        &mut self,
        stream: StreamId,
        client_id: u64,
        seq: u64,
        updates: &[Update],
    ) -> Result<BatchOutcome, ClientError> {
        let (ctx, _span) = self.begin_trace(updates.len() as u64);
        stream_wire::write_update_batch_traced(
            &mut self.sock,
            stream,
            client_id,
            seq,
            updates,
            ctx,
        )
        .map_err(ClientError::Io)?;
        match self.read_reply()? {
            Frame::BatchAck { accepted } => Ok(BatchOutcome::Accepted(accepted)),
            Frame::Throttle { pending, limit } => Ok(BatchOutcome::Throttled { pending, limit }),
            // ss-analyze: allow(a6-frame-exhaustive) -- client-side strict request/reply: every non-matching kind is uniformly *rejected* as UnexpectedFrame, not absorbed
            _ => Err(ClientError::UnexpectedFrame("batch reply")),
        }
    }

    /// Reads another producer's applied high-water marks (RESUME for an
    /// explicit `client_id`) without touching this session's own
    /// counters. The cluster router fans this across every shard to
    /// answer an upstream RESUME: the per-stream minimum is the highest
    /// sequence number *every* shard has applied.
    pub fn resume_of(&mut self, client_id: u64) -> Result<(u64, u64), ClientError> {
        match self.call(&Frame::Resume { client_id })? {
            Frame::ResumeAck {
                last_seq_f,
                last_seq_g,
            } => Ok((last_seq_f, last_seq_g)),
            // ss-analyze: allow(a6-frame-exhaustive) -- client-side strict request/reply: every non-matching kind is uniformly *rejected* as UnexpectedFrame, not absorbed
            _ => Err(ClientError::UnexpectedFrame("resume reply")),
        }
    }

    /// Streams `updates` in `chunk`-sized batches, retrying throttled
    /// batches under capped exponential backoff until everything is
    /// acknowledged.
    ///
    /// Unsequenced sessions (`client_id == 0`) pipeline up to
    /// [`PIPELINE_WINDOW`] batches before waiting for the oldest ack, so
    /// the producer's encode overlaps the server's decode + ingest
    /// instead of idling through a full round trip per batch. Sketch
    /// updates commute, so a throttled batch can be retried after the
    /// main pass without reordering concerns. Sequenced sessions keep
    /// strict request/reply: their per-stream sequence number advances
    /// only on BATCH_ACK, and the server's idempotence high-water mark
    /// assumes no gaps.
    pub fn send_all(
        &mut self,
        stream: StreamId,
        updates: &[Update],
        chunk: usize,
    ) -> Result<SendReport, ClientError> {
        assert!(chunk > 0, "chunk size must be nonzero");
        let chunk = chunk.min(self.info.max_batch.max(1) as usize);
        let mut report = SendReport::default();
        self.backoff.reset();
        if self.config.client_id != 0 {
            for batch in updates.chunks(chunk) {
                loop {
                    match self.send_batch(stream, batch)? {
                        BatchOutcome::Accepted(n) => {
                            report.batches += 1;
                            report.updates += n;
                            self.backoff.reset();
                            break;
                        }
                        BatchOutcome::Throttled { .. } => {
                            report.throttled += 1;
                            std::thread::sleep(self.backoff.delay());
                        }
                    }
                }
            }
            return Ok(report);
        }
        // Pipelined pass: the server answers strictly in order, so the
        // i-th reply always belongs to the oldest in-flight batch.
        let mut inflight: std::collections::VecDeque<&[Update]> = std::collections::VecDeque::new();
        let mut retry: Vec<&[Update]> = Vec::new();
        for batch in updates.chunks(chunk) {
            // Each pipelined batch is its own trace; the Request span
            // covers encode + socket write (replies are absorbed later,
            // out of span scope, by the pipeline's nature).
            let (ctx, _span) = self.begin_trace(batch.len() as u64);
            stream_wire::write_update_batch_traced(&mut self.sock, stream, 0, 0, batch, ctx)
                .map_err(ClientError::Io)?;
            inflight.push_back(batch);
            if inflight.len() >= PIPELINE_WINDOW {
                self.absorb_reply(&mut inflight, &mut retry, &mut report)?;
            }
        }
        while !inflight.is_empty() {
            self.absorb_reply(&mut inflight, &mut retry, &mut report)?;
        }
        // Throttled batches were never queued server-side; re-send them
        // strictly, a backoff pause per round.
        while !retry.is_empty() {
            std::thread::sleep(self.backoff.delay());
            for batch in std::mem::take(&mut retry) {
                match self.send_batch(stream, batch)? {
                    BatchOutcome::Accepted(n) => {
                        report.batches += 1;
                        report.updates += n;
                    }
                    BatchOutcome::Throttled { .. } => {
                        report.throttled += 1;
                        retry.push(batch);
                    }
                }
            }
        }
        Ok(report)
    }

    /// Consumes the reply for the oldest in-flight pipelined batch:
    /// BATCH_ACK lands in the report, THROTTLE parks the batch for the
    /// retry pass.
    fn absorb_reply<'u>(
        &mut self,
        inflight: &mut std::collections::VecDeque<&'u [Update]>,
        retry: &mut Vec<&'u [Update]>,
        report: &mut SendReport,
    ) -> Result<(), ClientError> {
        let Some(batch) = inflight.pop_front() else {
            return Ok(());
        };
        match self.read_reply()? {
            Frame::BatchAck { accepted } => {
                report.batches += 1;
                report.updates += accepted;
            }
            Frame::Throttle { .. } => {
                report.throttled += 1;
                retry.push(batch);
            }
            // ss-analyze: allow(a6-frame-exhaustive) -- client-side strict request/reply: every non-matching kind is uniformly *rejected* as UnexpectedFrame, not absorbed
            _ => return Err(ClientError::UnexpectedFrame("batch reply")),
        }
        Ok(())
    }

    /// `COUNT(F ⋈ G)` from linearizable snapshots of both server sketches.
    pub fn query_join(&mut self) -> Result<JoinAnswer, ClientError> {
        match self.call(&Frame::QueryJoin)? {
            Frame::Answer {
                estimate,
                dense_dense,
                dense_sparse,
                sparse_dense,
                sparse_sparse,
                dense_f,
                dense_g,
            } => Ok(JoinAnswer {
                estimate,
                dense_dense,
                dense_sparse,
                sparse_dense,
                sparse_sparse,
                dense_f,
                dense_g,
            }),
            // ss-analyze: allow(a6-frame-exhaustive) -- client-side strict request/reply: every non-matching kind is uniformly *rejected* as UnexpectedFrame, not absorbed
            _ => Err(ClientError::UnexpectedFrame("join reply")),
        }
    }

    /// Self-join (second moment) estimate of one stream.
    pub fn query_self_join(&mut self, stream: StreamId) -> Result<f64, ClientError> {
        match self.call(&Frame::QuerySelfJoin { stream })? {
            Frame::Answer { estimate, .. } => Ok(estimate),
            // ss-analyze: allow(a6-frame-exhaustive) -- client-side strict request/reply: every non-matching kind is uniformly *rejected* as UnexpectedFrame, not absorbed
            _ => Err(ClientError::UnexpectedFrame("self-join reply")),
        }
    }

    /// Ships a linearizable snapshot of one stream's full skimmed sketch.
    pub fn snapshot(&mut self, stream: StreamId) -> Result<SkimmedSketch, ClientError> {
        match self.call(&Frame::Snapshot { stream })? {
            Frame::SnapshotReply {
                stream: got,
                sketch,
            } => {
                if got != stream {
                    return Err(ClientError::UnexpectedFrame("snapshot for wrong stream"));
                }
                decode_skimmed(Bytes::from(sketch))
                    .map_err(|_| ClientError::UnexpectedFrame("undecodable snapshot"))
            }
            // ss-analyze: allow(a6-frame-exhaustive) -- client-side strict request/reply: every non-matching kind is uniformly *rejected* as UnexpectedFrame, not absorbed
            _ => Err(ClientError::UnexpectedFrame("snapshot reply")),
        }
    }

    /// Fetches the server's live introspection snapshot: metrics,
    /// recent flight-recorder events, the slow-query log, and the
    /// online accuracy audit — whichever of those `sections` requests
    /// (see the `INSPECT_*` bit constants; [`INSPECT_ALL`] for
    /// everything). `last_events` / `slow_limit` cap the event and
    /// slow-query lists (0 = no cap). Sections a server build cannot
    /// produce come back empty.
    pub fn inspect(
        &mut self,
        sections: u8,
        last_events: u32,
        slow_limit: u32,
    ) -> Result<InspectReport, ClientError> {
        match self.call(&Frame::Inspect {
            sections,
            last_events,
            slow_limit,
        })? {
            Frame::InspectReply(report) => Ok(*report),
            // ss-analyze: allow(a6-frame-exhaustive) -- client-side strict request/reply: every non-matching kind is uniformly *rejected* as UnexpectedFrame, not absorbed
            _ => Err(ClientError::UnexpectedFrame("inspect reply")),
        }
    }

    /// [`ServerClient::inspect`] with every section and no caps.
    pub fn inspect_all(&mut self) -> Result<InspectReport, ClientError> {
        self.inspect(INSPECT_ALL, 0, 0)
    }

    /// Stamps subsequent requests with `ctx` verbatim instead of
    /// starting fresh client-side traces (pass `None` to return to
    /// normal tracing). The cluster router sets this per incoming
    /// request so its shard fan-out joins the client's causal trace.
    pub fn set_forward_trace(&mut self, ctx: Option<TraceContext>) {
        self.forward_trace = ctx;
    }

    /// Shard-role fetch (protocol ≥ 3, [`ServerConfig::shard`] servers
    /// only): the shard's raw encoded sketch state for the streams
    /// selected by the `SHARD_STREAM_*` bits of `streams`, captured as
    /// one linearizable cut. Unrequested streams come back as empty
    /// vectors. The cluster router merges these by sketch linearity;
    /// shipping the *unskimmed* state is what keeps merged answers
    /// bit-identical to a single node (skimming is global, not
    /// per-shard).
    ///
    /// [`ServerConfig::shard`]: crate::ServerConfig::shard
    pub fn shard_query(&mut self, streams: u8) -> Result<(Vec<u8>, Vec<u8>), ClientError> {
        self.require_v3()?;
        match self.call(&Frame::ShardQuery { streams })? {
            Frame::ShardQueryReply {
                streams: got,
                sketch_f,
                sketch_g,
            } => {
                if got != streams {
                    return Err(ClientError::UnexpectedFrame("shard reply stream mask"));
                }
                Ok((sketch_f, sketch_g))
            }
            // ss-analyze: allow(a6-frame-exhaustive) -- client-side strict request/reply: every non-matching kind is uniformly *rejected* as UnexpectedFrame, not absorbed
            _ => Err(ClientError::UnexpectedFrame("shard query reply")),
        }
    }

    /// Asks a cluster router for its versioned [`ShardMapInfo`]
    /// manifest (protocol ≥ 3). Plain servers reject this with a
    /// protocol error — which is how `ssketch top` tells a router from
    /// a single node.
    pub fn shard_map(&mut self) -> Result<ShardMapInfo, ClientError> {
        self.require_v3()?;
        let request = Frame::ShardMap(ShardMapInfo {
            version: 0,
            seed: 0,
            shards: Vec::new(),
        });
        match self.call(&request)? {
            Frame::ShardMap(map) => Ok(map),
            // ss-analyze: allow(a6-frame-exhaustive) -- client-side strict request/reply: every non-matching kind is uniformly *rejected* as UnexpectedFrame, not absorbed
            _ => Err(ClientError::UnexpectedFrame("shard map reply")),
        }
    }

    /// One replication long-poll (protocol ≥ 3): offers `(segment,
    /// offset)` — the caller's durable frontier, which doubles as the
    /// ack for everything before it — and returns the next chunk of
    /// the primary's WAL byte stream (see [`ReplicaChunk`]).
    pub fn replicate_poll(
        &mut self,
        epoch: u64,
        segment: u64,
        offset: u64,
    ) -> Result<ReplicaChunk, ClientError> {
        self.require_v3()?;
        let request = Frame::ReplicateAck {
            epoch,
            segment,
            offset,
        };
        match self.call(&request)? {
            Frame::Replicate {
                epoch,
                segment,
                offset,
                snapshot,
                frontier_segment,
                frontier_offset,
                bytes,
            } => Ok(ReplicaChunk {
                epoch,
                segment,
                offset,
                snapshot,
                frontier_segment,
                frontier_offset,
                bytes,
            }),
            // ss-analyze: allow(a6-frame-exhaustive) -- client-side strict request/reply: every non-matching kind is uniformly *rejected* as UnexpectedFrame, not absorbed
            _ => Err(ClientError::UnexpectedFrame("replicate poll reply")),
        }
    }

    /// Pushes one frame-aligned chunk of record bytes at `(segment,
    /// offset)` to a follower (protocol ≥ 3) and returns its acked
    /// frontier. A stale `epoch` is refused with
    /// [`ErrorCode::Fenced`] — the split-brain check the chaos suite
    /// exercises with a deposed primary.
    pub fn replicate_push(
        &mut self,
        epoch: u64,
        segment: u64,
        offset: u64,
        bytes: Vec<u8>,
    ) -> Result<(u64, u64), ClientError> {
        self.require_v3()?;
        let frontier_offset = offset + bytes.len() as u64;
        let request = Frame::Replicate {
            epoch,
            segment,
            offset,
            snapshot: false,
            frontier_segment: segment,
            frontier_offset,
            bytes,
        };
        match self.call(&request)? {
            Frame::ReplicateAck {
                segment, offset, ..
            } => Ok((segment, offset)),
            // ss-analyze: allow(a6-frame-exhaustive) -- client-side strict request/reply: every non-matching kind is uniformly *rejected* as UnexpectedFrame, not absorbed
            _ => Err(ClientError::UnexpectedFrame("replicate push reply")),
        }
    }

    /// Probes a node's replication state (protocol ≥ 3): role, fencing
    /// epoch, and durable frontier. The cluster router's failure
    /// detector is built on this round trip.
    pub fn heartbeat(&mut self, epoch: u64) -> Result<ReplicaStatus, ClientError> {
        self.require_v3()?;
        let request = Frame::Heartbeat {
            epoch,
            primary: false,
            segment: 0,
            offset: 0,
        };
        match self.call(&request)? {
            Frame::Heartbeat {
                epoch,
                primary,
                segment,
                offset,
            } => Ok(ReplicaStatus {
                epoch,
                primary,
                segment,
                offset,
            }),
            // ss-analyze: allow(a6-frame-exhaustive) -- client-side strict request/reply: every non-matching kind is uniformly *rejected* as UnexpectedFrame, not absorbed
            _ => Err(ClientError::UnexpectedFrame("heartbeat reply")),
        }
    }

    /// Promotes a follower to primary under fencing epoch `epoch`
    /// (protocol ≥ 3, must exceed the follower's current epoch). The
    /// follower seals its log, stops replicating, and starts accepting
    /// writes; the echoed epoch is returned. Idempotent for retries.
    pub fn promote(&mut self, epoch: u64) -> Result<u64, ClientError> {
        self.require_v3()?;
        match self.call(&Frame::Promote { epoch })? {
            Frame::Promote { epoch } => Ok(epoch),
            // ss-analyze: allow(a6-frame-exhaustive) -- client-side strict request/reply: every non-matching kind is uniformly *rejected* as UnexpectedFrame, not absorbed
            _ => Err(ClientError::UnexpectedFrame("promote reply")),
        }
    }

    /// Clean close: GOODBYE, wait for the echo, drop the socket.
    pub fn goodbye(mut self) -> Result<(), ClientError> {
        match self.call(&Frame::Goodbye)? {
            Frame::Goodbye => Ok(()),
            // ss-analyze: allow(a6-frame-exhaustive) -- client-side strict request/reply: every non-matching kind is uniformly *rejected* as UnexpectedFrame, not absorbed
            _ => Err(ClientError::UnexpectedFrame("goodbye reply")),
        }
    }
}

// Backoff's unit tests (growth/cap/determinism, per-seed jitter, and
// the pinned jitter sequence) live with the policy in `ss-retry`.
