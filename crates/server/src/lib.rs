//! # stream-server
//!
//! The network serving layer over the skimmed-sketch ingest/query
//! pipeline: a TCP acceptor plus a fixed pool of connection-handler
//! threads speaking the [`stream_wire`] protocol, feeding decoded
//! UPDATE_BATCH frames into two [`IngestPool`]s (one per join input) and
//! answering join-size queries from their linearizable snapshots.
//!
//! This is the deployment the paper implies: remote sites *stream
//! updates* to a processing site which maintains small sketches and
//! answers `COUNT(F ⋈ G)` on demand — no raw tuples are stored anywhere.
//!
//! ## Backpressure, not buffering
//!
//! Every stage between the socket and the sketch is bounded:
//!
//! * the acceptor hands connections to handlers over a bounded queue —
//!   when all handlers are busy, accepting stops and the OS listen
//!   backlog (itself bounded) takes the overflow;
//! * one request per connection is in flight at a time (the protocol is
//!   strict request/reply), so a connection buffers at most one frame;
//! * batches enter the ingest pool with [`IngestPool::try_dispatch`] —
//!   when every worker's queue is full the batch is **refused** and the
//!   client receives a THROTTLE frame naming the pool's capacity. The
//!   server never queues unbounded memory on behalf of a fast producer.
//!
//! ## Shutdown
//!
//! [`Server::shutdown`] stops the acceptor, lets each handler finish its
//! in-flight request (idle connections are closed at the next read-tick
//! with an `ERROR {ShuttingDown}` frame), drains both ingest pools, and
//! returns the final merged sketches — nothing acknowledged is lost.
//!
//! ## Example
//!
//! ```
//! use skimmed_sketch::SkimmedSchema;
//! use stream_model::{Domain, Update};
//! use stream_server::{Server, ServerClient, ServerConfig};
//! use stream_wire::StreamId;
//!
//! let schema = SkimmedSchema::scanning(Domain::with_log2(12), 5, 64, 7);
//! let server = Server::bind("127.0.0.1:0", ServerConfig::new(schema)).unwrap();
//! let mut client = ServerClient::connect(server.local_addr()).unwrap();
//! client.send_all(StreamId::F, &[Update::insert(3)], 1024).unwrap();
//! client.send_all(StreamId::G, &[Update::insert(3)], 1024).unwrap();
//! let answer = client.query_join().unwrap();
//! assert!(answer.estimate.is_finite());
//! client.goodbye().unwrap();
//! let (_f, _g) = server.shutdown();
//! ```

#![warn(missing_docs)]
#![warn(clippy::all)]

mod client;
mod telem;

pub use client::{BatchOutcome, ClientError, JoinAnswer, SendReport, ServerClient};

use skimmed_sketch::{
    encode_skimmed, estimate_join, estimate_self_join, EstimatorConfig, ExtractionStrategy,
    SkimmedSchema, SkimmedSketch,
};
use std::io;
use std::net::{SocketAddr, TcpListener, TcpStream, ToSocketAddrs};
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::mpsc::{RecvTimeoutError, SyncSender, TrySendError};
use std::sync::{Arc, Mutex};
use std::thread::JoinHandle;
use std::time::Duration;
use stream_ingest::IngestPool;
use stream_wire::{ErrorCode, Frame, ServerInfo, StreamId, WireError, VERSION};
use telem::{server_metrics, ServerMetrics};

/// Serving-layer configuration. Every queue the server owns is bounded
/// by these knobs; see the crate docs for the backpressure story.
#[derive(Debug, Clone)]
pub struct ServerConfig {
    /// The synopsis schema both ingest pools sketch under (advertised to
    /// clients in HELLO_ACK).
    pub schema: Arc<SkimmedSchema>,
    /// Connection-handler threads (each serves one connection at a time).
    pub handler_threads: usize,
    /// Ingest worker threads per stream.
    pub ingest_workers: usize,
    /// Chunks buffered per ingest worker before THROTTLE.
    pub queue_depth: usize,
    /// Largest accepted UPDATE_BATCH, in updates.
    pub max_batch: u32,
    /// Largest accepted frame payload, in bytes.
    pub max_payload: u32,
    /// Per-connection read timeout; also the tick at which idle
    /// connections notice a shutdown.
    pub read_timeout: Duration,
    /// Per-connection write timeout.
    pub write_timeout: Duration,
    /// Estimator knobs used to answer queries.
    pub estimator: EstimatorConfig,
}

impl ServerConfig {
    /// Defaults sized for a loopback/LAN deployment: 4 handler threads,
    /// 2 ingest workers per stream with 8-chunk queues, 64Ki-update
    /// batches, 250 ms read tick.
    pub fn new(schema: Arc<SkimmedSchema>) -> Self {
        Self {
            schema,
            handler_threads: 4,
            ingest_workers: 2,
            queue_depth: 8,
            max_batch: 64 * 1024,
            max_payload: stream_wire::DEFAULT_MAX_PAYLOAD,
            read_timeout: Duration::from_millis(250),
            write_timeout: Duration::from_secs(5),
            estimator: EstimatorConfig::default(),
        }
    }
}

/// Shared state between connection handlers.
struct Inner {
    config: ServerConfig,
    /// One pool per join input, indexed by `StreamId as usize`.
    pools: [Arc<IngestPool<SkimmedSketch>>; 2],
    shutdown: AtomicBool,
    metrics: Option<&'static ServerMetrics>,
}

impl Inner {
    fn pool(&self, stream: StreamId) -> &IngestPool<SkimmedSketch> {
        &self.pools[stream as usize]
    }

    fn info(&self) -> ServerInfo {
        let schema = &self.config.schema;
        ServerInfo {
            domain_log2: schema.domain().log2_size() as u16,
            dyadic: matches!(schema.strategy(), ExtractionStrategy::Dyadic),
            tables: schema.base().tables() as u32,
            buckets: schema.base().buckets() as u32,
            seed: schema.seed(),
            max_batch: self.config.max_batch,
            queue_limit: self.pools[0].queue_capacity() as u32,
        }
    }
}

/// A running skimmed-sketch server. Dropping it without calling
/// [`Server::shutdown`] aborts the process threads unjoined; always shut
/// down explicitly to drain.
pub struct Server {
    inner: Arc<Inner>,
    local_addr: SocketAddr,
    acceptor: JoinHandle<()>,
    handlers: Vec<JoinHandle<()>>,
}

impl Server {
    /// Binds `addr` (use port 0 for an ephemeral port), spawns the
    /// acceptor and handler threads, and starts serving immediately.
    pub fn bind<A: ToSocketAddrs>(addr: A, config: ServerConfig) -> io::Result<Server> {
        assert!(config.handler_threads > 0, "need at least one handler");
        let listener = TcpListener::bind(addr)?;
        listener.set_nonblocking(true)?;
        let local_addr = listener.local_addr()?;
        let metrics = stream_telemetry::ENABLED.then(server_metrics);
        let schema = config.schema.clone();
        let workers = config.ingest_workers;
        let depth = config.queue_depth;
        let mk_pool = || {
            let schema = schema.clone();
            Arc::new(IngestPool::with_queue_depth(workers, depth, move || {
                SkimmedSketch::new(schema.clone())
            }))
        };
        let inner = Arc::new(Inner {
            pools: [mk_pool(), mk_pool()],
            shutdown: AtomicBool::new(false),
            metrics,
            config,
        });

        // Bounded hand-off from acceptor to handlers: when all handlers
        // are busy the acceptor blocks here and new connections wait in
        // the OS listen backlog instead of a process-side queue.
        let (conn_tx, conn_rx) =
            std::sync::mpsc::sync_channel::<TcpStream>(inner.config.handler_threads * 2);
        let conn_rx = Arc::new(Mutex::new(conn_rx));

        let handlers = (0..inner.config.handler_threads)
            .map(|_| {
                let inner = inner.clone();
                let conn_rx = conn_rx.clone();
                std::thread::spawn(move || loop {
                    let next = {
                        let rx = conn_rx.lock().expect("conn queue poisoned");
                        rx.recv_timeout(Duration::from_millis(100))
                    };
                    match next {
                        Ok(sock) => {
                            if inner.shutdown.load(Ordering::Acquire) {
                                continue; // accepted but never served: drop
                            }
                            handle_connection(&inner, sock);
                        }
                        Err(RecvTimeoutError::Timeout) => {
                            if inner.shutdown.load(Ordering::Acquire) {
                                break;
                            }
                        }
                        Err(RecvTimeoutError::Disconnected) => break,
                    }
                })
            })
            .collect();

        let acceptor = {
            let inner = inner.clone();
            std::thread::spawn(move || accept_loop(&listener, &conn_tx, &inner))
        };

        Ok(Server {
            inner,
            local_addr,
            acceptor,
            handlers,
        })
    }

    /// The bound address (with the real port when bound to port 0).
    pub fn local_addr(&self) -> SocketAddr {
        self.local_addr
    }

    /// Advertised schema and limits (what clients see in HELLO_ACK).
    pub fn info(&self) -> ServerInfo {
        self.inner.info()
    }

    /// Chunks queued-but-unabsorbed in one stream's ingest pool
    /// (advisory; see [`IngestPool::pending_chunks`]).
    pub fn pending_chunks(&self, stream: StreamId) -> u64 {
        self.inner.pool(stream).pending_chunks()
    }

    /// Hard cap on [`Server::pending_chunks`]: beyond it, batches bounce
    /// with THROTTLE instead of queueing.
    pub fn queue_capacity(&self) -> u64 {
        self.inner.pools[0].queue_capacity()
    }

    /// In-process linearizable snapshot of one stream's sketch (same
    /// contract as [`IngestPool::snapshot`]).
    pub fn snapshot(&self, stream: StreamId) -> SkimmedSketch {
        self.inner.pool(stream).snapshot()
    }

    /// Graceful shutdown: stop accepting, let handlers finish their
    /// in-flight request, drain both ingest pools, and return the final
    /// `(F, G)` sketches. Everything a client saw acknowledged with
    /// BATCH_ACK is in them.
    pub fn shutdown(self) -> (SkimmedSketch, SkimmedSketch) {
        self.inner.shutdown.store(true, Ordering::Release);
        self.acceptor.join().expect("acceptor panicked");
        for h in self.handlers {
            h.join().expect("connection handler panicked");
        }
        let inner =
            Arc::try_unwrap(self.inner).unwrap_or_else(|_| unreachable!("all handler refs joined"));
        let [pf, pg] = inner.pools;
        let unwrap_pool = |p: Arc<IngestPool<SkimmedSketch>>| {
            Arc::try_unwrap(p)
                .unwrap_or_else(|_| unreachable!("pool refs live only in Inner"))
                .finish()
        };
        (unwrap_pool(pf), unwrap_pool(pg))
    }
}

fn accept_loop(listener: &TcpListener, conn_tx: &SyncSender<TcpStream>, inner: &Inner) {
    loop {
        if inner.shutdown.load(Ordering::Acquire) {
            return;
        }
        match listener.accept() {
            Ok((sock, _peer)) => {
                if let Some(m) = inner.metrics {
                    m.accepted.inc();
                }
                // Bounded hand-off; poll so a shutdown during a full
                // queue cannot wedge the acceptor.
                let mut sock = sock;
                loop {
                    match conn_tx.try_send(sock) {
                        Ok(()) => break,
                        Err(TrySendError::Full(s)) => {
                            if inner.shutdown.load(Ordering::Acquire) {
                                return;
                            }
                            sock = s;
                            std::thread::sleep(Duration::from_millis(2));
                        }
                        Err(TrySendError::Disconnected(_)) => return,
                    }
                }
            }
            Err(e) if e.kind() == io::ErrorKind::WouldBlock => {
                std::thread::sleep(Duration::from_millis(2));
            }
            Err(_) => {
                // Transient accept errors (e.g. ECONNABORTED): keep serving.
                std::thread::sleep(Duration::from_millis(2));
            }
        }
    }
}

/// Sends one frame, counting it into the tx telemetry.
fn send(sock: &mut TcpStream, frame: &Frame, metrics: Option<&'static ServerMetrics>) -> bool {
    match frame.write_to(sock) {
        Ok(n) => {
            if let Some(m) = metrics {
                m.frames_tx.inc();
                m.bytes_tx.add(n as u64);
            }
            true
        }
        Err(_) => false,
    }
}

fn send_error(
    sock: &mut TcpStream,
    code: ErrorCode,
    message: &str,
    metrics: Option<&'static ServerMetrics>,
) {
    let _ = send(
        sock,
        &Frame::Error {
            code,
            message: message.to_string(),
        },
        metrics,
    );
}

/// Serves one connection to completion: handshake, then strict
/// request/reply until GOODBYE, error, disconnect, or server shutdown.
fn handle_connection(inner: &Inner, mut sock: TcpStream) {
    let metrics = inner.metrics;
    if sock.set_nodelay(true).is_err()
        || sock
            .set_read_timeout(Some(inner.config.read_timeout))
            .is_err()
        || sock
            .set_write_timeout(Some(inner.config.write_timeout))
            .is_err()
    {
        return;
    }
    if let Some(m) = metrics {
        m.connections.add(1);
    }
    serve_frames(inner, &mut sock);
    if let Some(m) = metrics {
        m.connections.add(-1);
    }
}

/// Reads one frame, handling idle ticks and shutdown; `None` means the
/// connection is done (closed, errored, or the server is draining).
fn next_frame(inner: &Inner, sock: &mut TcpStream) -> Option<Frame> {
    let metrics = inner.metrics;
    loop {
        match Frame::read_from(sock, inner.config.max_payload) {
            Ok((frame, n)) => {
                if let Some(m) = metrics {
                    m.frames_rx.inc();
                    m.bytes_rx.add(n as u64);
                }
                return Some(frame);
            }
            Err(WireError::Idle) => {
                if inner.shutdown.load(Ordering::Acquire) {
                    send_error(
                        sock,
                        ErrorCode::ShuttingDown,
                        "server draining; reconnect later",
                        metrics,
                    );
                    return None;
                }
            }
            Err(WireError::Closed) => return None,
            Err(WireError::Io(_)) => return None,
            Err(decode_err) => {
                // Header/CRC/payload-shape failures: the stream may no
                // longer sit at a frame boundary, so report and close.
                if let Some(m) = metrics {
                    m.decode_errors.inc();
                }
                send_error(sock, ErrorCode::Protocol, &decode_err.to_string(), metrics);
                return None;
            }
        }
    }
}

fn serve_frames(inner: &Inner, sock: &mut TcpStream) {
    let metrics = inner.metrics;

    // Handshake: the first frame must be HELLO at our protocol version.
    match next_frame(inner, sock) {
        Some(Frame::Hello { protocol, .. }) => {
            if protocol != VERSION {
                send_error(
                    sock,
                    ErrorCode::Protocol,
                    &format!("protocol {protocol} unsupported (server speaks {VERSION})"),
                    metrics,
                );
                return;
            }
            if !send(sock, &Frame::HelloAck(inner.info()), metrics) {
                return;
            }
        }
        Some(_) => {
            send_error(sock, ErrorCode::Protocol, "expected HELLO", metrics);
            return;
        }
        None => return,
    }

    while let Some(frame) = next_frame(inner, sock) {
        match frame {
            Frame::UpdateBatch { stream, updates } => {
                let _span = metrics.map(|m| m.update_latency.start_span());
                if updates.len() as u64 > inner.config.max_batch as u64 {
                    send_error(
                        sock,
                        ErrorCode::BatchTooLarge,
                        &format!(
                            "batch of {} exceeds max_batch {}",
                            updates.len(),
                            inner.config.max_batch
                        ),
                        metrics,
                    );
                    continue;
                }
                let accepted = updates.len() as u64;
                let pool = inner.pool(stream);
                let reply = match pool.try_dispatch(updates) {
                    Ok(()) => {
                        if let Some(m) = metrics {
                            m.updates_accepted.add(accepted);
                        }
                        Frame::BatchAck { accepted }
                    }
                    Err(_refused) => {
                        if let Some(m) = metrics {
                            m.throttles.inc();
                        }
                        Frame::Throttle {
                            pending: pool.pending_chunks(),
                            limit: pool.queue_capacity(),
                        }
                    }
                };
                if !send(sock, &reply, metrics) {
                    return;
                }
            }
            Frame::QueryJoin => {
                let _span = metrics.map(|m| m.query_join_latency.start_span());
                let f = inner.pool(StreamId::F).snapshot();
                let g = inner.pool(StreamId::G).snapshot();
                let est = estimate_join(&f, &g, &inner.config.estimator);
                let reply = Frame::Answer {
                    estimate: est.estimate,
                    dense_dense: est.dense_dense,
                    dense_sparse: est.dense_sparse,
                    sparse_dense: est.sparse_dense,
                    sparse_sparse: est.sparse_sparse,
                    dense_f: est.dense_f as u64,
                    dense_g: est.dense_g as u64,
                };
                if !send(sock, &reply, metrics) {
                    return;
                }
            }
            Frame::QuerySelfJoin { stream } => {
                let _span = metrics.map(|m| m.query_self_latency.start_span());
                let sk = inner.pool(stream).snapshot();
                let estimate = estimate_self_join(&sk, &inner.config.estimator);
                let reply = Frame::Answer {
                    estimate,
                    dense_dense: 0.0,
                    dense_sparse: 0.0,
                    sparse_dense: 0.0,
                    sparse_sparse: 0.0,
                    dense_f: 0,
                    dense_g: 0,
                };
                if !send(sock, &reply, metrics) {
                    return;
                }
            }
            Frame::Snapshot { stream } => {
                let _span = metrics.map(|m| m.snapshot_latency.start_span());
                let sk = inner.pool(stream).snapshot();
                let reply = Frame::SnapshotReply {
                    stream,
                    sketch: encode_skimmed(&sk).to_vec(),
                };
                if !send(sock, &reply, metrics) {
                    return;
                }
            }
            Frame::Goodbye => {
                let _ = send(sock, &Frame::Goodbye, metrics);
                return;
            }
            Frame::Error { .. } => return, // client gave up; nothing to reply
            Frame::Hello { .. }
            | Frame::HelloAck(_)
            | Frame::BatchAck { .. }
            | Frame::Answer { .. }
            | Frame::SnapshotReply { .. }
            | Frame::Throttle { .. } => {
                send_error(
                    sock,
                    ErrorCode::Protocol,
                    "unexpected frame for a client to send",
                    metrics,
                );
                return;
            }
        }
    }
}
