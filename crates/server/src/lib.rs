//! # stream-server
//!
//! The network serving layer over the skimmed-sketch ingest/query
//! pipeline: a TCP acceptor plus a fixed pool of connection-handler
//! threads speaking the [`stream_wire`] protocol, feeding decoded
//! UPDATE_BATCH frames into two [`IngestPool`]s (one per join input) and
//! answering join-size queries from their linearizable snapshots.
//!
//! This is the deployment the paper implies: remote sites *stream
//! updates* to a processing site which maintains small sketches and
//! answers `COUNT(F ⋈ G)` on demand — no raw tuples are stored anywhere.
//!
//! ## Backpressure, not buffering
//!
//! Every stage between the socket and the sketch is bounded:
//!
//! * the acceptor hands connections to handlers over a bounded queue —
//!   when all handlers are busy, accepting stops and the OS listen
//!   backlog (itself bounded) takes the overflow;
//! * one request per connection is in flight at a time (the protocol is
//!   strict request/reply), so a connection buffers at most one frame;
//! * batches enter the ingest pool with [`IngestPool::try_dispatch`] —
//!   when every worker's queue is full the batch is **refused** and the
//!   client receives a THROTTLE frame naming the pool's capacity. The
//!   server never queues unbounded memory on behalf of a fast producer.
//!
//! ## Durability and crash recovery
//!
//! With [`ServerConfig::wal`] set, every acknowledged UPDATE_BATCH is
//! appended to a [`stream_durability::Wal`] *after* the ingest pool
//! accepts it and *before* the BATCH_ACK goes out, so the log holds
//! exactly the acknowledged batches. Periodic snapshots (encoded
//! sketches + the idempotency table) bound replay time. A server bound
//! over the same directory after a crash replays the log into the
//! snapshot and — because sketch ingestion is linear — answers queries
//! **bit-identically** to one that never crashed. Sequenced batches
//! (`client_id != 0`) are deduplicated by `(client_id, stream, seq)`,
//! so a client replaying after a lost BATCH_ACK can never double-count.
//!
//! ## Replication and failover
//!
//! With [`ServerConfig::follower_of`] set (requires a WAL) the server
//! starts as a [`Role::Follower`]: it long-polls the named primary's
//! WAL byte stream (REPLICATE frames, protocol ≥ 3), appends the same
//! record bytes to its own log at the same positions, applies each
//! batch to its sketches, and refuses client writes with a typed
//! `NOT_PRIMARY` error. Because sketch ingestion is linear and the log
//! bytes are identical, a caught-up follower answers queries
//! **bit-identically** to its primary. A PROMOTE frame (carrying a
//! fencing epoch greater than the follower's) seals the log and flips
//! the role to primary; late REPLICATE traffic from a deposed primary
//! is rejected by the epoch check (`FENCED`), so a network that heals
//! after a failover cannot split-brain the sketch state. See
//! DESIGN.md §12 for the full contract.
//!
//! ## Fault containment
//!
//! A panic inside a sketch kernel is caught by the ingest pool's worker
//! supervision ([`IngestPool::worker_restarts`]); the pool keeps
//! serving. A panic in the acceptor or a connection handler is absorbed
//! at shutdown and surfaced as a [`ServerError`] instead of a
//! propagated panic. [`Server::halt`] simulates a crash for recovery
//! tests: threads stop, in-memory sketches are discarded, and no final
//! snapshot is written.
//!
//! ## Shutdown
//!
//! [`Server::shutdown`] stops the acceptor, lets each handler finish its
//! in-flight request (idle connections are closed at the next read-tick
//! with an `ERROR {ShuttingDown}` frame), drains both ingest pools,
//! writes a final snapshot when a WAL is configured, and returns the
//! final merged sketches — nothing acknowledged is lost.
//!
//! ## Example
//!
//! ```
//! use skimmed_sketch::SkimmedSchema;
//! use stream_model::{Domain, Update};
//! use stream_server::{Server, ServerClient, ServerConfig};
//! use stream_wire::StreamId;
//!
//! let schema = SkimmedSchema::scanning(Domain::with_log2(12), 5, 64, 7);
//! let server = Server::bind("127.0.0.1:0", ServerConfig::new(schema)).unwrap();
//! let mut client = ServerClient::connect(server.local_addr()).unwrap();
//! client.send_all(StreamId::F, &[Update::insert(3)], 1024).unwrap();
//! client.send_all(StreamId::G, &[Update::insert(3)], 1024).unwrap();
//! let answer = client.query_join().unwrap();
//! assert!(answer.estimate.is_finite());
//! client.goodbye().unwrap();
//! let (_f, _g) = server.shutdown().unwrap();
//! ```

#![forbid(unsafe_code)]
#![deny(missing_docs)]
#![warn(clippy::all)]

mod client;
mod inspect;
mod replication;
mod resilient;
mod telem;

pub use client::{
    Backoff, BackoffConfig, BatchOutcome, ClientConfig, ClientError, JoinAnswer, ReplicaChunk,
    ReplicaStatus, SendReport, ServerClient,
};
pub use resilient::ResilientClient;

use bytes::Bytes;
use inspect::{Audit, SlowLog};
use skimmed_sketch::{
    decode_skimmed, encode_skimmed, estimate_join, estimate_self_join, EstimatorConfig,
    ExtractionStrategy, SkimmedSchema, SkimmedSketch,
};
use ss_trace::Phase;
use std::collections::HashMap;
use std::io;
use std::net::{SocketAddr, TcpListener, TcpStream, ToSocketAddrs};
use std::path::PathBuf;
use std::sync::atomic::{AtomicBool, AtomicU64, AtomicU8, Ordering};
use std::sync::mpsc::{RecvTimeoutError, SyncSender, TrySendError};
use std::sync::{Arc, Mutex};
use std::thread::JoinHandle;
use std::time::{Duration, Instant};
use stream_durability::{DedupEntry, SnapshotBlob, Wal, WalConfig, WalTailer};
use stream_ingest::{IngestError, IngestPool, TraceTag};
use stream_model::StreamSink;
use stream_wire::{
    ErrorCode, Frame, InspectReport, ServerInfo, SlowQueryEntry, StreamId, TraceContext, WireError,
    INSPECT_AUDIT, INSPECT_EVENTS, INSPECT_METRICS, INSPECT_SLOW, MIN_PROTOCOL_VERSION,
    PROTOCOL_VERSION, SHARD_STREAM_F, SHARD_STREAM_G,
};
use telem::{server_metrics, ServerMetrics};

/// Serving-layer configuration. Every queue the server owns is bounded
/// by these knobs; see the crate docs for the backpressure story.
#[derive(Debug, Clone)]
pub struct ServerConfig {
    /// The synopsis schema both ingest pools sketch under (advertised to
    /// clients in HELLO_ACK).
    pub schema: Arc<SkimmedSchema>,
    /// Connection-handler threads (each serves one connection at a time).
    pub handler_threads: usize,
    /// Ingest worker threads per stream.
    pub ingest_workers: usize,
    /// Chunks buffered per ingest worker before THROTTLE.
    pub queue_depth: usize,
    /// Largest accepted UPDATE_BATCH, in updates.
    pub max_batch: u32,
    /// Largest accepted frame payload, in bytes.
    pub max_payload: u32,
    /// Per-connection read timeout; also the tick at which idle
    /// connections notice a shutdown.
    pub read_timeout: Duration,
    /// Per-connection write timeout.
    pub write_timeout: Duration,
    /// Estimator knobs used to answer queries.
    pub estimator: EstimatorConfig,
    /// Write-ahead logging; `None` (the default) serves purely from
    /// memory. See the crate docs' durability section.
    pub wal: Option<WalConfig>,
    /// Queries whose end-to-end handler time reaches this threshold are
    /// recorded in the slow-query log with a per-phase latency
    /// breakdown (INSPECT's slow section). `Duration::ZERO` logs every
    /// query.
    pub slow_query: Duration,
    /// Entries retained in the slow-query log before the oldest is
    /// evicted.
    pub slow_log: usize,
    /// Online §5.1 accuracy audit: `Some(s)` tracks exact counts for an
    /// expected `2^-s` fraction of distinct keys and compares them
    /// against sketch point estimates on INSPECT; `None` disables the
    /// audit. Only meaningful with telemetry compiled in.
    pub audit_shift: Option<u32>,
    /// Directory for flight-recorder post-mortem dumps (written on
    /// [`Server::halt`] and on supervised panics); `None` disables
    /// dumping.
    pub postmortem_dir: Option<PathBuf>,
    /// Shard role: serve SHARD_QUERY (raw encoded sketch state for a
    /// cluster router to merge by linearity) on protocol-v3 sessions.
    /// Off by default — a plain server rejects cluster frames, so a
    /// stray router pointed at a non-shard fails loud.
    pub shard: bool,
    /// Start as a [`Role::Follower`] replicating from this primary
    /// address. Requires [`ServerConfig::wal`]; the follower applies
    /// the primary's WAL byte stream and refuses client writes with
    /// `NOT_PRIMARY` until a PROMOTE flips it to primary.
    pub follower_of: Option<String>,
    /// Idle tick between replication long-polls once a follower is
    /// caught up (non-empty chunks re-poll immediately).
    pub replication_poll: Duration,
}

/// Whether a node accepts client writes or replicates them from a
/// primary. Queries are served in both roles (a follower answers from
/// its replicated state); only UPDATE_BATCH is role-gated.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Role {
    /// Accepts writes, serves replication polls, owns the fencing epoch.
    Primary,
    /// Applies replicated records; refuses writes with `NOT_PRIMARY`.
    Follower,
}

const ROLE_PRIMARY: u8 = 0;
const ROLE_FOLLOWER: u8 = 1;

impl ServerConfig {
    /// Defaults sized for a loopback/LAN deployment: 4 handler threads,
    /// 2 ingest workers per stream with 8-chunk queues, 64Ki-update
    /// batches, 250 ms read tick, no WAL.
    pub fn new(schema: Arc<SkimmedSchema>) -> Self {
        Self {
            schema,
            handler_threads: 4,
            ingest_workers: 2,
            queue_depth: 8,
            max_batch: 64 * 1024,
            max_payload: stream_wire::DEFAULT_MAX_PAYLOAD,
            read_timeout: Duration::from_millis(250),
            write_timeout: Duration::from_secs(5),
            estimator: EstimatorConfig::default(),
            wal: None,
            slow_query: Duration::from_millis(100),
            slow_log: 64,
            audit_shift: Some(6),
            postmortem_dir: None,
            shard: false,
            follower_of: None,
            replication_poll: Duration::from_millis(20),
        }
    }
}

/// Failures surfaced by [`Server::shutdown`] instead of panics.
#[derive(Debug)]
pub enum ServerError {
    /// An ingest worker was lost to an uncaught panic and its sketch
    /// shard with it; the drained result would be incomplete.
    WorkerLost {
        /// The stream whose pool lost the worker.
        stream: StreamId,
        /// The lost worker's index.
        worker: usize,
    },
    /// The acceptor or a connection-handler thread panicked while
    /// serving; the sketches drained cleanly but the process had a bug.
    ThreadPanicked {
        /// Which thread family panicked.
        thread: &'static str,
    },
    /// Writing the final WAL snapshot failed; the log itself is intact,
    /// so recovery still works — it just replays more.
    Io(io::Error),
    /// A reference to the server's shared state survived the thread
    /// joins, so the pools cannot be drained by value. This indicates a
    /// leaked `Arc` (a bug), reported instead of panicking.
    StateHeld,
}

impl std::fmt::Display for ServerError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            ServerError::WorkerLost { stream, worker } => {
                write!(
                    f,
                    "ingest worker {worker} of stream {stream} lost to a panic"
                )
            }
            ServerError::ThreadPanicked { thread } => write!(f, "{thread} thread panicked"),
            ServerError::Io(e) => write!(f, "final snapshot failed: {e}"),
            ServerError::StateHeld => {
                write!(f, "server state still referenced after thread joins")
            }
        }
    }
}

impl std::error::Error for ServerError {}

/// What crash recovery rebuilt when the server bound over an existing
/// WAL directory (see [`Server::recovery`]).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct RecoveryReport {
    /// Whether a snapshot seeded the sketches (vs. replay from scratch).
    pub snapshot_loaded: bool,
    /// Logged batches replayed on top of the snapshot.
    pub batches_replayed: u64,
    /// Updates contained in those batches.
    pub updates_replayed: u64,
    /// Log segments scanned.
    pub segments_replayed: u64,
    /// Bytes discarded from a torn tail (0 after a clean shutdown).
    pub torn_bytes: u64,
    /// Corrupt snapshot files skipped in favour of an older valid one.
    pub snapshots_skipped: u64,
    /// Torn-tail truncations performed (1 when a partial record was cut
    /// off the newest segment, 0 after a clean shutdown). Also counted
    /// into the `wal_torn_tail_truncations_total` metric.
    pub torn_tail_truncations: u64,
}

/// Durable state shared by handlers: the WAL and the idempotency table,
/// serialized behind one lock. Holding it across dispatch + append is
/// what makes a snapshot an exact cut of the log.
struct Persist {
    wal: Option<Wal>,
    /// Highest applied `seq` per `(client_id, stream)`.
    dedup: HashMap<u64, [u64; 2]>,
}

/// Shared state between connection handlers.
struct Inner {
    config: ServerConfig,
    /// One pool per join input, indexed by `StreamId as usize`.
    pools: [Arc<IngestPool<SkimmedSketch>>; 2],
    // ss-analyze: allow(a4-blocking-hot-path) -- the persist lock IS the durability design: dedup + WAL append must serialize to make snapshots exact cuts; the lock-free fast path (`has_wal == false`, unsequenced) never touches it
    persist: Mutex<Persist>,
    /// Cached `persist.wal.is_some()`: lets unsequenced traffic on a
    /// WAL-less server skip the persist lock entirely.
    has_wal: bool,
    shutdown: AtomicBool,
    metrics: Option<&'static ServerMetrics>,
    /// Bounded slow-query log served over INSPECT.
    slow: SlowLog,
    /// Online §5.1 accuracy-audit state.
    audit: Audit,
    /// Server start, the epoch for uptime and slow-query timestamps.
    started: Instant,
    /// Current role ([`ROLE_PRIMARY`] / [`ROLE_FOLLOWER`]); flipped by
    /// PROMOTE, read on every UPDATE_BATCH.
    role: AtomicU8,
    /// Fencing epoch: bumped by PROMOTE, checked on every REPLICATE.
    epoch: AtomicU64,
    /// Serves replication polls over the WAL directory (primaries with
    /// a WAL only).
    tailer: Option<WalTailer>,
    /// Follower-side replication state (present iff `follower_of`).
    repl: Option<replication::ReplState>,
    /// Primary-side follower tracking: the acked replication frontier
    /// each poll carries, feeding the sequenced-write ack gate
    /// ([`replication::gate_ack`]).
    follower_ack: replication::FollowerAck,
    /// Overflow connection handlers: when every pooled handler is
    /// pinned by a long-lived session (a follower's replication poll, a
    /// router supervisor's heartbeat probe), new connections get a
    /// dedicated thread instead of queueing behind sessions that never
    /// end. Capped at [`OVERFLOW_HANDLERS_MAX`]; joined at
    /// shutdown/halt.
    // ss-analyze: allow(a4-blocking-hot-path) -- touched on accept overflow and at shutdown only, never per frame
    overflow: Mutex<Vec<std::thread::JoinHandle<()>>>,
}

/// Hard cap on concurrently-live overflow handler threads (beyond the
/// fixed pool). Past it the acceptor falls back to waiting for a pooled
/// handler, as before the overflow lane existed.
const OVERFLOW_HANDLERS_MAX: usize = 64;

impl Inner {
    fn pool(&self, stream: StreamId) -> &IngestPool<SkimmedSketch> {
        // ss-analyze: allow(a2-panic-free) -- `StreamId` has exactly two variants (0 and 1) indexing a `[_; 2]`; in bounds by construction
        &self.pools[stream as usize]
    }

    fn role(&self) -> Role {
        if self.role.load(Ordering::Acquire) == ROLE_FOLLOWER {
            Role::Follower
        } else {
            Role::Primary
        }
    }

    fn epoch(&self) -> u64 {
        self.epoch.load(Ordering::Acquire)
    }

    /// The durable frontier `(active_segment_id, active_segment_len)`;
    /// `(0, 0)` without a WAL.
    fn wal_frontier(&self) -> (u64, u64) {
        let persist = self.persist.lock().unwrap_or_else(|p| p.into_inner());
        persist
            .wal
            .as_ref()
            .map_or((0, 0), |w| (w.active_segment_id(), w.active_segment_len()))
    }

    fn info(&self) -> ServerInfo {
        let schema = &self.config.schema;
        ServerInfo {
            domain_log2: schema.domain().log2_size() as u16,
            dyadic: matches!(schema.strategy(), ExtractionStrategy::Dyadic),
            tables: schema.base().tables() as u32,
            buckets: schema.base().buckets() as u32,
            seed: schema.seed(),
            max_batch: self.config.max_batch,
            // ss-analyze: allow(a2-panic-free) -- constant index into `[_; 2]`
            queue_limit: self.pools[0].queue_capacity() as u32,
        }
    }
}

/// A running skimmed-sketch server. Dropping it without calling
/// [`Server::shutdown`] aborts the process threads unjoined; always shut
/// down explicitly to drain (or [`Server::halt`] to simulate a crash).
pub struct Server {
    inner: Arc<Inner>,
    local_addr: SocketAddr,
    acceptor: JoinHandle<()>,
    handlers: Vec<JoinHandle<()>>,
    recovery: Option<RecoveryReport>,
}

impl Server {
    /// Binds `addr` (use port 0 for an ephemeral port), spawns the
    /// acceptor and handler threads, and starts serving immediately.
    ///
    /// With [`ServerConfig::wal`] set this first runs crash recovery:
    /// the newest valid snapshot is decoded, every logged batch after it
    /// is replayed into the recovered sketches, and the idempotency
    /// table is rebuilt — see [`Server::recovery`] for what was found.
    pub fn bind<A: ToSocketAddrs>(addr: A, config: ServerConfig) -> io::Result<Server> {
        assert!(config.handler_threads > 0, "need at least one handler");
        let listener = TcpListener::bind(addr)?;
        listener.set_nonblocking(true)?;
        let local_addr = listener.local_addr()?;
        let metrics = stream_telemetry::ENABLED.then(server_metrics);
        let schema = config.schema.clone();
        if let Some(dir) = &config.postmortem_dir {
            std::fs::create_dir_all(dir)?;
            ss_trace::set_postmortem_path(&dir.join("flight-recorder.jsonl"));
        }

        if config.follower_of.is_some() && config.wal.is_none() {
            return Err(io::Error::new(
                io::ErrorKind::InvalidInput,
                "follower_of requires a WAL: the replicated byte stream is the follower's log",
            ));
        }
        // A fresh (or pruned-past) follower bootstraps from the
        // primary's snapshot *before* recovery, so the adopted snapshot
        // seeds the sketches through the normal recovery path below.
        if let Some(primary) = config.follower_of.as_deref() {
            replication::bootstrap(&config, primary)?;
        }

        // Crash recovery: rebuild sketches + dedup table before the
        // first connection is accepted.
        let mut seeds: [Option<SkimmedSketch>; 2] = [None, None];
        let mut dedup: HashMap<u64, [u64; 2]> = HashMap::new();
        let mut wal = None;
        let mut recovery = None;
        if let Some(wal_config) = config.wal.clone() {
            let (opened, recovered) = Wal::open(wal_config)?;
            let mut report = RecoveryReport {
                snapshot_loaded: recovered.snapshot.is_some(),
                batches_replayed: recovered.batches.len() as u64,
                updates_replayed: recovered.replayed_updates(),
                segments_replayed: recovered.segments_replayed,
                torn_bytes: recovered.torn_bytes,
                snapshots_skipped: recovered.snapshots_skipped,
                torn_tail_truncations: recovered.torn_tail_truncations,
            };
            if let Some(snap) = recovered.snapshot {
                for (slot, blob) in seeds.iter_mut().zip(snap.blobs) {
                    if !blob.is_empty() {
                        *slot = Some(decode_skimmed(Bytes::from(blob)).map_err(|e| {
                            io::Error::new(
                                io::ErrorKind::InvalidData,
                                format!("undecodable snapshot sketch: {e:?}"),
                            )
                        })?);
                    }
                }
                for entry in snap.dedup {
                    dedup.insert(entry.client_id, entry.last_seq);
                }
            }
            // Linearity makes replay exact: recovered + Σ batches is the
            // same sketch the pre-crash server held after those acks.
            for batch in &recovered.batches {
                // ss-analyze: allow(a2-panic-free) -- two-variant `StreamId` indexing a `[_; 2]`
                let seed = seeds[batch.stream as usize]
                    .get_or_insert_with(|| SkimmedSketch::new(schema.clone()));
                seed.update_batch(&batch.updates);
                if batch.client_id != 0 && batch.seq != 0 {
                    let entry = dedup.entry(batch.client_id).or_insert([0, 0]);
                    // ss-analyze: allow(a2-panic-free) -- two-variant `StreamId` indexing a `[u64; 2]`
                    let slot = &mut entry[batch.stream as usize];
                    *slot = (*slot).max(batch.seq);
                }
            }
            report.batches_replayed = recovered.batches.len() as u64;
            if let Some(m) = metrics {
                m.recovered_batches.add(report.batches_replayed);
                m.wal_torn_bytes.add(report.torn_bytes);
                m.wal_torn_tail_truncations
                    .add(report.torn_tail_truncations);
            }
            wal = Some(opened);
            recovery = Some(report);
        }

        let workers = config.ingest_workers;
        let depth = config.queue_depth;
        let mk_pool = |seed: Option<SkimmedSketch>| {
            let schema = schema.clone();
            let mut seed = seed;
            // Worker 0 inherits the recovered sketch; merge-by-linearity
            // folds it into the drained result exactly once.
            Arc::new(IngestPool::with_queue_depth(workers, depth, move || {
                seed.take()
                    .unwrap_or_else(|| SkimmedSketch::new(schema.clone()))
            }))
        };
        let [seed_f, seed_g] = seeds;
        let follower = config.follower_of.is_some();
        let inner = Arc::new(Inner {
            pools: [mk_pool(seed_f), mk_pool(seed_g)],
            // ss-analyze: allow(a4-blocking-hot-path) -- see the `persist` field: serialization is the durability contract
            persist: Mutex::new(Persist { wal, dedup }),
            has_wal: config.wal.is_some(),
            shutdown: AtomicBool::new(false),
            metrics,
            slow: SlowLog::new(config.slow_log),
            audit: Audit::new(if stream_telemetry::ENABLED {
                config.audit_shift
            } else {
                None
            }),
            started: Instant::now(),
            role: AtomicU8::new(if follower {
                ROLE_FOLLOWER
            } else {
                ROLE_PRIMARY
            }),
            epoch: AtomicU64::new(replication::INITIAL_EPOCH),
            tailer: config.wal.as_ref().map(|w| WalTailer::new(&w.dir)),
            repl: config.follower_of.clone().map(replication::ReplState::new),
            follower_ack: replication::FollowerAck::new(),
            config,
            // ss-analyze: allow(a4-blocking-hot-path) -- see the `overflow` field: accept-time and shutdown-time only
            overflow: Mutex::new(Vec::new()),
        });
        if follower {
            replication::spawn(&inner)?;
        }

        // Bounded hand-off from acceptor to handlers: when all handlers
        // are busy the acceptor blocks here and new connections wait in
        // the OS listen backlog instead of a process-side queue.
        let (conn_tx, conn_rx) =
            std::sync::mpsc::sync_channel::<TcpStream>(inner.config.handler_threads * 2);
        // ss-analyze: allow(a4-blocking-hot-path) -- accept-path hand-off, taken once per connection (not per frame); contention is bounded by the handler count
        let conn_rx = Arc::new(Mutex::new(conn_rx));

        let handlers = (0..inner.config.handler_threads)
            .map(|_| {
                let inner = inner.clone();
                let conn_rx = conn_rx.clone();
                std::thread::spawn(move || loop {
                    let next = {
                        // A poisoned lock only means a sibling handler
                        // panicked mid-recv; the receiver itself is still
                        // coherent, so keep serving instead of cascading.
                        let rx = conn_rx.lock().unwrap_or_else(|p| p.into_inner());
                        rx.recv_timeout(Duration::from_millis(100))
                    };
                    match next {
                        Ok(sock) => {
                            if inner.shutdown.load(Ordering::Acquire) {
                                continue; // accepted but never served: drop
                            }
                            handle_connection(&inner, sock);
                        }
                        Err(RecvTimeoutError::Timeout) => {
                            if inner.shutdown.load(Ordering::Acquire) {
                                break;
                            }
                        }
                        Err(RecvTimeoutError::Disconnected) => break,
                    }
                })
            })
            .collect();

        let acceptor = {
            let inner = inner.clone();
            std::thread::spawn(move || accept_loop(&listener, &conn_tx, &inner))
        };

        Ok(Server {
            inner,
            local_addr,
            acceptor,
            handlers,
            recovery,
        })
    }

    /// The bound address (with the real port when bound to port 0).
    pub fn local_addr(&self) -> SocketAddr {
        self.local_addr
    }

    /// Advertised schema and limits (what clients see in HELLO_ACK).
    pub fn info(&self) -> ServerInfo {
        self.inner.info()
    }

    /// What crash recovery found and rebuilt at bind time; `None` when
    /// no WAL is configured.
    pub fn recovery(&self) -> Option<&RecoveryReport> {
        self.recovery.as_ref()
    }

    /// Current role: follower until a PROMOTE flips it.
    pub fn role(&self) -> Role {
        self.inner.role()
    }

    /// Current fencing epoch (1 at birth; bumped by each PROMOTE).
    pub fn epoch(&self) -> u64 {
        self.inner.epoch()
    }

    /// Upper bound on the bytes this follower trails its primary by
    /// (updated each poll); `None` when not configured as a follower.
    pub fn replication_lag_bytes(&self) -> Option<u64> {
        self.inner
            .repl
            .as_ref()
            .map(|r| r.lag_bytes.load(Ordering::Acquire))
    }

    /// True when the primary's prune horizon passed this follower's
    /// frontier mid-run: replication is parked and a restart is needed
    /// to re-bootstrap from the primary's snapshot.
    pub fn replication_needs_bootstrap(&self) -> bool {
        self.inner
            .repl
            .as_ref()
            .is_some_and(|r| r.bootstrap_required.load(Ordering::Acquire))
    }

    /// Chunks queued-but-unabsorbed in one stream's ingest pool
    /// (advisory; see [`IngestPool::pending_chunks`]).
    pub fn pending_chunks(&self, stream: StreamId) -> u64 {
        self.inner.pool(stream).pending_chunks()
    }

    /// Hard cap on [`Server::pending_chunks`]: beyond it, batches bounce
    /// with THROTTLE instead of queueing.
    pub fn queue_capacity(&self) -> u64 {
        // ss-analyze: allow(a2-panic-free) -- constant index into `[_; 2]`
        self.inner.pools[0].queue_capacity()
    }

    /// Panics caught (and survived) by one stream's ingest workers; the
    /// pool keeps serving after each (see [`IngestPool::worker_restarts`]).
    pub fn worker_restarts(&self, stream: StreamId) -> u64 {
        self.inner.pool(stream).worker_restarts()
    }

    /// In-process linearizable snapshot of one stream's sketch (same
    /// contract as [`IngestPool::snapshot`]).
    pub fn snapshot(&self, stream: StreamId) -> Result<SkimmedSketch, IngestError> {
        self.inner.pool(stream).snapshot()
    }

    /// Graceful shutdown: stop accepting, let handlers finish their
    /// in-flight request, drain both ingest pools, write a final WAL
    /// snapshot (when configured), and return the final `(F, G)`
    /// sketches. Everything a client saw acknowledged with BATCH_ACK is
    /// in them. Thread panics and lost workers surface as
    /// [`ServerError`]s instead of propagating.
    pub fn shutdown(self) -> Result<(SkimmedSketch, SkimmedSketch), ServerError> {
        let metrics = self.inner.metrics;
        self.inner.shutdown.store(true, Ordering::Release);
        // The replication thread holds an `Arc<Inner>` clone; join it
        // first or `try_unwrap` below reports the state as held.
        replication::stop(&self.inner);
        let mut first_err: Option<ServerError> = None;
        if self.acceptor.join().is_err() {
            if let Some(m) = metrics {
                m.thread_panics.inc();
            }
            let _ = ss_trace::postmortem("acceptor-panic");
            first_err = Some(ServerError::ThreadPanicked { thread: "acceptor" });
        }
        for h in self.handlers {
            if h.join().is_err() {
                if let Some(m) = metrics {
                    m.thread_panics.inc();
                }
                let _ = ss_trace::postmortem("handler-panic");
                first_err.get_or_insert(ServerError::ThreadPanicked {
                    thread: "connection handler",
                });
            }
        }
        // Overflow handlers hold `Inner` clones too; they observe the
        // shutdown flag before reading their next request, so these
        // joins are bounded by one in-flight request each.
        let overflow = {
            let mut guard = self
                .inner
                .overflow
                .lock()
                .unwrap_or_else(|p| p.into_inner());
            std::mem::take(&mut *guard)
        };
        for h in overflow {
            if h.join().is_err() {
                if let Some(m) = metrics {
                    m.thread_panics.inc();
                }
                let _ = ss_trace::postmortem("handler-panic");
                first_err.get_or_insert(ServerError::ThreadPanicked {
                    thread: "connection handler",
                });
            }
        }
        // Every thread holding a clone is joined above, so this is the
        // last reference; a failure means an `Arc` leaked somewhere.
        let inner = Arc::try_unwrap(self.inner).map_err(|_| ServerError::StateHeld)?;
        let [pf, pg] = inner.pools;
        let finish = |stream: StreamId, p: Arc<IngestPool<SkimmedSketch>>| {
            Arc::try_unwrap(p)
                .map_err(|_| ServerError::StateHeld)?
                .finish()
                .map_err(|e| match e {
                    IngestError::WorkerPanicked { worker } => {
                        ServerError::WorkerLost { stream, worker }
                    }
                    IngestError::NoWorkers => ServerError::ThreadPanicked {
                        thread: "ingest pool",
                    },
                })
        };
        // Drain both pools even if the first fails, so no worker threads
        // leak; report the first loss.
        let f = finish(StreamId::F, pf);
        let g = finish(StreamId::G, pg);
        let (f, g) = match (f, g) {
            (Ok(f), Ok(g)) => (f, g),
            (Err(e), _) | (_, Err(e)) => return Err(e),
        };

        // Final checkpoint: a restart over this directory replays
        // nothing and the covered segments are pruned.
        let mut persist = inner
            .persist
            .into_inner()
            .unwrap_or_else(|poisoned| poisoned.into_inner());
        if let Some(wal) = persist.wal.as_mut() {
            let snap = SnapshotBlob {
                blobs: [encode_skimmed(&f).to_vec(), encode_skimmed(&g).to_vec()],
                dedup: dedup_entries(&persist.dedup),
            };
            match wal.install_snapshot(&snap).and_then(|()| wal.sync()) {
                Ok(()) => {
                    if let Some(m) = metrics {
                        m.wal_snapshots.inc();
                    }
                }
                Err(e) => {
                    first_err.get_or_insert(ServerError::Io(e));
                }
            }
        }
        match first_err {
            Some(e) => Err(e),
            None => Ok((f, g)),
        }
    }

    /// Crash simulation for recovery tests: stops the threads, then
    /// **discards** all in-memory sketch state — no pool drain, no final
    /// snapshot, no WAL sync beyond what `write(2)` already handed to
    /// the OS. This is what `kill -9` leaves behind; a server re-bound
    /// over the same WAL directory must rebuild from the log alone.
    pub fn halt(self) {
        self.inner.shutdown.store(true, Ordering::Release);
        // A real SIGKILL takes the replication thread with the process;
        // stop it so the dropped pools are not kept alive by its Arc.
        replication::stop(&self.inner);
        // The crash dump a real SIGKILL could never write: the flight
        // recorder's last events, for the post-mortem that follows.
        let _ = ss_trace::postmortem("halt");
        let _ = self.acceptor.join();
        for h in self.handlers {
            let _ = h.join();
        }
        let overflow = {
            let mut guard = self
                .inner
                .overflow
                .lock()
                .unwrap_or_else(|p| p.into_inner());
            std::mem::take(&mut *guard)
        };
        for h in overflow {
            let _ = h.join();
        }
        // Dropping `inner` closes the pools' channels; workers exit
        // without being drained and their shards are lost, as in a real
        // crash. The WAL file handle drops unsynced.
    }
}

/// Flattens the dedup map into the snapshot's table form.
fn dedup_entries(dedup: &HashMap<u64, [u64; 2]>) -> Vec<DedupEntry> {
    dedup
        .iter()
        .map(|(&client_id, &last_seq)| DedupEntry {
            client_id,
            last_seq,
        })
        .collect()
}

fn accept_loop(listener: &TcpListener, conn_tx: &SyncSender<TcpStream>, inner: &Arc<Inner>) {
    loop {
        if inner.shutdown.load(Ordering::Acquire) {
            return;
        }
        match listener.accept() {
            Ok((sock, _peer)) => {
                if let Some(m) = inner.metrics {
                    m.accepted.inc();
                }
                // Bounded hand-off; poll so a shutdown during a full
                // queue cannot wedge the acceptor.
                let mut sock = sock;
                loop {
                    match conn_tx.try_send(sock) {
                        Ok(()) => break,
                        Err(TrySendError::Full(s)) => {
                            if inner.shutdown.load(Ordering::Acquire) {
                                return;
                            }
                            // Every pooled handler is busy — and with
                            // replication in the picture, possibly busy
                            // *forever* (a follower's poll session and a
                            // supervisor's probe session never end). Spill
                            // to a dedicated thread rather than queueing a
                            // client behind sessions that won't yield.
                            match spawn_overflow(inner, s) {
                                Ok(()) => break,
                                Err(back) => {
                                    sock = back;
                                    // ss-analyze: allow(a4-blocking-hot-path) -- acceptor backoff at the overflow cap; no frame is in flight on this thread
                                    std::thread::sleep(Duration::from_millis(2));
                                }
                            }
                        }
                        Err(TrySendError::Disconnected(_)) => return,
                    }
                }
            }
            Err(e) if e.kind() == io::ErrorKind::WouldBlock => {
                // ss-analyze: allow(a4-blocking-hot-path) -- nonblocking-accept poll tick; the acceptor owns no data-path work
                std::thread::sleep(Duration::from_millis(2));
            }
            Err(_) => {
                // Transient accept errors (e.g. ECONNABORTED): keep serving.
                // ss-analyze: allow(a4-blocking-hot-path) -- accept-error backoff on the acceptor thread, off the data path
                std::thread::sleep(Duration::from_millis(2));
            }
        }
    }
}

/// Serves `sock` on a fresh overflow thread (see [`Inner::overflow`]).
/// Returns the socket back when the overflow lane is at its cap;
/// finished overflow threads are reaped here, so the vector's length is
/// the number of *live* ones. If the spawn itself fails the connection
/// is dropped (the peer sees a reset and retries), which is the same
/// outcome as an accept error under resource exhaustion.
fn spawn_overflow(inner: &Arc<Inner>, sock: TcpStream) -> Result<(), TcpStream> {
    let mut overflow = inner.overflow.lock().unwrap_or_else(|p| p.into_inner());
    overflow.retain(|h| !h.is_finished());
    if overflow.len() >= OVERFLOW_HANDLERS_MAX {
        return Err(sock);
    }
    let thread_inner = inner.clone();
    if let Ok(handle) = std::thread::Builder::new()
        .name("ss-overflow".to_string())
        .spawn(move || handle_connection(&thread_inner, sock))
    {
        overflow.push(handle);
    }
    Ok(())
}

/// Sends one frame, counting it into the tx telemetry. The reply echoes
/// the request's trace context (when it carried one) so the client can
/// pair its Request span with the server's Handler span.
fn send(
    sock: &mut TcpStream,
    frame: &Frame,
    ctx: Option<TraceContext>,
    metrics: Option<&'static ServerMetrics>,
) -> bool {
    match frame.write_to_traced(sock, ctx) {
        Ok(n) => {
            if let Some(m) = metrics {
                m.frames_tx.inc();
                m.bytes_tx.add(n as u64);
            }
            true
        }
        Err(_) => false,
    }
}

fn send_error(
    sock: &mut TcpStream,
    code: ErrorCode,
    message: &str,
    metrics: Option<&'static ServerMetrics>,
) {
    let _ = send(
        sock,
        &Frame::Error {
            code,
            message: message.to_string(),
        },
        None,
        metrics,
    );
}

/// Serves one connection to completion: handshake, then strict
/// request/reply until GOODBYE, error, disconnect, or server shutdown.
fn handle_connection(inner: &Inner, mut sock: TcpStream) {
    let metrics = inner.metrics;
    if sock.set_nodelay(true).is_err()
        || sock
            .set_read_timeout(Some(inner.config.read_timeout))
            .is_err()
        || sock
            .set_write_timeout(Some(inner.config.write_timeout))
            .is_err()
    {
        return;
    }
    if let Some(m) = metrics {
        m.connections.add(1);
    }
    serve_frames(inner, &mut sock);
    if let Some(m) = metrics {
        m.connections.add(-1);
    }
}

/// Reads one frame, handling idle ticks and shutdown; `None` means the
/// connection is done (closed, errored, or the server is draining).
///
/// `scratch` is the connection's reusable payload buffer: it grows to the
/// largest payload the connection has seen and is reused for every frame
/// after, so steady-state ingest performs no per-frame allocation.
fn next_frame(
    inner: &Inner,
    sock: &mut TcpStream,
    scratch: &mut Vec<u8>,
) -> Option<(Frame, Option<TraceContext>)> {
    let metrics = inner.metrics;
    loop {
        // Checked before every read, not just on idle ticks: a peer
        // that never goes quiet (a replication poll loop, a tight
        // producer) must not be able to starve the drain and wedge
        // shutdown/halt joins. The request already being processed
        // still finishes — this gates picking up the *next* one.
        if inner.shutdown.load(Ordering::Acquire) {
            send_error(
                sock,
                ErrorCode::ShuttingDown,
                "server draining; reconnect later",
                metrics,
            );
            return None;
        }
        match Frame::read_traced_from_with_scratch(sock, inner.config.max_payload, scratch) {
            Ok((frame, n, ctx)) => {
                if let Some(m) = metrics {
                    m.frames_rx.inc();
                    m.bytes_rx.add(n as u64);
                }
                return Some((frame, ctx));
            }
            Err(WireError::Idle) => {}
            Err(WireError::Closed) => return None,
            Err(WireError::Io(_)) => return None,
            Err(decode_err) => {
                // Header/CRC/payload-shape failures: the stream may no
                // longer sit at a frame boundary, so report and close.
                if let Some(m) = metrics {
                    m.decode_errors.inc();
                }
                send_error(sock, ErrorCode::Protocol, &decode_err.to_string(), metrics);
                return None;
            }
        }
    }
}

/// The per-request trace handles threaded through a handler: the wire
/// context to echo on the reply, and the `(trace, parent-span)` tag
/// downstream stages (queue, ingest, WAL) parent their spans under.
#[derive(Clone, Copy)]
struct ReqTrace {
    ctx: Option<TraceContext>,
    tag: TraceTag,
}

/// Handles one UPDATE_BATCH (already destructured by the dispatch
/// match): dedup, dispatch, WAL append, ack — in that order. Returns
/// `false` when the connection must close.
fn handle_update_batch(
    inner: &Inner,
    sock: &mut TcpStream,
    stream: StreamId,
    client_id: u64,
    seq: u64,
    updates: Vec<stream_model::update::Update>,
    trace: ReqTrace,
) -> bool {
    let ReqTrace { ctx, tag } = trace;
    let metrics = inner.metrics;
    let _span = metrics.map(|m| m.update_latency.start_span());
    let len = updates.len();
    if len as u64 > inner.config.max_batch as u64 {
        send_error(
            sock,
            ErrorCode::BatchTooLarge,
            &format!(
                "batch of {} exceeds max_batch {}",
                len, inner.config.max_batch
            ),
            metrics,
        );
        return true;
    }
    let accepted = len as u64;
    // §5.1 audit: fold sampled keys into the exact counts before the
    // updates are moved into the pool. `ENABLED` is a compile-time
    // const, so the scan vanishes entirely from uninstrumented builds.
    if stream_telemetry::ENABLED && inner.audit.active() {
        inner.audit.observe(stream, &updates);
    }
    let pool = inner.pool(stream);

    let ack = |sock: &mut TcpStream| send(sock, &Frame::BatchAck { accepted }, ctx, metrics);
    let throttle = |sock: &mut TcpStream| {
        if let Some(m) = metrics {
            m.throttles.inc();
        }
        send(
            sock,
            &Frame::Throttle {
                pending: pool.pending_chunks(),
                limit: pool.queue_capacity(),
            },
            ctx,
            metrics,
        )
    };

    // Fast path — nothing to log, nothing to dedup: unsequenced traffic
    // on a WAL-less server keeps the original lock-free throughput.
    if !inner.has_wal && client_id == 0 {
        return match pool.try_dispatch_traced(updates, tag) {
            Ok(()) => {
                if let Some((trace, parent)) = tag {
                    ss_trace::instant(Phase::Queue, trace, parent, accepted);
                }
                if let Some(m) = metrics {
                    m.updates_accepted.add(accepted);
                }
                ack(sock)
            }
            Err(_refused) => throttle(sock),
        };
    }

    // Persist path: dedup check, dispatch, and WAL append serialize
    // through one lock — which is also what makes a snapshot an exact
    // cut of the log. Poison recovery is sound here: dedup writes are
    // single-map inserts and WAL appends are atomic at record
    // granularity (recovery treats a torn record as a torn tail), so a
    // handler that panicked mid-critical-section leaves consistent state.
    let mut persist = inner.persist.lock().unwrap_or_else(|p| p.into_inner());
    if client_id != 0 && seq != 0 {
        let last = persist
            .dedup
            .get(&client_id)
            // ss-analyze: allow(a2-panic-free) -- two-variant `StreamId` indexing a `[u64; 2]`
            .map_or(0, |e| e[stream as usize]);
        if seq <= last {
            // Already applied (the ack was lost, the producer replayed
            // after recovery, or a gated ack timed out into a
            // throttle): acknowledge without re-applying — but the ack
            // still rides the replication gate. The current WAL
            // frontier covers this batch's append (conservatively), so
            // gating on it keeps "acked ⇒ on the follower" true across
            // retries.
            let target = persist
                .wal
                .as_ref()
                .map(|w| (w.active_segment_id(), w.active_segment_len()));
            drop(persist);
            if let Some(m) = metrics {
                m.dup_batches.inc();
            }
            return match target {
                Some(t) if !replication::gate_ack(inner, t) => throttle(sock),
                _ => ack(sock),
            };
        }
    }
    // Encode from the borrowed parts so the WAL record is byte-identical
    // to the frame the client sent (and no update clone is needed).
    let encoded = persist
        .wal
        .is_some()
        .then(|| stream_wire::encode_update_batch(stream, client_id, seq, &updates));
    if pool.try_dispatch_traced(updates, tag).is_err() {
        drop(persist);
        return throttle(sock);
    }
    if let Some((trace, parent)) = tag {
        ss_trace::instant(Phase::Queue, trace, parent, accepted);
    }
    if let Some(m) = metrics {
        m.updates_accepted.add(accepted);
    }
    let mut gate_target: Option<(u64, u64)> = None;
    if let (Some(wal), Some(bytes)) = (persist.wal.as_mut(), encoded) {
        let _wal_span = tag.map(|(trace, parent)| {
            ss_trace::span(Phase::WalAppend, trace, parent, bytes.len() as u64)
        });
        if let Err(e) = wal.append_encoded(&bytes) {
            // The batch is applied in memory but not durable. Record it
            // as applied (true for this process) and refuse the ack: the
            // producer retries, dedup absorbs the replay, and after a
            // crash the WAL honestly lacks the batch — so the retry
            // lands exactly once either way.
            if client_id != 0 && seq != 0 {
                bump_dedup(&mut persist, client_id, stream, seq);
            }
            drop(persist);
            send_error(
                sock,
                ErrorCode::Internal,
                &format!("wal append failed: {e}"),
                metrics,
            );
            return true;
        }
        if let Some(m) = metrics {
            m.wal_appends.inc();
            m.wal_bytes.add(bytes.len() as u64);
        }
        // Captured right after the append, so the frontier covers
        // exactly this batch — the ack gate below waits for the
        // follower to confirm through here, no further.
        if client_id != 0 && seq != 0 {
            gate_target = Some((wal.active_segment_id(), wal.active_segment_len()));
        }
    }
    if client_id != 0 && seq != 0 {
        bump_dedup(&mut persist, client_id, stream, seq);
    }
    maybe_checkpoint(inner, &mut persist);
    drop(persist);
    // Replication ack gate: with an attached follower, "acked" must
    // imply "replicated" or a failover can silently drop batches the
    // producer believes are durable. Timing out throttles the producer;
    // its retry hits the dedup path above and re-checks the gate.
    match gate_target {
        Some(target) if !replication::gate_ack(inner, target) => throttle(sock),
        _ => ack(sock),
    }
}

fn bump_dedup(persist: &mut Persist, client_id: u64, stream: StreamId, seq: u64) {
    // ss-analyze: allow(a2-panic-free) -- two-variant `StreamId` indexing a `[u64; 2]`
    let slot = &mut persist.dedup.entry(client_id).or_insert([0, 0])[stream as usize];
    *slot = (*slot).max(seq);
}

/// Installs a periodic snapshot when the WAL's policy asks for one.
/// Caller holds the persist lock, so the two pool snapshots capture
/// exactly the batches appended so far — an exact cut.
fn maybe_checkpoint(inner: &Inner, persist: &mut Persist) {
    let Some(wal) = persist.wal.as_mut() else {
        return;
    };
    if !wal.wants_snapshot() {
        return;
    }
    let (Ok(f), Ok(g)) = (
        inner.pool(StreamId::F).snapshot(),
        inner.pool(StreamId::G).snapshot(),
    ) else {
        // A worker shard is lost; checkpointing now would persist the
        // loss. Keep the full log instead — replay still has everything.
        return;
    };
    let snap = SnapshotBlob {
        blobs: [encode_skimmed(&f).to_vec(), encode_skimmed(&g).to_vec()],
        dedup: dedup_entries(&persist.dedup),
    };
    if wal.install_snapshot(&snap).is_ok() {
        if let Some(m) = inner.metrics {
            m.wal_snapshots.inc();
        }
    }
}

fn serve_frames(inner: &Inner, sock: &mut TcpStream) {
    let metrics = inner.metrics;
    // One payload buffer for the connection's whole life (see `next_frame`).
    let mut scratch = Vec::new();

    // Handshake: the first frame must be HELLO offering a protocol
    // version in our accepted range. The session then speaks the
    // *offered* version: a v2 client never sees (and may not send) the
    // v3 cluster vocabulary. Out-of-range offers get the typed
    // UNSUPPORTED_VERSION code so mixed fleets fail loud at rollout
    // instead of tripping generic protocol errors mid-session.
    let session_protocol;
    match next_frame(inner, sock, &mut scratch) {
        Some((Frame::Hello { protocol, .. }, ctx)) => {
            if !(MIN_PROTOCOL_VERSION..=PROTOCOL_VERSION).contains(&protocol) {
                send_error(
                    sock,
                    ErrorCode::UnsupportedVersion,
                    &format!(
                        "protocol {protocol} unsupported (server speaks \
                         {MIN_PROTOCOL_VERSION}..={PROTOCOL_VERSION})"
                    ),
                    metrics,
                );
                return;
            }
            session_protocol = protocol;
            if !send(sock, &Frame::HelloAck(inner.info()), ctx, metrics) {
                return;
            }
        }
        Some(_) => {
            send_error(sock, ErrorCode::Protocol, "expected HELLO", metrics);
            return;
        }
        None => return,
    }

    while let Some((frame, ctx)) = next_frame(inner, sock, &mut scratch) {
        // The request's Handler span: child of the client's Request
        // span when the frame carried a trace context; downstream work
        // (queueing, ingest, WAL, estimation) parents under it.
        let handler_span = ctx.map(|c| ss_trace::span(Phase::Handler, c.trace_id, c.span_id, 0));
        let tag: TraceTag = ctx.map(|c| {
            let parent = handler_span
                .as_ref()
                .map_or(c.span_id, ss_trace::SpanGuard::id);
            (c.trace_id, parent)
        });
        match frame {
            Frame::UpdateBatch {
                stream,
                client_id,
                seq,
                updates,
            } => {
                if inner.role() == Role::Follower {
                    // Typed refusal, session kept open: the producer's
                    // router re-resolves the primary and retries there.
                    let primary = inner.config.follower_of.as_deref().unwrap_or("the primary");
                    send_error(
                        sock,
                        ErrorCode::NotPrimary,
                        &format!("follower of {primary}: writes go to the primary"),
                        metrics,
                    );
                    continue;
                }
                let trace = ReqTrace { ctx, tag };
                if !handle_update_batch(inner, sock, stream, client_id, seq, updates, trace) {
                    return;
                }
            }
            Frame::Resume { client_id } => {
                let last = {
                    // Same poison-recovery argument as the persist path.
                    let persist = inner.persist.lock().unwrap_or_else(|p| p.into_inner());
                    persist.dedup.get(&client_id).copied().unwrap_or([0, 0])
                };
                let [last_seq_f, last_seq_g] = last;
                let reply = Frame::ResumeAck {
                    last_seq_f,
                    last_seq_g,
                };
                if !send(sock, &reply, ctx, metrics) {
                    return;
                }
            }
            Frame::QueryJoin => {
                let _span = metrics.map(|m| m.query_join_latency.start_span());
                let t0 = Instant::now();
                let snap_span = tag.map(|(t, p)| ss_trace::span(Phase::Snapshot, t, p, 0));
                let snaps = (
                    inner.pool(StreamId::F).snapshot_traced(tag),
                    inner.pool(StreamId::G).snapshot_traced(tag),
                );
                drop(snap_span);
                let t1 = Instant::now();
                let (Ok(f), Ok(g)) = snaps else {
                    send_error(sock, ErrorCode::Internal, "ingest worker lost", metrics);
                    return;
                };
                let est_span = tag.map(|(t, p)| ss_trace::span(Phase::Estimate, t, p, 0));
                let est = estimate_join(&f, &g, &inner.config.estimator);
                drop(est_span);
                let t2 = Instant::now();
                let reply = Frame::Answer {
                    estimate: est.estimate,
                    dense_dense: est.dense_dense,
                    dense_sparse: est.dense_sparse,
                    sparse_dense: est.sparse_dense,
                    sparse_sparse: est.sparse_sparse,
                    dense_f: est.dense_f as u64,
                    dense_g: est.dense_g as u64,
                };
                let enc_span = tag.map(|(t, p)| ss_trace::span(Phase::Encode, t, p, 0));
                let sent = send(sock, &reply, ctx, metrics);
                drop(enc_span);
                record_if_slow(inner, ctx, KIND_QUERY_JOIN, t0, t1, t2);
                if !sent {
                    return;
                }
            }
            Frame::QuerySelfJoin { stream } => {
                let _span = metrics.map(|m| m.query_self_latency.start_span());
                let t0 = Instant::now();
                let snap_span = tag.map(|(t, p)| ss_trace::span(Phase::Snapshot, t, p, 0));
                let snap = inner.pool(stream).snapshot_traced(tag);
                drop(snap_span);
                let t1 = Instant::now();
                let Ok(sk) = snap else {
                    send_error(sock, ErrorCode::Internal, "ingest worker lost", metrics);
                    return;
                };
                let est_span = tag.map(|(t, p)| ss_trace::span(Phase::Estimate, t, p, 0));
                let estimate = estimate_self_join(&sk, &inner.config.estimator);
                drop(est_span);
                let t2 = Instant::now();
                let reply = Frame::Answer {
                    estimate,
                    dense_dense: 0.0,
                    dense_sparse: 0.0,
                    sparse_dense: 0.0,
                    sparse_sparse: 0.0,
                    dense_f: 0,
                    dense_g: 0,
                };
                let enc_span = tag.map(|(t, p)| ss_trace::span(Phase::Encode, t, p, 0));
                let sent = send(sock, &reply, ctx, metrics);
                drop(enc_span);
                record_if_slow(inner, ctx, KIND_QUERY_SELF_JOIN, t0, t1, t2);
                if !sent {
                    return;
                }
            }
            Frame::Snapshot { stream } => {
                let _span = metrics.map(|m| m.snapshot_latency.start_span());
                let t0 = Instant::now();
                let snap_span = tag.map(|(t, p)| ss_trace::span(Phase::Snapshot, t, p, 0));
                let snap = inner.pool(stream).snapshot_traced(tag);
                drop(snap_span);
                let t1 = Instant::now();
                let Ok(sk) = snap else {
                    send_error(sock, ErrorCode::Internal, "ingest worker lost", metrics);
                    return;
                };
                let enc_span = tag.map(|(t, p)| ss_trace::span(Phase::Encode, t, p, 0));
                let reply = Frame::SnapshotReply {
                    stream,
                    sketch: encode_skimmed(&sk).to_vec(),
                };
                let sent = send(sock, &reply, ctx, metrics);
                drop(enc_span);
                record_if_slow(inner, ctx, KIND_SNAPSHOT, t0, t1, t1);
                if !sent {
                    return;
                }
            }
            Frame::Inspect {
                sections,
                last_events,
                slow_limit,
            } => {
                let report = build_inspect_report(inner, sections, last_events, slow_limit);
                if let Some(m) = metrics {
                    m.inspects.inc();
                }
                if !send(sock, &Frame::InspectReply(Box::new(report)), ctx, metrics) {
                    return;
                }
            }
            Frame::ShardQuery { streams } => {
                if session_protocol < 3 {
                    send_error(
                        sock,
                        ErrorCode::Protocol,
                        "SHARD_QUERY requires a protocol-v3 session",
                        metrics,
                    );
                    return;
                }
                if !inner.config.shard {
                    send_error(
                        sock,
                        ErrorCode::Protocol,
                        "not a shard: this server does not serve SHARD_QUERY",
                        metrics,
                    );
                    return;
                }
                let _span = metrics.map(|m| m.shard_query_latency.start_span());
                let t0 = Instant::now();
                let snap_span = tag.map(|(t, p)| ss_trace::span(Phase::Snapshot, t, p, 0));
                // Snapshot both streams under one request so the reply is
                // a single linearizable cut of this shard's state.
                let want_f = streams & SHARD_STREAM_F != 0;
                let want_g = streams & SHARD_STREAM_G != 0;
                let snap_f = want_f.then(|| inner.pool(StreamId::F).snapshot_traced(tag));
                let snap_g = want_g.then(|| inner.pool(StreamId::G).snapshot_traced(tag));
                drop(snap_span);
                let t1 = Instant::now();
                let unpack = |snap: Option<Result<_, _>>| match snap {
                    None => Some(Vec::new()),
                    Some(Ok(sk)) => Some(encode_skimmed(&sk).to_vec()),
                    Some(Err(_)) => None,
                };
                let (Some(sketch_f), Some(sketch_g)) = (unpack(snap_f), unpack(snap_g)) else {
                    send_error(sock, ErrorCode::Internal, "ingest worker lost", metrics);
                    return;
                };
                let enc_span = tag.map(|(t, p)| ss_trace::span(Phase::Encode, t, p, 0));
                let reply = Frame::ShardQueryReply {
                    streams,
                    sketch_f,
                    sketch_g,
                };
                let sent = send(sock, &reply, ctx, metrics);
                drop(enc_span);
                record_if_slow(inner, ctx, KIND_SHARD_QUERY, t0, t1, t1);
                if !sent {
                    return;
                }
            }
            Frame::ReplicateAck {
                epoch: _,
                segment,
                offset,
            } => {
                // A follower's long-poll: its durable frontier is the
                // implicit ack; the reply is the next chunk of our log.
                if session_protocol < 3 {
                    send_error(
                        sock,
                        ErrorCode::Protocol,
                        "REPLICATE_ACK requires a protocol-v3 session",
                        metrics,
                    );
                    return;
                }
                match replication::serve_poll(inner, segment, offset) {
                    Ok(reply) => {
                        if !send(sock, &reply, ctx, metrics) {
                            return;
                        }
                    }
                    Err((code, message)) => {
                        send_error(sock, code, &message, metrics);
                        return;
                    }
                }
            }
            Frame::Replicate {
                epoch,
                segment,
                offset,
                snapshot,
                frontier_segment: _,
                frontier_offset: _,
                bytes,
            } => {
                // Push-applied replication: the epoch check is the
                // split-brain fence — a deposed primary's late chunk
                // carries a stale epoch and is refused.
                if session_protocol < 3 {
                    send_error(
                        sock,
                        ErrorCode::Protocol,
                        "REPLICATE requires a protocol-v3 session",
                        metrics,
                    );
                    return;
                }
                match replication::apply_push(inner, epoch, segment, offset, snapshot, &bytes) {
                    Ok((ack_segment, ack_offset)) => {
                        let reply = Frame::ReplicateAck {
                            epoch: inner.epoch(),
                            segment: ack_segment,
                            offset: ack_offset,
                        };
                        if !send(sock, &reply, ctx, metrics) {
                            return;
                        }
                    }
                    Err((code, message)) => {
                        send_error(sock, code, &message, metrics);
                        return;
                    }
                }
            }
            Frame::Heartbeat { .. } => {
                // Request fields carry the prober's view and are not
                // needed to answer; the reply is this node's role,
                // epoch, and durable frontier.
                if session_protocol < 3 {
                    send_error(
                        sock,
                        ErrorCode::Protocol,
                        "HEARTBEAT requires a protocol-v3 session",
                        metrics,
                    );
                    return;
                }
                let (segment, offset) = inner.wal_frontier();
                let reply = Frame::Heartbeat {
                    epoch: inner.epoch(),
                    primary: inner.role() == Role::Primary,
                    segment,
                    offset,
                };
                if !send(sock, &reply, ctx, metrics) {
                    return;
                }
            }
            Frame::Promote { epoch } => {
                if session_protocol < 3 {
                    send_error(
                        sock,
                        ErrorCode::Protocol,
                        "PROMOTE requires a protocol-v3 session",
                        metrics,
                    );
                    return;
                }
                match replication::promote(inner, epoch) {
                    Ok(adopted) => {
                        if !send(sock, &Frame::Promote { epoch: adopted }, ctx, metrics) {
                            return;
                        }
                    }
                    Err((code, message)) => {
                        send_error(sock, code, &message, metrics);
                        return;
                    }
                }
            }
            Frame::Goodbye => {
                let _ = send(sock, &Frame::Goodbye, ctx, metrics);
                return;
            }
            Frame::Error { .. } => return, // client gave up; nothing to reply
            Frame::Hello { .. }
            | Frame::HelloAck(_)
            | Frame::BatchAck { .. }
            | Frame::Answer { .. }
            | Frame::SnapshotReply { .. }
            | Frame::Throttle { .. }
            | Frame::ResumeAck { .. }
            | Frame::InspectReply(_)
            | Frame::ShardMap(_)
            | Frame::ShardQueryReply { .. } => {
                send_error(
                    sock,
                    ErrorCode::Protocol,
                    "unexpected frame for a client to send",
                    metrics,
                );
                return;
            }
        }
    }
}

/// Wire kind tags recorded in slow-query entries (the `Kind` enum is
/// private to `stream-wire`; these mirror its documented grammar).
const KIND_QUERY_JOIN: u8 = 5;
const KIND_QUERY_SELF_JOIN: u8 = 6;
const KIND_SNAPSHOT: u8 = 8;
const KIND_SHARD_QUERY: u8 = 18;

/// Folds one finished query's phase timing into the slow-query log when
/// it crossed the configured threshold. `t0`→`t1` is snapshot
/// acquisition, `t1`→`t2` estimation, `t2`→now encode + reply write.
fn record_if_slow(
    inner: &Inner,
    ctx: Option<TraceContext>,
    kind: u8,
    t0: Instant,
    t1: Instant,
    t2: Instant,
) {
    let done = Instant::now();
    let total = done.duration_since(t0);
    if total < inner.config.slow_query {
        return;
    }
    if let Some(m) = inner.metrics {
        m.slow_queries.inc();
    }
    inner.slow.record(SlowQueryEntry {
        ts_ns: inner.started.elapsed().as_nanos() as u64,
        trace_id: ctx.map_or(0, |c| c.trace_id),
        kind,
        total_ns: total.as_nanos() as u64,
        snapshot_ns: t1.duration_since(t0).as_nanos() as u64,
        estimate_ns: t2.duration_since(t1).as_nanos() as u64,
        encode_ns: done.duration_since(t2).as_nanos() as u64,
    });
}

/// Assembles the INSPECT reply: each requested section is gathered
/// fresh, sections this build cannot produce (telemetry compiled out)
/// come back empty rather than erroring.
fn build_inspect_report(
    inner: &Inner,
    sections: u8,
    last_events: u32,
    slow_limit: u32,
) -> InspectReport {
    let mut report = InspectReport {
        uptime_ns: inner.started.elapsed().as_nanos() as u64,
        ..InspectReport::default()
    };
    // The audit pass runs first so the gauge and histogram it feeds are
    // already current when the metrics section of the same reply renders.
    if sections & INSPECT_AUDIT != 0 && stream_telemetry::ENABLED && inner.audit.active() {
        if let (Ok(f), Ok(g)) = (
            inner.pool(StreamId::F).snapshot(),
            inner.pool(StreamId::G).snapshot(),
        ) {
            let metrics = inner.metrics;
            report.audit = inner.audit.summarize([&f, &g], |ratio| {
                if let Some(m) = metrics {
                    m.audit_ratio_hist.record_f64(ratio);
                }
            });
            if let (Some(m), Some(a)) = (metrics, report.audit.as_ref()) {
                m.audit_ratio_error.set(a.mean_ratio_error);
            }
        }
    }
    if sections & INSPECT_METRICS != 0 && stream_telemetry::ENABLED {
        report.metrics_json = stream_telemetry::global().render_json_lines();
    }
    if sections & INSPECT_EVENTS != 0 {
        report.events = ss_trace::recent_events(last_events as usize)
            .iter()
            .map(|e| stream_wire::WireSpanEvent {
                ts_ns: e.ts_ns,
                trace_id: e.trace_id,
                span_id: e.span_id,
                parent_id: e.parent_id,
                phase: e.phase,
                kind: e.kind,
                thread: e.thread,
                arg: e.arg,
            })
            .collect();
    }
    if sections & INSPECT_SLOW != 0 {
        report.slow = inner.slow.snapshot(slow_limit as usize);
    }
    report
}
