//! Serving-layer telemetry, compile-gated exactly like the rest of the
//! workspace: with `--no-default-features` every handle below is a ZST
//! no-op and the `Option` wrappers at call sites fold away.
//!
//! The metric set answers the operational questions a serving front-end
//! raises: how many connections are live, how much traffic each frame
//! direction carries, how often decodes fail (a corruption / hostile
//! client signal), how often producers are throttled (a capacity
//! signal), and the latency of each request kind.

use std::sync::{Arc, OnceLock};
use stream_telemetry::{Counter, FloatGauge, Gauge, Histogram, Unit};

/// Cached handles for the server's metrics.
pub(crate) struct ServerMetrics {
    /// Currently open client connections.
    pub connections: Arc<Gauge>,
    /// Connections accepted since start.
    pub accepted: Arc<Counter>,
    /// Frames received from clients.
    pub frames_rx: Arc<Counter>,
    /// Frames sent to clients.
    pub frames_tx: Arc<Counter>,
    /// Wire bytes received from clients.
    pub bytes_rx: Arc<Counter>,
    /// Wire bytes sent to clients.
    pub bytes_tx: Arc<Counter>,
    /// Frames that failed header/CRC/payload decoding.
    pub decode_errors: Arc<Counter>,
    /// UPDATE_BATCH frames bounced with THROTTLE.
    pub throttles: Arc<Counter>,
    /// Updates accepted into the ingest pools over the wire.
    pub updates_accepted: Arc<Counter>,
    /// Sequenced batches acknowledged without being re-applied
    /// (idempotent replay after a reconnect or server recovery).
    pub dup_batches: Arc<Counter>,
    /// Batches appended to the write-ahead log.
    pub wal_appends: Arc<Counter>,
    /// Bytes appended to the write-ahead log.
    pub wal_bytes: Arc<Counter>,
    /// Snapshots installed (periodic checkpoints + the shutdown one).
    pub wal_snapshots: Arc<Counter>,
    /// Batches replayed from the log during crash recovery.
    pub recovered_batches: Arc<Counter>,
    /// Bytes discarded from torn WAL tails during crash recovery.
    pub wal_torn_bytes: Arc<Counter>,
    /// Torn-tail truncations performed during crash recovery (one per
    /// recovery that found a partial record; 0 after clean shutdowns).
    pub wal_torn_tail_truncations: Arc<Counter>,
    /// Follower lag behind the primary's durable frontier, in bytes
    /// (upper bound; 0 when caught up or not a follower).
    pub replication_lag_bytes: Arc<Gauge>,
    /// Replicated batches applied by this follower.
    pub replication_applied: Arc<Counter>,
    /// Non-empty replication chunks applied (poll replies + pushes).
    pub replication_chunks: Arc<Counter>,
    /// Replication requests rejected by the fencing-epoch check.
    pub replication_fenced: Arc<Counter>,
    /// PROMOTE requests honoured (follower → primary transitions).
    pub replication_promotions: Arc<Counter>,
    /// Times the primary's prune horizon passed this follower's frontier
    /// mid-run (replication parks; a restart re-bootstraps).
    pub replication_resyncs: Arc<Counter>,
    /// Acceptor / connection-handler threads lost to panics.
    pub thread_panics: Arc<Counter>,
    /// INSPECT requests answered.
    pub inspects: Arc<Counter>,
    /// Queries that crossed the slow-query threshold.
    pub slow_queries: Arc<Counter>,
    /// Mean absolute ratio error of the last §5.1 audit pass.
    pub audit_ratio_error: Arc<FloatGauge>,
    /// Per-comparison absolute ratio errors across audit passes.
    pub audit_ratio_hist: Arc<Histogram>,
    /// UPDATE_BATCH handling latency (decode excluded, dispatch + reply).
    pub update_latency: Arc<Histogram>,
    /// QUERY_JOIN handling latency (two snapshots + ESTSKIMJOINSIZE).
    pub query_join_latency: Arc<Histogram>,
    /// QUERY_SELF_JOIN handling latency.
    pub query_self_latency: Arc<Histogram>,
    /// SNAPSHOT handling latency (snapshot + encode).
    pub snapshot_latency: Arc<Histogram>,
    /// SHARD_QUERY handling latency (shard role: both snapshots +
    /// encode, one linearizable cut).
    pub shard_query_latency: Arc<Histogram>,
}

/// The lazily-registered process-wide [`ServerMetrics`].
pub(crate) fn server_metrics() -> &'static ServerMetrics {
    static METRICS: OnceLock<ServerMetrics> = OnceLock::new();
    METRICS.get_or_init(|| {
        let r = stream_telemetry::global();
        let lat =
            |kind: &str| r.histogram_with("server_request_seconds", &[("kind", kind)], Unit::Nanos);
        ServerMetrics {
            connections: r.gauge("server_connections"),
            accepted: r.counter("server_connections_total"),
            frames_rx: r.counter_with("server_frames_total", &[("dir", "rx")]),
            frames_tx: r.counter_with("server_frames_total", &[("dir", "tx")]),
            bytes_rx: r.counter_with("server_bytes_total", &[("dir", "rx")]),
            bytes_tx: r.counter_with("server_bytes_total", &[("dir", "tx")]),
            decode_errors: r.counter("server_decode_errors_total"),
            throttles: r.counter("server_throttle_total"),
            updates_accepted: r.counter("server_updates_accepted_total"),
            dup_batches: r.counter("server_dup_batches_total"),
            wal_appends: r.counter("server_wal_appends_total"),
            wal_bytes: r.counter("server_wal_bytes_total"),
            wal_snapshots: r.counter("server_wal_snapshots_total"),
            recovered_batches: r.counter("server_recovered_batches_total"),
            wal_torn_bytes: r.counter("server_wal_torn_bytes_total"),
            // Named to match the recovery report field and the
            // operator-facing contract in DESIGN.md §12, not the
            // `server_` prefix convention.
            wal_torn_tail_truncations: r.counter("wal_torn_tail_truncations_total"),
            replication_lag_bytes: r.gauge("server_replication_lag_bytes"),
            replication_applied: r.counter("server_replication_applied_total"),
            replication_chunks: r.counter("server_replication_chunks_total"),
            replication_fenced: r.counter("server_replication_fenced_total"),
            replication_promotions: r.counter("server_replication_promotions_total"),
            replication_resyncs: r.counter("server_replication_resyncs_total"),
            thread_panics: r.counter("server_thread_panics_total"),
            inspects: r.counter("server_inspect_total"),
            slow_queries: r.counter("server_slow_queries_total"),
            audit_ratio_error: r.float_gauge("server_audit_ratio_error"),
            audit_ratio_hist: r.histogram("server_audit_ratio", Unit::Scaled1e6),
            update_latency: lat("update_batch"),
            query_join_latency: lat("query_join"),
            query_self_latency: lat("query_self_join"),
            snapshot_latency: lat("snapshot"),
            shard_query_latency: lat("shard_query"),
        }
    })
}
