//! `ResilientClient` — a producer that survives disconnects, server
//! restarts, and in-flight corruption without ever double-counting a
//! batch.
//!
//! The plain [`ServerClient`] is one TCP session: any socket failure
//! ends it. `ResilientClient` wraps session management around it:
//!
//! 1. every batch is **sequenced** (a nonzero `client_id` is required),
//!    so the server's idempotency table knows exactly which batches are
//!    applied;
//! 2. on any session failure it reconnects under capped exponential
//!    backoff with deterministic jitter;
//! 3. after each reconnect it sends RESUME, learns the last applied
//!    sequence number per stream, and **replays from the first
//!    unacknowledged batch** — a batch whose BATCH_ACK was lost in the
//!    failure is skipped, not re-sent, because the server already
//!    applied it.
//!
//! The result is exactly-once ingestion over an at-least-once
//! transport, which is what the chaos suite leans on: a seeded fault
//! plan may kill the connection mid-ACK, and the totals still match.

use crate::client::{Backoff, BatchOutcome, ClientConfig, ClientError, JoinAnswer, SendReport};
use crate::ServerClient;
use std::net::SocketAddr;
use stream_model::update::Update;
use stream_wire::StreamId;

/// A reconnecting, resuming, exactly-once wrapper over [`ServerClient`].
#[derive(Debug)]
pub struct ResilientClient {
    addr: SocketAddr,
    config: ClientConfig,
    /// Consecutive reconnect attempts allowed before an operation gives
    /// up with [`ClientError::Exhausted`].
    max_reconnects: u32,
    session: Option<ServerClient>,
}

impl ResilientClient {
    /// Creates a (not yet connected) resilient producer; the first
    /// operation dials.
    ///
    /// # Panics
    /// If `config.client_id == 0`: resumable replay is meaningless
    /// without a stable producer identity.
    pub fn new(addr: SocketAddr, config: ClientConfig) -> Self {
        assert!(
            config.client_id != 0,
            "ResilientClient needs a nonzero client_id for idempotent replay"
        );
        ResilientClient {
            addr,
            config,
            max_reconnects: 10,
            session: None,
        }
    }

    /// Overrides the reconnect budget (default 10 consecutive attempts).
    pub fn with_max_reconnects(mut self, attempts: u32) -> Self {
        self.max_reconnects = attempts;
        self
    }

    /// The session currently in use, dialing (with backoff + RESUME) if
    /// none is open. Mostly useful for one-off requests the wrapper has
    /// no verb for.
    pub fn session(&mut self) -> Result<&mut ServerClient, ClientError> {
        let mut last: Option<ClientError> = None;
        if self.session.is_none() {
            let mut backoff = Backoff::new(&self.config.backoff);
            for _ in 0..=self.max_reconnects {
                match ServerClient::connect_with(self.addr, self.config.clone()) {
                    // RESUME inside the same attempt: a session that
                    // cannot learn its replay point is useless.
                    Ok(mut client) => match client.resume() {
                        Ok(_) => {
                            self.session = Some(client);
                            break;
                        }
                        Err(e) => last = Some(e),
                    },
                    Err(e) => last = Some(e),
                }
                std::thread::sleep(backoff.delay());
            }
        }
        match self.session.as_mut() {
            Some(session) => Ok(session),
            None => Err(ClientError::Exhausted {
                attempts: self.max_reconnects + 1,
                last: Box::new(last.unwrap_or(ClientError::Timeout)),
            }),
        }
    }

    /// Streams `updates` in `chunk`-sized batches with exactly-once
    /// semantics across any number of disconnects: each batch gets a
    /// fixed sequence number up front, and after every reconnect the
    /// RESUME reply tells this method which batches the server already
    /// applied — those are counted as acknowledged and skipped.
    pub fn send_all(
        &mut self,
        stream: StreamId,
        updates: &[Update],
        chunk: usize,
    ) -> Result<SendReport, ClientError> {
        assert!(chunk > 0, "chunk size must be nonzero");
        let chunks: Vec<&[Update]> = updates.chunks(chunk).collect();
        let mut report = SendReport::default();
        // Chunk i is forever (base_seq + i); the mapping survives
        // reconnects because sequence numbers only advance on ACK.
        let base_seq = self.session()?.next_seq(stream);
        let mut idx = 0usize;
        let mut failures = 0u32;
        let mut backoff = Backoff::new(&self.config.backoff);
        while idx < chunks.len() {
            let session = self.session()?;
            // After a resume the session's counter may have jumped past
            // chunks whose ACK we never saw: the server applied them, so
            // they are done — never re-sent.
            let applied = session.next_seq(stream).saturating_sub(base_seq) as usize;
            if applied > idx {
                for done in chunks.iter().take(applied.min(chunks.len())).skip(idx) {
                    report.batches += 1;
                    report.updates += done.len() as u64;
                }
                idx = applied.min(chunks.len());
                continue;
            }
            if applied < idx {
                // The frontier regressed: a failover promoted a
                // follower that was replicating asynchronously (its
                // primary's gate had waived — the follower-loss double
                // fault), so chunks we saw acked are missing over
                // there. We still hold them — rewind and re-send; any
                // shard that did apply them dedups the replay.
                for lost in chunks.iter().take(idx).skip(applied) {
                    report.batches = report.batches.saturating_sub(1);
                    report.updates = report.updates.saturating_sub(lost.len() as u64);
                }
                idx = applied;
            }
            // The loop condition keeps `idx` in bounds; `get` makes the
            // exit typed rather than a panic if that ever changes.
            let Some(current) = chunks.get(idx) else {
                break;
            };
            match session.send_batch(stream, current) {
                Ok(BatchOutcome::Accepted(n)) => {
                    report.batches += 1;
                    report.updates += n;
                    idx += 1;
                    failures = 0;
                    backoff.reset();
                }
                Ok(BatchOutcome::Throttled { .. }) => {
                    report.throttled += 1;
                    std::thread::sleep(backoff.delay());
                }
                Err(e) => {
                    // Session is suspect (I/O error, corruption, server
                    // restart): drop it and reconnect. The resume on the
                    // next loop iteration decides whether this chunk was
                    // actually applied.
                    self.session = None;
                    failures += 1;
                    if failures > self.max_reconnects {
                        return Err(ClientError::Exhausted {
                            attempts: failures,
                            last: Box::new(e),
                        });
                    }
                    std::thread::sleep(backoff.delay());
                }
            }
        }
        Ok(report)
    }

    /// `COUNT(F ⋈ G)`, retried across reconnects (queries are
    /// idempotent, so a blind retry is safe).
    pub fn query_join(&mut self) -> Result<JoinAnswer, ClientError> {
        self.retry_query(|session| session.query_join())
    }

    /// Self-join estimate of one stream, retried across reconnects.
    pub fn query_self_join(&mut self, stream: StreamId) -> Result<f64, ClientError> {
        self.retry_query(move |session| session.query_self_join(stream))
    }

    fn retry_query<T>(
        &mut self,
        mut op: impl FnMut(&mut ServerClient) -> Result<T, ClientError>,
    ) -> Result<T, ClientError> {
        let mut failures = 0u32;
        let mut backoff = Backoff::new(&self.config.backoff);
        loop {
            let session = self.session()?;
            match op(session) {
                Ok(v) => return Ok(v),
                Err(e) => {
                    self.session = None;
                    failures += 1;
                    if failures > self.max_reconnects {
                        return Err(ClientError::Exhausted {
                            attempts: failures,
                            last: Box::new(e),
                        });
                    }
                    std::thread::sleep(backoff.delay());
                }
            }
        }
    }

    /// Clean close of the current session, if one is open.
    pub fn goodbye(mut self) -> Result<(), ClientError> {
        match self.session.take() {
            Some(session) => session.goodbye(),
            None => Ok(()),
        }
    }
}
