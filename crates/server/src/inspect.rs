//! Live-introspection state behind the INSPECT frame: the bounded
//! slow-query log and the online §5.1 accuracy audit.
//!
//! Both structures are deliberately tiny and bounded:
//!
//! * the slow-query log is a fixed-capacity ring of
//!   [`SlowQueryEntry`] records (oldest evicted first), written only
//!   when a query's end-to-end time crosses the configured threshold —
//!   a quiet, healthy server never takes its lock on the query path;
//! * the audit tracks **exact** frequencies for a deterministic hash
//!   sample of the key domain (the paper's §5.1 methodology turned
//!   into a live gauge): a key is sampled iff the low `shift` bits of
//!   its SplitMix64 image are zero, so every handler thread agrees on
//!   the sample with no coordination and the expected tracked fraction
//!   is `2^-shift`. The map is capped — once full, existing keys keep
//!   accumulating but new keys are ignored — so audit memory is
//!   bounded regardless of stream length.
//!
//! An INSPECT request with the audit section bit compares each tracked
//! key's exact count against the skimmed sketch's CountSketch point
//! estimate and summarises the absolute ratio-error distribution.

use skimmed_sketch::SkimmedSketch;
use std::collections::{HashMap, VecDeque};
use std::sync::Mutex;
use stream_model::update::Update;
use stream_wire::{AuditSummary, SlowQueryEntry, StreamId};

/// Hard cap on distinct keys the audit tracks per stream.
const AUDIT_KEY_CAP: usize = 4096;

/// Fixed-capacity slow-query ring. Entries are recorded newest-last;
/// eviction drops the oldest.
pub(crate) struct SlowLog {
    cap: usize,
    entries: Mutex<VecDeque<SlowQueryEntry>>,
}

impl SlowLog {
    /// An empty log retaining at most `cap` entries.
    pub(crate) fn new(cap: usize) -> Self {
        SlowLog {
            cap: cap.max(1),
            entries: Mutex::new(VecDeque::new()),
        }
    }

    /// Appends one entry, evicting the oldest past capacity.
    pub(crate) fn record(&self, entry: SlowQueryEntry) {
        // Poison recovery: a panicking writer leaves at worst a ring
        // missing its newest entry — still structurally sound.
        let mut entries = self.entries.lock().unwrap_or_else(|p| p.into_inner());
        if entries.len() >= self.cap {
            entries.pop_front();
        }
        entries.push_back(entry);
    }

    /// The newest `limit` entries, oldest first (`limit == 0` means all
    /// retained).
    pub(crate) fn snapshot(&self, limit: usize) -> Vec<SlowQueryEntry> {
        let entries = self.entries.lock().unwrap_or_else(|p| p.into_inner());
        let skip = if limit > 0 {
            entries.len().saturating_sub(limit)
        } else {
            0
        };
        entries.iter().skip(skip).copied().collect()
    }
}

/// SplitMix64 finalizer — the sampling hash. Statistically independent
/// of every sketch hash family (those are seeded polynomial schemes),
/// so the sample cannot correlate with bucket placement.
fn mix(mut z: u64) -> u64 {
    z = z.wrapping_add(0x9E37_79B9_7F4A_7C15);
    z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
    z ^ (z >> 31)
}

/// Online accuracy-audit state: exact counts of the sampled keys.
pub(crate) struct Audit {
    /// Sampling predicate: track `v` iff `mix(v) & mask == 0`.
    mask: u64,
    active: bool,
    /// Exact `f(v)` per sampled key, one map per stream.
    exact: Mutex<[HashMap<u64, i64>; 2]>,
}

impl Audit {
    /// `shift = None` disables the audit entirely; `Some(s)` samples an
    /// expected `2^-s` fraction of distinct keys.
    pub(crate) fn new(shift: Option<u32>) -> Self {
        let shift = shift.map(|s| s.min(63));
        Audit {
            mask: shift.map_or(0, |s| (1u64 << s) - 1),
            active: shift.is_some(),
            exact: Mutex::new([HashMap::new(), HashMap::new()]),
        }
    }

    /// Whether [`Audit::observe`] does anything (callers can skip the
    /// scan entirely when not).
    pub(crate) fn active(&self) -> bool {
        self.active
    }

    /// Folds a batch into the exact counts of whichever of its keys are
    /// sampled. The scan is lock-free; the lock is taken only when the
    /// batch actually contains sampled keys (an expected `2^-shift`
    /// fraction of updates).
    pub(crate) fn observe(&self, stream: StreamId, updates: &[Update]) {
        if !self.active {
            return;
        }
        let mut hits: Vec<(u64, i64)> = Vec::new();
        for u in updates {
            if mix(u.value) & self.mask == 0 {
                hits.push((u.value, u.weight));
            }
        }
        if hits.is_empty() {
            return;
        }
        let mut exact = self.exact.lock().unwrap_or_else(|p| p.into_inner());
        let Some(map) = exact.get_mut(stream as usize) else {
            return;
        };
        for (value, weight) in hits {
            if let Some(slot) = map.get_mut(&value) {
                *slot += weight;
            } else if map.len() < AUDIT_KEY_CAP {
                map.insert(value, weight);
            }
        }
    }

    /// One audit pass: every tracked key's exact count vs the sketch's
    /// point estimate, summarised as an absolute ratio-error
    /// distribution (`|est − exact| / max(1, |exact|)`). `observe` is
    /// called once per comparison (the metrics histogram feed). `None`
    /// when the audit is off or no keys are tracked yet.
    pub(crate) fn summarize(
        &self,
        sketches: [&SkimmedSketch; 2],
        mut observe: impl FnMut(f64),
    ) -> Option<AuditSummary> {
        if !self.active {
            return None;
        }
        let exact = self.exact.lock().unwrap_or_else(|p| p.into_inner());
        let mut ratios: Vec<f64> = Vec::new();
        let mut sampled_keys = 0u64;
        let mut worst = (0.0f64, 0u64);
        for (map, sketch) in exact.iter().zip(sketches) {
            sampled_keys += map.len() as u64;
            for (&value, &count) in map.iter() {
                let est = sketch.base().point_estimate(value);
                // i128: both operands span the full i64 range.
                let abs_err = (est as i128 - count as i128).unsigned_abs() as f64;
                let err = abs_err / count.unsigned_abs().max(1) as f64;
                if err > worst.0 {
                    worst = (err, value);
                }
                observe(err);
                ratios.push(err);
            }
        }
        drop(exact);
        if ratios.is_empty() {
            return None;
        }
        ratios.sort_by(|a, b| a.total_cmp(b));
        let n = ratios.len();
        let q = |p: f64| -> f64 {
            let idx = ((n - 1) as f64 * p).round() as usize;
            ratios.get(idx).copied().unwrap_or(worst.0)
        };
        Some(AuditSummary {
            sampled_keys,
            comparisons: n as u64,
            mean_ratio_error: ratios.iter().sum::<f64>() / n as f64,
            p50: q(0.5),
            p95: q(0.95),
            p99: q(0.99),
            max: worst.0,
            worst_value: worst.1,
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn entry(ts: u64) -> SlowQueryEntry {
        SlowQueryEntry {
            ts_ns: ts,
            trace_id: 0,
            kind: 5,
            total_ns: ts,
            snapshot_ns: 0,
            estimate_ns: 0,
            encode_ns: 0,
        }
    }

    #[test]
    fn slow_log_evicts_oldest_and_caps_snapshot() {
        let log = SlowLog::new(3);
        for ts in 1..=5 {
            log.record(entry(ts));
        }
        let all = log.snapshot(0);
        assert_eq!(
            all.iter().map(|e| e.ts_ns).collect::<Vec<_>>(),
            vec![3, 4, 5]
        );
        let newest = log.snapshot(2);
        assert_eq!(
            newest.iter().map(|e| e.ts_ns).collect::<Vec<_>>(),
            vec![4, 5]
        );
    }

    #[test]
    fn audit_sampling_is_deterministic_and_bounded() {
        let audit = Audit::new(Some(0)); // mask 0: every key sampled
        assert!(audit.active());
        let updates: Vec<Update> = (0..10_000).map(Update::insert).collect();
        audit.observe(StreamId::F, &updates);
        audit.observe(StreamId::F, &updates);
        let exact = audit.exact.lock().unwrap_or_else(|p| p.into_inner());
        let map = exact.first().map(HashMap::len).unwrap_or(0);
        assert!(
            map <= AUDIT_KEY_CAP,
            "tracked {map} keys, cap {AUDIT_KEY_CAP}"
        );
        // Keys admitted before the cap filled kept accumulating.
        let some = exact.first().and_then(|m| m.get(&0)).copied();
        assert_eq!(some, Some(2));
    }

    #[test]
    fn disabled_audit_is_inert() {
        let audit = Audit::new(None);
        assert!(!audit.active());
        audit.observe(StreamId::G, &[Update::insert(1)]);
        let exact = audit.exact.lock().unwrap_or_else(|p| p.into_inner());
        assert!(exact.iter().all(HashMap::is_empty));
    }
}
