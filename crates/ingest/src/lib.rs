//! # stream-ingest
//!
//! Multi-core sketch ingestion built on the linear-synopsis algebra.
//!
//! Every synopsis in this workspace is a linear projection of the stream's
//! frequency vector, so sketching commutes with partitioning: shard the
//! update stream across `N` worker threads, let each feed its own sketch
//! under the shared schema, and merge the per-worker sketches by addition.
//! Because integer counter addition is associative and commutative, the
//! merged sketch is **bit-identical** to sequentially ingesting the whole
//! stream into one sketch — no approximation is introduced by parallelism,
//! regardless of how updates interleave across workers.
//!
//! [`IngestPool`] is the sharded pool: callers hand it owned
//! `Vec<Update>` chunks (so batches move across threads without copying),
//! workers drain them through [`StreamSink::update_batch`] — the
//! loop-interchanged batch kernels — and [`IngestPool::finish`] (or
//! [`IngestPool::snapshot`]) merges the workers' sketches.
//!
//! ## Supervision
//!
//! Workers are **supervised**: a panic while absorbing a chunk (a
//! poisoned batch) is caught at the chunk boundary, counted in
//! [`IngestPool::worker_restarts`] (and the
//! `ingest_worker_restarts_total` telemetry counter), and the worker
//! keeps serving with its sketch intact — every *other* chunk it has
//! absorbed or will absorb survives, because the sketch lives outside
//! the panic scope and merge-by-linearity does not care which worker
//! carries which chunk. One poisoned batch therefore degrades the pool
//! (that chunk is partially or wholly lost) instead of killing the
//! process or poisoning [`IngestPool::finish`].

#![forbid(unsafe_code)]
#![deny(missing_docs)]
#![warn(clippy::all)]

use crossbeam::channel::{bounded, Sender, TrySendError};
use crossbeam::thread as cb_thread;
use std::panic::{catch_unwind, AssertUnwindSafe};
use std::sync::atomic::{AtomicU64, AtomicUsize, Ordering};
use std::sync::Arc;
use std::thread::JoinHandle;
use stream_model::update::Update;
use stream_sketches::{merge_parts, LinearSynopsis};
use stream_telemetry::{Counter, Gauge, Histogram, Unit};

/// Structured failure of a pool-level operation.
///
/// With in-worker supervision a worker thread can only die if a panic
/// escapes the chunk-level `catch_unwind` (e.g. the sketch's `clone`
/// panicked while answering a snapshot); these errors replace the old
/// behaviour of re-propagating the panic into the caller.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum IngestError {
    /// A worker thread died of an uncaught panic; its sketch (and every
    /// chunk it had absorbed) is lost to the merge.
    WorkerPanicked {
        /// Index of the dead worker.
        worker: usize,
    },
    /// The pool has no workers, so there is no sketch to merge. The
    /// constructor rejects zero-thread pools, so seeing this indicates a
    /// construction bypass rather than a runtime fault.
    NoWorkers,
}

impl std::fmt::Display for IngestError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            IngestError::WorkerPanicked { worker } => {
                write!(f, "ingest worker {worker} panicked; its sketch is lost")
            }
            IngestError::NoWorkers => write!(f, "ingest pool has no workers"),
        }
    }
}

impl std::error::Error for IngestError {}

/// Chunks queued per worker before [`IngestPool::dispatch`] applies
/// backpressure by blocking the producer.
const CHANNEL_DEPTH: usize = 8;

/// The causal trace tag carried alongside pool messages:
/// `Some((trace_id, parent_span_id))` when the originating request is
/// being traced, `None` otherwise. Plain ids rather than `ss-trace`
/// types so the tag costs nothing to pass in uninstrumented builds.
pub type TraceTag = Option<(u64, u64)>;

enum Msg<S> {
    /// A chunk of updates to absorb.
    Batch(Vec<Update>, TraceTag),
    /// Request a copy of the worker's current sketch.
    Snapshot(Sender<S>, TraceTag),
}

/// Pool-level telemetry handles, registered once per pool construction.
struct PoolMetrics {
    /// Chunks dispatched but not yet fully absorbed by a worker.
    queue_depth: Arc<Gauge>,
    /// Updates per dispatched chunk.
    batch_size: Arc<Histogram>,
    /// Wall time of [`IngestPool::snapshot`] (barrier + clone + merge).
    snapshot_latency: Arc<Histogram>,
}

/// Per-worker telemetry handles, moved into the worker thread.
struct WorkerMetrics {
    /// Updates this worker has absorbed.
    updates: Arc<Counter>,
    /// Chunks this worker has absorbed.
    batches: Arc<Counter>,
    /// Panics caught and survived by this worker (supervision events).
    restarts: Arc<Counter>,
    /// Shared with [`PoolMetrics::queue_depth`].
    queue_depth: Arc<Gauge>,
}

/// A pool of worker threads, each owning a private sketch under a shared
/// schema, absorbing chunks of updates in parallel.
///
/// Chunks are dispatched round-robin, so the pool is deterministic for a
/// fixed chunk sequence — and by linearity the final merged sketch does not
/// depend on the sharding at all.
///
/// # Examples
///
/// ```
/// use stream_ingest::IngestPool;
/// use stream_model::{StreamSink, Update};
/// use stream_sketches::{HashSketch, HashSketchSchema, LinearSynopsis};
///
/// let schema = HashSketchSchema::new(5, 64, 42);
/// let pool = IngestPool::new(4, || HashSketch::new(schema.clone()));
/// for chunk in (0..100_000u64).map(Update::insert).collect::<Vec<_>>().chunks(4096) {
///     pool.dispatch(chunk.to_vec());
/// }
/// let parallel = pool.finish();
///
/// let mut sequential = HashSketch::new(schema);
/// for v in 0..100_000u64 {
///     sequential.update(Update::insert(v));
/// }
/// assert_eq!(parallel.unwrap().counters(), sequential.counters());
/// ```
pub struct IngestPool<S> {
    senders: Vec<Sender<Msg<S>>>,
    workers: Vec<JoinHandle<S>>,
    /// Round-robin cursor; atomic so the pool is `Sync` and several
    /// producer threads (e.g. server connection handlers) can dispatch
    /// into one pool concurrently.
    next: AtomicUsize,
    /// Per-worker channel depth (chunks buffered before backpressure).
    depth: usize,
    /// Chunks handed to [`IngestPool::dispatch`] so far.
    dispatched: Arc<AtomicU64>,
    /// Chunks fully absorbed by workers (each worker increments after
    /// its `update_batch` returns).
    drained: Arc<AtomicU64>,
    /// Panics caught by worker supervision (the worker survived).
    restarts: Arc<AtomicU64>,
    metrics: Option<PoolMetrics>,
}

impl<S> IngestPool<S>
where
    S: LinearSynopsis + Clone + Send + 'static,
{
    /// Spawns `threads` workers, each with a fresh sketch from `make`.
    ///
    /// `make` is called once per worker on the calling thread; build the
    /// sketches from one shared `Arc` schema so they are compatible (the
    /// final merge asserts it).
    ///
    /// # Panics
    /// If `threads` is zero.
    pub fn new(threads: usize, make: impl FnMut() -> S) -> Self {
        Self::with_queue_depth(threads, CHANNEL_DEPTH, make)
    }

    /// Like [`IngestPool::new`], but with an explicit per-worker queue
    /// depth — the bounded-queue mode used by callers that want
    /// [`IngestPool::try_dispatch`] backpressure at a chosen capacity
    /// (e.g. the serving layer's THROTTLE replies).
    ///
    /// # Panics
    /// If `threads` or `depth` is zero.
    pub fn with_queue_depth(threads: usize, depth: usize, mut make: impl FnMut() -> S) -> Self {
        assert!(threads > 0, "ingest pool needs at least one worker");
        assert!(depth > 0, "queue depth must be at least one chunk");
        let metrics = stream_telemetry::ENABLED.then(|| {
            let r = stream_telemetry::global();
            PoolMetrics {
                queue_depth: r.gauge("ingest_queue_depth"),
                batch_size: r.histogram("ingest_batch_size", Unit::Count),
                snapshot_latency: r.histogram("ingest_snapshot_seconds", Unit::Nanos),
            }
        });
        let dispatched = Arc::new(AtomicU64::new(0));
        let drained = Arc::new(AtomicU64::new(0));
        let restarts = Arc::new(AtomicU64::new(0));
        let mut senders = Vec::with_capacity(threads);
        let mut workers = Vec::with_capacity(threads);
        for w in 0..threads {
            let (tx, rx) = bounded::<Msg<S>>(depth);
            let mut sketch = make();
            let drained = drained.clone();
            let restarts = restarts.clone();
            let telem = metrics.as_ref().map(|m| {
                let r = stream_telemetry::global();
                let worker = w.to_string();
                let labels = [("worker", worker.as_str())];
                WorkerMetrics {
                    updates: r.counter_with("ingest_worker_updates_total", &labels),
                    batches: r.counter_with("ingest_worker_batches_total", &labels),
                    restarts: r.counter_with("ingest_worker_restarts_total", &labels),
                    queue_depth: m.queue_depth.clone(),
                }
            });
            workers.push(std::thread::spawn(move || {
                for msg in rx {
                    match msg {
                        Msg::Batch(chunk, tag) => {
                            // Supervision boundary: a panic inside the
                            // batch kernel (a poisoned update) is caught
                            // here so the worker — and every other chunk
                            // in its sketch — survives. The poisoned
                            // chunk itself may be partially applied; the
                            // durability layer's WAL is what makes it
                            // recoverable.
                            let span = tag.map(|(trace, parent)| {
                                ss_trace::span(
                                    ss_trace::Phase::Ingest,
                                    trace,
                                    parent,
                                    chunk.len() as u64,
                                )
                            });
                            let outcome =
                                catch_unwind(AssertUnwindSafe(|| sketch.update_batch(&chunk)));
                            drop(span);
                            drained.fetch_add(1, Ordering::Release);
                            if let Some(t) = &telem {
                                t.queue_depth.add(-1);
                            }
                            match outcome {
                                Ok(()) => {
                                    if let Some(t) = &telem {
                                        t.updates.add(chunk.len() as u64);
                                        t.batches.inc();
                                    }
                                }
                                Err(_panic) => {
                                    restarts.fetch_add(1, Ordering::Release);
                                    if let Some(t) = &telem {
                                        t.restarts.inc();
                                    }
                                    // Leave a post-mortem trail of the
                                    // events leading into the poisoned
                                    // chunk (no-op unless the host
                                    // process configured a dump path).
                                    let _ = ss_trace::postmortem("ingest-worker-panic");
                                }
                            }
                        }
                        Msg::Snapshot(reply, tag) => {
                            // `clone` can panic too; treat it as a
                            // supervision event. Dropping `reply` without
                            // sending makes the requester's `recv` fail,
                            // which `snapshot` surfaces as an error.
                            let span = tag.map(|(trace, parent)| {
                                ss_trace::span(ss_trace::Phase::SnapshotClone, trace, parent, 0)
                            });
                            let outcome = catch_unwind(AssertUnwindSafe(|| sketch.clone()));
                            drop(span);
                            match outcome {
                                Ok(copy) => {
                                    // The requester may give up (drop the
                                    // receiver) before we reply; that's
                                    // not a worker error.
                                    let _ = reply.send(copy);
                                }
                                Err(_panic) => {
                                    restarts.fetch_add(1, Ordering::Release);
                                    if let Some(t) = &telem {
                                        t.restarts.inc();
                                    }
                                    let _ = ss_trace::postmortem("ingest-snapshot-panic");
                                }
                            }
                        }
                    }
                }
                sketch
            }));
            senders.push(tx);
        }
        Self {
            senders,
            workers,
            next: AtomicUsize::new(0),
            depth,
            dispatched,
            drained,
            restarts,
            metrics,
        }
    }

    /// Panics caught (and survived) by worker supervision since the pool
    /// started. Each one corresponds to a poisoned chunk or a failed
    /// snapshot clone; the pool kept serving through all of them.
    pub fn worker_restarts(&self) -> u64 {
        self.restarts.load(Ordering::Acquire)
    }

    /// Number of worker threads.
    pub fn threads(&self) -> usize {
        self.senders.len()
    }

    /// Upper bound on [`IngestPool::pending_chunks`]: each worker can
    /// buffer `depth` chunks in its channel plus the one it is currently
    /// absorbing. [`IngestPool::try_dispatch`] refuses work beyond this
    /// capacity, so a caller that only uses `try_dispatch` has a hard cap
    /// on the memory queued inside the pool.
    pub fn queue_capacity(&self) -> u64 {
        (self.senders.len() * (self.depth + 1)) as u64
    }

    /// Queues a chunk of updates on the next worker (round-robin). Blocks
    /// when that worker's queue is full — natural backpressure for
    /// producers that outrun the sketchers.
    pub fn dispatch(&self, chunk: Vec<Update>) {
        self.dispatch_traced(chunk, None);
    }

    /// [`IngestPool::dispatch`] carrying a trace tag: the worker that
    /// absorbs the chunk records an `ingest` span parented under the
    /// tag's span id, extending the request's causal trace across the
    /// thread hop.
    pub fn dispatch_traced(&self, chunk: Vec<Update>, tag: TraceTag) {
        if chunk.is_empty() {
            return;
        }
        self.dispatched.fetch_add(1, Ordering::Release);
        if let Some(m) = &self.metrics {
            m.queue_depth.add(1);
            m.batch_size.record(chunk.len() as u64);
        }
        // ordering: Relaxed — the cursor is a load-balancing hint only; by
        // sketch linearity the merged result is identical whichever worker
        // takes the chunk, so no happens-before edge is required.
        let i = self.next.fetch_add(1, Ordering::Relaxed) % self.senders.len();
        // ss-analyze: allow(a2-panic-free) -- `i` is reduced mod `senders.len()` and the constructor rejects zero workers; `send` only fails if a supervisor dropped its receiver, which would already be a supervision bug worth a loud stop
        self.senders[i]
            .send(Msg::Batch(chunk, tag))
            // ss-analyze: allow(a2-panic-free) -- send fails only if the supervisor dropped its receiver; supervision restarts workers for the life of the pool, so a failure here is a supervision bug that must stop the process, not lose the chunk silently
            .unwrap_or_else(|_| unreachable!("worker alive while pool holds its sender"));
    }

    /// Queues a chunk only if a worker has buffer space free right now;
    /// otherwise hands the chunk back so the caller can apply its own
    /// backpressure (drop, retry later, or tell a remote producer to
    /// throttle) instead of blocking or buffering without bound.
    ///
    /// Starting from the round-robin cursor, every worker is probed once,
    /// so a single busy worker does not fail the dispatch while its
    /// siblings are idle. By sketch linearity the final merged synopsis is
    /// independent of which worker takes the chunk.
    #[allow(clippy::result_large_err)] // the Err *is* the caller's chunk
    pub fn try_dispatch(&self, chunk: Vec<Update>) -> Result<(), Vec<Update>> {
        self.try_dispatch_traced(chunk, None)
    }

    /// [`IngestPool::try_dispatch`] carrying a trace tag (see
    /// [`IngestPool::dispatch_traced`]).
    #[allow(clippy::result_large_err)] // the Err *is* the caller's chunk
    pub fn try_dispatch_traced(
        &self,
        chunk: Vec<Update>,
        tag: TraceTag,
    ) -> Result<(), Vec<Update>> {
        if chunk.is_empty() {
            return Ok(());
        }
        let n = self.senders.len();
        // ordering: Relaxed — same as `dispatch`: the cursor only spreads
        // load; correctness never depends on which worker wins the race.
        let start = self.next.fetch_add(1, Ordering::Relaxed) % n;
        let len = chunk.len() as u64;
        let mut msg = Msg::Batch(chunk, tag);
        for off in 0..n {
            // ss-analyze: allow(a2-panic-free) -- `(start + off) % n` is in bounds by the modulus; the constructor rejects zero workers
            match self.senders[(start + off) % n].try_send(msg) {
                Ok(()) => {
                    self.dispatched.fetch_add(1, Ordering::Release);
                    if let Some(m) = &self.metrics {
                        m.queue_depth.add(1);
                        m.batch_size.record(len);
                    }
                    return Ok(());
                }
                Err(TrySendError::Full(m)) => msg = m,
                Err(TrySendError::Disconnected(_)) => {
                    // ss-analyze: allow(a2-panic-free) -- disconnection means the supervisor dropped its receiver mid-lifetime, a supervision bug; stopping loudly beats silently dropping acknowledged-to-caller capacity
                    unreachable!("worker alive while pool holds its sender")
                }
            }
        }
        let Msg::Batch(chunk, _tag) = msg else {
            // ss-analyze: allow(a2-panic-free) -- `msg` is constructed as `Msg::Batch` a few lines up and only ever reassigned from `TrySendError::Full`, which returns the same value
            unreachable!("try_dispatch only carries batches")
        };
        Err(chunk)
    }

    /// Chunks dispatched but not yet fully absorbed by a worker.
    ///
    /// This is an advisory count for monitoring and backpressure decisions:
    /// it is read racily against concurrent `dispatch` calls from other
    /// threads, so by the time the caller inspects the value it may already
    /// be stale. A return of `0` *after* [`IngestPool::snapshot`] or a
    /// quiescent period is exact, because workers only decrement after
    /// `update_batch` has fully returned.
    pub fn pending_chunks(&self) -> u64 {
        let dispatched = self.dispatched.load(Ordering::Acquire);
        let drained = self.drained.load(Ordering::Acquire);
        dispatched.saturating_sub(drained)
    }

    /// `true` when every dispatched chunk has been absorbed into a worker's
    /// sketch. Subject to the same advisory caveat as
    /// [`IngestPool::pending_chunks`].
    pub fn is_empty(&self) -> bool {
        self.pending_chunks() == 0
    }

    /// Merges a consistent copy of the pool's sketch without stopping it.
    ///
    /// Each worker finishes the chunks queued before this call, then sends
    /// back a clone of its sketch; the clones are merged.
    ///
    /// # Linearization contract
    ///
    /// The snapshot reflects **exactly** the chunks dispatched before this
    /// call and none dispatched after it returns. This holds because each
    /// worker's channel is FIFO: the `Snapshot` request queues behind every
    /// `Batch` already sent to that worker, so the worker has absorbed all
    /// of them before it clones its sketch. Chunks dispatched concurrently
    /// from *other* threads may or may not be included (either order is a
    /// valid linearization). After `snapshot` returns,
    /// [`IngestPool::pending_chunks`] is `0` provided no concurrent
    /// dispatches raced with the call.
    ///
    /// # Errors
    /// [`IngestError::WorkerPanicked`] if a worker died (or its `clone`
    /// panicked) instead of replying — the snapshot is incomplete and no
    /// partial sketch is returned.
    pub fn snapshot(&self) -> Result<S, IngestError> {
        self.snapshot_traced(None)
    }

    /// [`IngestPool::snapshot`] carrying a trace tag: each worker
    /// records a `snapshot_clone` span parented under the tag's span
    /// id, so a traced query shows the per-worker clone barrier.
    pub fn snapshot_traced(&self, tag: TraceTag) -> Result<S, IngestError> {
        let _span = self
            .metrics
            .as_ref()
            .map(|m| m.snapshot_latency.start_span());
        let mut replies = Vec::with_capacity(self.senders.len());
        for (worker, tx) in self.senders.iter().enumerate() {
            let (reply_tx, reply_rx) = bounded(1);
            if tx.send(Msg::Snapshot(reply_tx, tag)).is_err() {
                return Err(IngestError::WorkerPanicked { worker });
            }
            replies.push(reply_rx);
        }
        let mut parts = Vec::with_capacity(self.senders.len());
        for (worker, rx) in replies.into_iter().enumerate() {
            parts.push(
                rx.recv()
                    .map_err(|_| IngestError::WorkerPanicked { worker })?,
            );
        }
        // Per-worker partials combine exactly like per-shard sketches
        // from remote nodes: same linearity, same entry point.
        merge_parts(parts).ok_or(IngestError::NoWorkers)
    }

    /// Stops the workers and returns the merged sketch of everything
    /// dispatched.
    ///
    /// # Errors
    /// [`IngestError::WorkerPanicked`] if a worker thread died of a panic
    /// that escaped supervision; surviving workers are still joined (no
    /// threads are leaked) but the merge is abandoned because it would
    /// silently miss the dead worker's chunks.
    pub fn finish(self) -> Result<S, IngestError> {
        drop(self.senders); // workers drain their queues and return
        let mut parts = Vec::with_capacity(self.workers.len());
        let mut lost: Option<usize> = None;
        for (worker, handle) in self.workers.into_iter().enumerate() {
            match handle.join() {
                Ok(part) => parts.push(part),
                Err(_panic) => lost = lost.or(Some(worker)),
            }
        }
        if let Some(worker) = lost {
            return Err(IngestError::WorkerPanicked { worker });
        }
        merge_parts(parts).ok_or(IngestError::NoWorkers)
    }
}

/// One-shot parallel ingest: shards `updates` into `chunk_size` batches
/// across `threads` workers and returns the merged sketch. Scoped threads,
/// so the updates are borrowed, not copied.
///
/// Bit-identical to sequential ingest of `updates` into `make()`.
pub fn ingest_parallel<S>(
    updates: &[Update],
    threads: usize,
    chunk_size: usize,
    mut make: impl FnMut() -> S,
) -> S
where
    S: LinearSynopsis + Clone + Send,
{
    assert!(threads > 0, "need at least one worker");
    assert!(chunk_size > 0, "chunk size must be nonzero");
    let sketches: Vec<S> = (0..threads).map(|_| make()).collect();
    let parts = cb_thread::scope(|scope| {
        let handles: Vec<_> = sketches
            .into_iter()
            .enumerate()
            .map(|(w, mut sketch)| {
                scope.spawn(move |_| {
                    // Worker w takes chunks w, w+threads, w+2·threads, …
                    for chunk in updates.chunks(chunk_size).skip(w).step_by(threads) {
                        sketch.update_batch(chunk);
                    }
                    sketch
                })
            })
            .collect();
        handles
            .into_iter()
            // ss-analyze: allow(a2-panic-free) -- one-shot research/bench path (not the serving pool): a worker panic here is a sketch bug and re-propagating it to the caller is the correct behaviour
            .map(|h| h.join().expect("ingest worker panicked"))
            .collect::<Vec<S>>()
    })
    // ss-analyze: allow(a2-panic-free) -- crossbeam's scope only errs when a child panicked, which the join above already re-propagated
    .expect("ingest scope");
    // ss-analyze: allow(a2-panic-free) -- `threads > 0` is asserted at entry, so one part per worker exists
    merge_parts(parts).expect("at least one worker")
}

#[cfg(test)]
mod tests {
    use super::*;
    use stream_model::update::StreamSink;
    use stream_sketches::{
        AgmsSchema, AgmsSketch, CountMinSchema, CountMinSketch, HashSketch, HashSketchSchema,
    };

    fn mixed_updates(n: usize) -> Vec<Update> {
        // Deterministic mixed inserts/deletes with varied weights.
        (0..n as u64)
            .map(|i| {
                let v = i.wrapping_mul(0x9E37_79B9_7F4A_7C15) >> 44;
                let w = match i % 5 {
                    0 => -2,
                    1 => 3,
                    2 => -1,
                    3 => 7,
                    _ => 1,
                };
                Update {
                    value: v,
                    weight: w,
                }
            })
            .collect()
    }

    #[test]
    fn pool_matches_sequential_hash_sketch() {
        let schema = HashSketchSchema::new(7, 128, 3);
        let updates = mixed_updates(50_000);
        let pool = IngestPool::new(4, || HashSketch::new(schema.clone()));
        for chunk in updates.chunks(1000) {
            pool.dispatch(chunk.to_vec());
        }
        let parallel = pool.finish().expect("no worker panicked");
        let mut seq = HashSketch::new(schema);
        for &u in &updates {
            seq.update(u);
        }
        assert_eq!(parallel.counters(), seq.counters());
    }

    #[test]
    fn snapshot_is_linearizable_with_dispatch() {
        let schema = HashSketchSchema::new(5, 64, 5);
        let updates = mixed_updates(10_000);
        let pool = IngestPool::new(3, || HashSketch::new(schema.clone()));
        for chunk in updates[..5_000].chunks(500) {
            pool.dispatch(chunk.to_vec());
        }
        let snap = pool.snapshot().expect("no worker panicked");
        let mut seq_half = HashSketch::new(schema.clone());
        seq_half.update_batch(&updates[..5_000]);
        assert_eq!(snap.counters(), seq_half.counters());
        // The pool keeps going after a snapshot.
        for chunk in updates[5_000..].chunks(500) {
            pool.dispatch(chunk.to_vec());
        }
        let full = pool.finish().expect("no worker panicked");
        let mut seq_full = HashSketch::new(schema);
        seq_full.update_batch(&updates);
        assert_eq!(full.counters(), seq_full.counters());
    }

    #[test]
    fn one_shot_matches_sequential_for_agms_and_countmin() {
        let updates = mixed_updates(20_000);

        let agms_schema = AgmsSchema::new(4, 16, 7);
        let par = ingest_parallel(&updates, 4, 512, || AgmsSketch::new(agms_schema.clone()));
        let mut seq = AgmsSketch::new(agms_schema);
        for &u in &updates {
            seq.update(u);
        }
        assert_eq!(par.counters(), seq.counters());

        let cm_schema = CountMinSchema::new(4, 128, 9);
        let par = ingest_parallel(&updates, 3, 777, || CountMinSketch::new(cm_schema.clone()));
        let mut seq = CountMinSketch::new(cm_schema);
        for &u in &updates {
            seq.update(u);
        }
        assert_eq!(par.counters(), seq.counters());
    }

    #[test]
    fn single_thread_pool_degenerates_to_sequential() {
        let schema = HashSketchSchema::new(3, 32, 11);
        let updates = mixed_updates(5_000);
        let pool = IngestPool::new(1, || HashSketch::new(schema.clone()));
        pool.dispatch(updates.clone());
        let got = pool.finish().expect("no worker panicked");
        let mut seq = HashSketch::new(schema);
        seq.update_batch(&updates);
        assert_eq!(got.counters(), seq.counters());
    }

    #[test]
    fn empty_dispatches_are_ignored() {
        let schema = HashSketchSchema::new(3, 32, 13);
        let pool = IngestPool::new(2, || HashSketch::new(schema.clone()));
        pool.dispatch(Vec::new());
        let got = pool.finish().expect("no worker panicked");
        assert!(got.counters().iter().all(|&c| c == 0));
    }

    #[test]
    fn pending_chunks_drains_to_zero_after_snapshot() {
        let schema = HashSketchSchema::new(4, 64, 17);
        let updates = mixed_updates(8_000);
        let pool = IngestPool::new(2, || HashSketch::new(schema.clone()));
        assert!(pool.is_empty());
        for chunk in updates.chunks(250) {
            pool.dispatch(chunk.to_vec());
        }
        // snapshot() barriers behind every dispatched chunk, so with no
        // concurrent producers the pool is exactly drained afterwards.
        let _snap = pool.snapshot().expect("no worker panicked");
        assert_eq!(pool.pending_chunks(), 0);
        assert!(pool.is_empty());
        let _ = pool.finish().expect("no worker panicked");
    }

    #[test]
    fn try_dispatch_matches_sequential_when_accepted() {
        let schema = HashSketchSchema::new(5, 64, 19);
        let updates = mixed_updates(12_000);
        let pool = IngestPool::with_queue_depth(2, 4, || HashSketch::new(schema.clone()));
        for chunk in updates.chunks(400) {
            // Retry until accepted: equivalent to dispatch, but through
            // the non-blocking path.
            let mut chunk = chunk.to_vec();
            loop {
                match pool.try_dispatch(chunk) {
                    Ok(()) => break,
                    Err(back) => {
                        chunk = back;
                        std::thread::yield_now();
                    }
                }
            }
        }
        let got = pool.finish().expect("no worker panicked");
        let mut seq = HashSketch::new(schema);
        seq.update_batch(&updates);
        assert_eq!(got.counters(), seq.counters());
    }

    #[test]
    fn try_dispatch_hands_the_chunk_back_when_saturated() {
        // A worker wedged on a snapshot reply it can never receive would
        // be contrived; instead saturate the queue faster than one worker
        // can drain it and require at least one rejection, then verify
        // nothing was lost or duplicated.
        let schema = HashSketchSchema::new(7, 256, 23);
        let updates = mixed_updates(120_000);
        let pool = IngestPool::with_queue_depth(1, 1, || HashSketch::new(schema.clone()));
        let mut rejected = 0u64;
        let mut accepted: Vec<Update> = Vec::new();
        for chunk in updates.chunks(30_000) {
            match pool.try_dispatch(chunk.to_vec()) {
                Ok(()) => accepted.extend_from_slice(chunk),
                Err(back) => {
                    assert_eq!(back, chunk.to_vec(), "rejected chunk must come back intact");
                    rejected += 1;
                }
            }
            assert!(pool.pending_chunks() <= pool.queue_capacity());
        }
        let got = pool.finish().expect("no worker panicked");
        let mut seq = HashSketch::new(schema);
        seq.update_batch(&accepted);
        assert_eq!(got.counters(), seq.counters());
        // With depth 1 and 30k-update chunks the single worker cannot keep
        // up with a dispatch loop that does no work in between.
        assert!(rejected > 0, "expected at least one Full rejection");
    }

    #[test]
    fn pool_is_shareable_across_producer_threads() {
        fn assert_sync<T: Sync>(_: &T) {}
        let schema = HashSketchSchema::new(4, 32, 29);
        let pool = IngestPool::new(2, || HashSketch::new(schema.clone()));
        assert_sync(&pool);
        let updates = mixed_updates(16_000);
        std::thread::scope(|s| {
            for half in updates.chunks(8_000) {
                let pool = &pool;
                s.spawn(move || {
                    for chunk in half.chunks(500) {
                        pool.dispatch(chunk.to_vec());
                    }
                });
            }
        });
        let got = pool.finish().expect("no worker panicked");
        let mut seq = HashSketch::new(schema);
        seq.update_batch(&updates);
        assert_eq!(got.counters(), seq.counters());
    }

    /// A synopsis that panics while absorbing a poisoned value — the
    /// supervision tests' fault injector.
    #[derive(Clone)]
    struct PanickySketch {
        inner: HashSketch,
    }

    /// Updates carrying this value blow up the batch kernel.
    const POISON: u64 = u64::MAX;

    impl StreamSink for PanickySketch {
        fn update(&mut self, u: Update) {
            assert!(u.value != POISON, "poisoned update");
            self.inner.update(u);
        }
    }

    impl LinearSynopsis for PanickySketch {
        fn compatible(&self, other: &Self) -> bool {
            self.inner.compatible(&other.inner)
        }
        fn merge_from(&mut self, other: &Self) {
            self.inner.merge_from(&other.inner);
        }
        fn negate(&mut self) {
            self.inner.negate();
        }
        fn clear(&mut self) {
            self.inner.clear();
        }
    }

    #[test]
    fn poisoned_chunk_is_survived_and_counted() {
        let schema = HashSketchSchema::new(5, 64, 31);
        let updates = mixed_updates(9_000);
        let pool = IngestPool::new(2, || PanickySketch {
            inner: HashSketch::new(schema.clone()),
        });
        for chunk in updates[..6_000].chunks(300) {
            pool.dispatch(chunk.to_vec());
        }
        // One poisoned chunk: the worker that draws it panics inside
        // `update_batch`, is caught by supervision, and keeps serving.
        pool.dispatch(vec![Update::insert(POISON)]);
        for chunk in updates[6_000..].chunks(300) {
            pool.dispatch(chunk.to_vec());
        }
        // The pool still snapshots and finishes; everything except the
        // poisoned chunk is present.
        let snap = pool.snapshot().expect("pool serves through the panic");
        assert_eq!(pool.worker_restarts(), 1, "exactly one supervision event");
        let mut expected = HashSketch::new(schema.clone());
        expected.update_batch(&updates);
        assert_eq!(snap.inner.counters(), expected.counters());
        let fin = pool.finish().expect("supervised workers never die");
        assert_eq!(fin.inner.counters(), expected.counters());
    }

    #[test]
    fn many_poisoned_chunks_only_degrade() {
        let schema = HashSketchSchema::new(3, 32, 37);
        let updates = mixed_updates(4_000);
        let pool = IngestPool::new(3, || PanickySketch {
            inner: HashSketch::new(schema.clone()),
        });
        let mut poisons = 0u64;
        for (i, chunk) in updates.chunks(200).enumerate() {
            pool.dispatch(chunk.to_vec());
            if i % 4 == 0 {
                pool.dispatch(vec![Update::insert(POISON)]);
                poisons += 1;
            }
        }
        // Barrier behind every dispatched chunk so the restart count is
        // exact before the pool is consumed.
        let _ = pool.snapshot().expect("pool serves through the panics");
        assert_eq!(pool.worker_restarts(), poisons);
        let fin = pool.finish().expect("pool outlives every poisoned chunk");
        let mut expected = HashSketch::new(schema);
        expected.update_batch(&updates);
        assert_eq!(fin.inner.counters(), expected.counters());
    }

    #[test]
    #[should_panic(expected = "queue depth")]
    fn zero_depth_rejected() {
        let schema = HashSketchSchema::new(2, 8, 1);
        let _ = IngestPool::with_queue_depth(1, 0, || HashSketch::new(schema.clone()));
    }

    #[test]
    #[should_panic(expected = "at least one worker")]
    fn zero_threads_rejected() {
        let schema = HashSketchSchema::new(2, 8, 1);
        let _ = IngestPool::new(0, || HashSketch::new(schema.clone()));
    }
}
