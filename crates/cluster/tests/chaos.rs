//! Cluster chaos suite: kill a shard mid-UPDATE_BATCH stream, restart
//! it from its WAL on the same address, and prove the routed cluster
//! converges to answers **bit-identical** to an uninterrupted single
//! node fed the same stream.
//!
//! The convergence story under test is the exactly-once pass-through
//! design: sequenced upstream batches are forwarded *as the upstream
//! producer*, so the recovering shard's `(client_id, stream, seq)`
//! dedup — itself rebuilt from the WAL — absorbs every router retry
//! without double-counting. The suite must pass identically with and
//! without the `telemetry` feature (CI runs both).

use skimmed_sketch::{estimate_join, EstimatorConfig, SkimmedSchema, SkimmedSketch};
use ss_cluster::{Router, RouterConfig};
use std::path::PathBuf;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::{Arc, Mutex, MutexGuard};
use std::time::Duration;
use stream_durability::WalConfig;
use stream_model::{Domain, Update};
use stream_server::{BackoffConfig, ClientConfig, Server, ServerClient, ServerConfig};
use stream_wire::StreamId;

static SERIAL: Mutex<()> = Mutex::new(());

fn serial() -> MutexGuard<'static, ()> {
    SERIAL.lock().unwrap_or_else(|e| e.into_inner())
}

/// A fresh scratch directory under the system temp dir.
fn scratch_dir(tag: &str) -> PathBuf {
    static NEXT: AtomicU64 = AtomicU64::new(0);
    let dir = std::env::temp_dir().join(format!(
        "ss-cluster-chaos-{tag}-{}-{}",
        std::process::id(),
        NEXT.fetch_add(1, Ordering::Relaxed)
    ));
    std::fs::create_dir_all(&dir).expect("create scratch dir");
    dir
}

/// Deterministic mixed inserts/deletes within `domain_log2`.
fn mixed_updates(n: usize, domain_log2: u32, salt: u64) -> Vec<Update> {
    (0..n as u64)
        .map(|i| {
            let v = (i ^ salt).wrapping_mul(0x9E37_79B9_7F4A_7C15) >> (64 - domain_log2);
            let w = match i % 5 {
                0 => -1,
                1 => 3,
                _ => 1,
            };
            Update {
                value: v,
                weight: w,
            }
        })
        .collect()
}

fn shard_config(schema: Arc<SkimmedSchema>, wal_dir: &PathBuf) -> ServerConfig {
    let mut config = ServerConfig::new(schema);
    config.handler_threads = 2;
    config.ingest_workers = 2;
    config.read_timeout = Duration::from_millis(50);
    config.shard = true;
    config.wal = Some(WalConfig::new(wal_dir));
    config
}

/// A router that rides out a shard restart: enough retry budget to
/// cover several hundred milliseconds of downtime before degrading.
fn patient_router_config(addrs: Vec<String>) -> RouterConfig {
    let mut config = RouterConfig::new(addrs);
    config.handler_threads = 2;
    config.shard_read_timeout = Duration::from_millis(100);
    config.shard_reply_retries = 10;
    config.retry_budget = 400;
    config.backoff = BackoffConfig {
        base: Duration::from_micros(500),
        cap: Duration::from_millis(10),
        seed: 0xC4A0_5EED,
    };
    config
}

/// Sequenced upstream producer with enough reply patience to sit out
/// the router's recovery retries.
fn producer_config(client_id: u64) -> ClientConfig {
    ClientConfig {
        name: "chaos-producer".into(),
        client_id,
        read_timeout: Duration::from_millis(100),
        write_timeout: Duration::from_millis(500),
        reply_retries: 100,
        backoff: BackoffConfig::default(),
        ..ClientConfig::default()
    }
}

#[test]
fn shard_killed_mid_stream_restarts_from_wal_and_converges_bit_identically() {
    let _guard = serial();
    let domain_log2 = 12;
    let schema = SkimmedSchema::scanning(Domain::with_log2(domain_log2), 5, 64, 7);
    let uf = mixed_updates(16_000, domain_log2, 0xF00D);
    let ug = mixed_updates(16_000, domain_log2, 0xBEEF);

    // Ground truth: an uninterrupted single node fed the same stream.
    let mut local_f = SkimmedSketch::new(schema.clone());
    let mut local_g = SkimmedSketch::new(schema.clone());
    local_f.add_batch(&uf);
    local_g.add_batch(&ug);
    let single_config = {
        let mut c = ServerConfig::new(schema.clone());
        c.handler_threads = 2;
        c.ingest_workers = 2;
        c.read_timeout = Duration::from_millis(50);
        c.shard = true;
        c
    };
    let single = Server::bind("127.0.0.1:0", single_config).unwrap();
    let mut truth = ServerClient::connect_with(single.local_addr(), producer_config(77)).unwrap();
    truth.send_all(StreamId::F, &uf, 500).unwrap();
    truth.send_all(StreamId::G, &ug, 500).unwrap();
    let single_join = truth.query_join().unwrap().estimate;
    assert_eq!(
        single_join,
        estimate_join(&local_f, &local_g, &EstimatorConfig::default()).estimate
    );
    truth.goodbye().unwrap();
    single.shutdown().unwrap();

    // The cluster: two WAL-backed shards behind a patient router.
    let dirs = [scratch_dir("s0"), scratch_dir("s1")];
    let shard0 = Server::bind("127.0.0.1:0", shard_config(schema.clone(), &dirs[0])).unwrap();
    let shard1 = Server::bind("127.0.0.1:0", shard_config(schema.clone(), &dirs[1])).unwrap();
    let shard1_addr = shard1.local_addr();
    let addrs = vec![shard0.local_addr().to_string(), shard1_addr.to_string()];
    let router = Router::bind("127.0.0.1:0", patient_router_config(addrs)).unwrap();

    let mut producer =
        ServerClient::connect_with(router.local_addr(), producer_config(77)).unwrap();

    // First half flows normally.
    producer.send_all(StreamId::F, &uf[..8_000], 500).unwrap();
    producer.send_all(StreamId::G, &ug[..8_000], 500).unwrap();

    // Kill partition 1 mid-stream. Its listener port is freed on halt;
    // a restart thread brings it back on the SAME address (the manifest
    // pins it) from the WAL, while the producer keeps streaming and the
    // router's shard sessions retry through the outage.
    shard1.halt();
    let restart_schema = schema.clone();
    let restart_dir = dirs[1].clone();
    let restart = std::thread::spawn(move || {
        std::thread::sleep(Duration::from_millis(200));
        Server::bind(shard1_addr, shard_config(restart_schema, &restart_dir))
            .expect("shard restart on its manifest address")
    });

    producer.send_all(StreamId::F, &uf[8_000..], 500).unwrap();
    producer.send_all(StreamId::G, &ug[8_000..], 500).unwrap();
    let shard1 = restart.join().expect("restart thread");
    assert!(
        shard1.recovery().is_some_and(|r| r.batches_replayed > 0),
        "the restarted shard must have replayed WAL batches"
    );

    // Convergence: the routed answer equals the uninterrupted single
    // node's, bit for bit — no update lost to the crash window, none
    // double-counted by the retries that bridged it.
    let routed_join = producer.query_join().unwrap().estimate;
    assert_eq!(routed_join, single_join);
    let merged_f = producer.snapshot(StreamId::F).unwrap();
    assert_eq!(merged_f.level_counters(), local_f.level_counters());
    let merged_g = producer.snapshot(StreamId::G).unwrap();
    assert_eq!(merged_g.level_counters(), local_g.level_counters());

    // The map reflects recovery: the restarted shard answered the
    // queries above, so its health flag is back up.
    let map = producer.shard_map().unwrap();
    assert!(map.shards.iter().all(|s| s.healthy));

    // A full sequenced replay after the chaos is still absorbed.
    drop(producer);
    let mut replayer =
        ServerClient::connect_with(router.local_addr(), producer_config(77)).unwrap();
    replayer.send_all(StreamId::F, &uf, 500).unwrap();
    replayer.send_all(StreamId::G, &ug, 500).unwrap();
    assert_eq!(replayer.query_join().unwrap().estimate, single_join);
    replayer.goodbye().unwrap();

    router.shutdown().unwrap();
    shard0.shutdown().unwrap();
    shard1.shutdown().unwrap();
    for dir in dirs {
        std::fs::remove_dir_all(&dir).ok();
    }
}
