//! Failover chaos suite: kill a shard's primary mid-stream and prove
//! the router's supervisor detects it, PROMOTEs the follower under the
//! next fencing epoch, repoints its sessions, and that the cluster
//! converges to answers **bit-identical** to an uninterrupted single
//! node — at S ∈ {1, 2, 4} shards.
//!
//! Why bit-identity survives a failover: the follower applied the
//! primary's own WAL bytes through the recovery path, so its sketch
//! state (and its dedup table) is byte-equal to what the primary
//! persisted. The producer's ResilientClient replays unacknowledged
//! batches after the window; the replicated dedup table absorbs every
//! replay exactly once. Linearity does the rest.
//!
//! The suite must pass identically with and without the `telemetry`
//! feature (CI runs both).

use skimmed_sketch::{estimate_join, EstimatorConfig, SkimmedSchema, SkimmedSketch};
use ss_cluster::{Router, RouterConfig};
use std::path::PathBuf;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::{Arc, Mutex, MutexGuard};
use std::time::{Duration, Instant};
use stream_durability::WalConfig;
use stream_model::{Domain, Update};
use stream_server::{
    BackoffConfig, ClientConfig, ClientError, ResilientClient, Server, ServerClient, ServerConfig,
};
use stream_wire::{ErrorCode, StreamId};

static SERIAL: Mutex<()> = Mutex::new(());

fn serial() -> MutexGuard<'static, ()> {
    SERIAL.lock().unwrap_or_else(|e| e.into_inner())
}

/// A fresh scratch directory under the system temp dir.
fn scratch_dir(tag: &str) -> PathBuf {
    static NEXT: AtomicU64 = AtomicU64::new(0);
    let dir = std::env::temp_dir().join(format!(
        "ss-failover-{tag}-{}-{}",
        std::process::id(),
        NEXT.fetch_add(1, Ordering::Relaxed)
    ));
    std::fs::create_dir_all(&dir).expect("create scratch dir");
    dir
}

/// Deterministic mixed inserts/deletes within `domain_log2`.
fn mixed_updates(n: usize, domain_log2: u32, salt: u64) -> Vec<Update> {
    (0..n as u64)
        .map(|i| {
            let v = (i ^ salt).wrapping_mul(0x9E37_79B9_7F4A_7C15) >> (64 - domain_log2);
            let w = match i % 5 {
                0 => -1,
                1 => 3,
                _ => 1,
            };
            Update {
                value: v,
                weight: w,
            }
        })
        .collect()
}

fn shard_config(schema: Arc<SkimmedSchema>, wal_dir: &PathBuf) -> ServerConfig {
    let mut config = ServerConfig::new(schema);
    config.handler_threads = 2;
    config.ingest_workers = 2;
    config.read_timeout = Duration::from_millis(50);
    config.replication_poll = Duration::from_millis(5);
    config.shard = true;
    config.wal = Some(WalConfig::new(wal_dir));
    config
}

fn follower_config(schema: Arc<SkimmedSchema>, wal_dir: &PathBuf, primary: &str) -> ServerConfig {
    let mut config = shard_config(schema, wal_dir);
    config.follower_of = Some(primary.to_string());
    config
}

/// A router with fast failure detection and enough shard-retry budget
/// for its sessions to bridge the detection + promotion window.
fn failover_router_config(addrs: Vec<String>, followers: Vec<String>) -> RouterConfig {
    let mut config = RouterConfig::new(addrs);
    config.handler_threads = 2;
    config.shard_read_timeout = Duration::from_millis(100);
    config.shard_reply_retries = 10;
    config.retry_budget = 400;
    config.backoff = BackoffConfig {
        base: Duration::from_micros(500),
        cap: Duration::from_millis(10),
        seed: 0xFA11_05EED,
    };
    config.followers = followers;
    config.heartbeat_every = Duration::from_millis(30);
    config.heartbeat_timeout = Duration::from_millis(80);
    config.heartbeat_misses = 2;
    config
}

/// Sequenced upstream producer with enough reply patience to sit out
/// the failover window behind the router.
fn producer_config(client_id: u64) -> ClientConfig {
    ClientConfig {
        name: "failover-producer".into(),
        client_id,
        read_timeout: Duration::from_millis(100),
        write_timeout: Duration::from_millis(500),
        reply_retries: 100,
        backoff: BackoffConfig::default(),
        ..ClientConfig::default()
    }
}

/// Polls `cond` for up to five seconds.
fn eventually(mut cond: impl FnMut() -> bool) -> bool {
    let deadline = Instant::now() + Duration::from_secs(5);
    while Instant::now() < deadline {
        if cond() {
            return true;
        }
        std::thread::sleep(Duration::from_millis(10));
    }
    cond()
}

/// One full failover round at `shards` partitions: stream half the
/// load, kill partition `victim`'s primary, stream the rest through
/// the automatic failover, and check bit-identity plus the re-announced
/// shard map. Returns the promoted follower's address for follow-up
/// assertions.
fn failover_round(shards: usize, victim: usize) -> String {
    let domain_log2 = 12;
    let schema = SkimmedSchema::scanning(Domain::with_log2(domain_log2), 5, 64, 7);
    let uf = mixed_updates(16_000, domain_log2, 0xF00D ^ shards as u64);
    let ug = mixed_updates(16_000, domain_log2, 0xBEEF ^ shards as u64);

    // Ground truth: the linearity-exact local sketches an uninterrupted
    // single node would hold (the plain cluster suite already proves
    // served == local for the unfaulted path).
    let mut local_f = SkimmedSketch::new(schema.clone());
    let mut local_g = SkimmedSketch::new(schema.clone());
    local_f.add_batch(&uf);
    local_g.add_batch(&ug);
    let truth = estimate_join(&local_f, &local_g, &EstimatorConfig::default()).estimate;

    // S primaries, each with a WAL-shipping follower.
    let mut primaries = Vec::new();
    let mut followers = Vec::new();
    let mut dirs = Vec::new();
    for p in 0..shards {
        let pdir = scratch_dir(&format!("s{shards}p{p}"));
        let fdir = scratch_dir(&format!("s{shards}f{p}"));
        let primary = Server::bind("127.0.0.1:0", shard_config(schema.clone(), &pdir)).unwrap();
        let follower = Server::bind(
            "127.0.0.1:0",
            follower_config(schema.clone(), &fdir, &primary.local_addr().to_string()),
        )
        .unwrap();
        primaries.push(primary);
        followers.push(follower);
        dirs.push(pdir);
        dirs.push(fdir);
    }
    let addrs: Vec<String> = primaries
        .iter()
        .map(|s| s.local_addr().to_string())
        .collect();
    let follower_addrs: Vec<String> = followers
        .iter()
        .map(|s| s.local_addr().to_string())
        .collect();
    let promoted_addr = follower_addrs[victim].clone();
    let router = Router::bind(
        "127.0.0.1:0",
        failover_router_config(addrs.clone(), follower_addrs.clone()),
    )
    .unwrap();
    let version_before = router.manifest().version();

    let mut producer =
        ResilientClient::new(router.local_addr(), producer_config(77)).with_max_reconnects(40);

    // First half flows normally.
    producer.send_all(StreamId::F, &uf[..8_000], 500).unwrap();
    producer.send_all(StreamId::G, &ug[..8_000], 500).unwrap();

    // kill -9 the victim's primary mid-stream. Nobody restarts it: the
    // supervisor must notice the missed heartbeats and PROMOTE the
    // follower while the producer keeps streaming.
    primaries.remove(victim).halt();

    producer.send_all(StreamId::F, &uf[8_000..], 500).unwrap();
    producer.send_all(StreamId::G, &ug[8_000..], 500).unwrap();

    // Convergence: bit-identical to the uninterrupted single node.
    let routed = producer.query_join().unwrap().estimate;
    assert_eq!(routed, truth, "S={shards}: routed answer diverged");
    let merged_f = producer.session().unwrap().snapshot(StreamId::F).unwrap();
    assert_eq!(merged_f.level_counters(), local_f.level_counters());
    let merged_g = producer.session().unwrap().snapshot(StreamId::G).unwrap();
    assert_eq!(merged_g.level_counters(), local_g.level_counters());

    // The re-announced map records the failover: the victim partition
    // now lists the promoted follower as its primary (standby slot
    // emptied), the manifest version is bumped, and — once the quiet
    // cluster's replicas have drained — every surviving follower's lag
    // is back to zero.
    let map = producer.session().unwrap().shard_map().unwrap();
    assert_eq!(map.shards.len(), shards);
    assert_eq!(map.shards[victim].addr, promoted_addr);
    assert_eq!(
        map.shards[victim].follower, "",
        "promoted standby slot must empty"
    );
    assert!(map.shards.iter().all(|s| s.healthy));
    assert!(
        map.version > version_before,
        "failover must bump the manifest version"
    );
    assert_eq!(router.manifest().version(), map.version);
    assert!(
        eventually(|| {
            let mut probe = match ServerClient::connect(router.local_addr()) {
                Ok(c) => c,
                Err(_) => return false,
            };
            probe
                .shard_map()
                .is_ok_and(|m| m.shards.iter().all(|s| s.lag_bytes == 0))
        }),
        "surviving followers must drain to zero reported lag"
    );

    // A full sequenced replay after the chaos is still absorbed: a
    // fresh session under the same producer identity restarts at seq 1,
    // and the promoted follower's *replicated* dedup table — covering
    // the pre-kill prefix it never acknowledged itself — plus the
    // surviving shards' own tables absorb every batch.
    producer.goodbye().unwrap();
    let mut replayer =
        ServerClient::connect_with(router.local_addr(), producer_config(77)).unwrap();
    replayer.send_all(StreamId::F, &uf, 500).unwrap();
    replayer.send_all(StreamId::G, &ug, 500).unwrap();
    assert_eq!(replayer.query_join().unwrap().estimate, truth);
    replayer.goodbye().unwrap();

    router.shutdown().unwrap();
    for s in primaries {
        s.shutdown().unwrap();
    }
    // The promoted follower is in here too — shutdown() serves any role.
    for s in followers {
        s.shutdown().unwrap();
    }
    for dir in &dirs {
        std::fs::remove_dir_all(dir).ok();
    }
    promoted_addr
}

#[test]
fn failover_converges_bit_identically_at_one_shard() {
    let _guard = serial();
    failover_round(1, 0);
}

#[test]
fn failover_converges_bit_identically_at_two_shards() {
    let _guard = serial();
    failover_round(2, 1);
}

#[test]
fn failover_converges_bit_identically_at_four_shards() {
    let _guard = serial();
    failover_round(4, 2);
}

#[test]
fn fenced_ex_primary_cannot_replicate_into_the_promoted_follower() {
    let _guard = serial();
    let domain_log2 = 10;
    let schema = SkimmedSchema::scanning(Domain::with_log2(domain_log2), 4, 64, 3);
    let (pdir, fdir) = (scratch_dir("zombie-p"), scratch_dir("zombie-f"));

    let primary = Server::bind("127.0.0.1:0", shard_config(schema.clone(), &pdir)).unwrap();
    let follower = Server::bind(
        "127.0.0.1:0",
        follower_config(schema.clone(), &fdir, &primary.local_addr().to_string()),
    )
    .unwrap();
    let router = Router::bind(
        "127.0.0.1:0",
        failover_router_config(
            vec![primary.local_addr().to_string()],
            vec![follower.local_addr().to_string()],
        ),
    )
    .unwrap();

    let mut producer =
        ResilientClient::new(router.local_addr(), producer_config(31)).with_max_reconnects(40);
    let uf = mixed_updates(2_000, domain_log2, 0x2049);
    producer.send_all(StreamId::F, &uf, 250).unwrap();

    // Kill the primary; the supervisor promotes the follower.
    primary.halt();
    assert!(
        eventually(|| {
            ServerClient::connect(follower.local_addr())
                .ok()
                .and_then(|mut c| c.heartbeat(0).ok())
                .is_some_and(|s| s.primary && s.epoch == 2)
        }),
        "supervisor never promoted the follower"
    );

    // The deposed primary resurrects believing in epoch 1 and pushes a
    // late REPLICATE at its old follower: the fencing epoch rejects it.
    let mut zombie = ServerClient::connect(follower.local_addr()).unwrap();
    match zombie.replicate_push(1, 0, 0, vec![0xAB; 64]) {
        Err(ClientError::Server { code, .. }) => assert_eq!(code, ErrorCode::Fenced),
        other => panic!("stale-epoch REPLICATE must be fenced, got {other:?}"),
    }
    drop(zombie);

    // The promoted node still serves the stream it replicated.
    assert!(producer.query_join().is_ok());
    producer.goodbye().unwrap();

    router.shutdown().unwrap();
    follower.shutdown().unwrap();
    std::fs::remove_dir_all(&pdir).ok();
    std::fs::remove_dir_all(&fdir).ok();
}
