//! Cluster integration suite: routed answers must be **bit-identical**
//! to a single node fed the same stream, for every shard count; failure
//! and version mismatches must surface as their *typed* errors.
//!
//! Tests serialize on a process-wide mutex: they spin up servers,
//! routers, and (with telemetry compiled in) share the global registry.

use skimmed_sketch::{estimate_join, estimate_self_join, EstimatorConfig, SkimmedSchema};
use ss_cluster::{Router, RouterConfig};
use std::net::{TcpListener, TcpStream};
use std::sync::{Arc, Mutex, MutexGuard};
use std::time::Duration;
use stream_model::{Domain, Update};
use stream_server::{BackoffConfig, ClientConfig, ClientError, Server, ServerClient, ServerConfig};
use stream_wire::{
    ErrorCode, Frame, ShardMapInfo, StreamId, WireError, DEFAULT_MAX_PAYLOAD, MIN_PROTOCOL_VERSION,
    PROTOCOL_VERSION,
};

static SERIAL: Mutex<()> = Mutex::new(());

fn serial() -> MutexGuard<'static, ()> {
    SERIAL.lock().unwrap_or_else(|e| e.into_inner())
}

/// Deterministic mixed inserts/deletes within `domain_log2`.
fn mixed_updates(n: usize, domain_log2: u32, salt: u64) -> Vec<Update> {
    (0..n as u64)
        .map(|i| {
            let v = (i ^ salt).wrapping_mul(0x9E37_79B9_7F4A_7C15) >> (64 - domain_log2);
            let w = match i % 5 {
                0 => -1,
                1 => 3,
                _ => 1,
            };
            Update {
                value: v,
                weight: w,
            }
        })
        .collect()
}

fn shard_config(schema: Arc<SkimmedSchema>) -> ServerConfig {
    let mut config = ServerConfig::new(schema);
    config.handler_threads = 2;
    config.ingest_workers = 2;
    config.read_timeout = Duration::from_millis(50);
    config.shard = true;
    config
}

fn start_shards(n: usize, schema: &Arc<SkimmedSchema>) -> (Vec<Server>, Vec<String>) {
    let shards: Vec<Server> = (0..n)
        .map(|_| Server::bind("127.0.0.1:0", shard_config(schema.clone())).unwrap())
        .collect();
    let addrs = shards.iter().map(|s| s.local_addr().to_string()).collect();
    (shards, addrs)
}

fn test_router_config(addrs: Vec<String>) -> RouterConfig {
    let mut config = RouterConfig::new(addrs);
    config.handler_threads = 2;
    config.shard_read_timeout = Duration::from_millis(100);
    config.shard_reply_retries = 10;
    config.retry_budget = 3;
    config.backoff = BackoffConfig {
        base: Duration::from_micros(200),
        cap: Duration::from_millis(5),
        seed: 0xC1A5_5EED,
    };
    config
}

fn test_client_config(client_id: u64) -> ClientConfig {
    ClientConfig {
        name: "cluster-test".into(),
        client_id,
        read_timeout: Duration::from_millis(100),
        write_timeout: Duration::from_millis(500),
        reply_retries: 30,
        backoff: BackoffConfig::default(),
        ..ClientConfig::default()
    }
}

fn read_reply(sock: &mut TcpStream) -> Frame {
    for _ in 0..100 {
        match Frame::read_from(sock, DEFAULT_MAX_PAYLOAD) {
            Ok((frame, _)) => return frame,
            Err(WireError::Idle) => continue,
            Err(e) => panic!("reply read failed: {e}"),
        }
    }
    panic!("no reply within patience window");
}

// ---------------------------------------------------------------------
// bit-identity across shard counts
// ---------------------------------------------------------------------

#[test]
fn routed_answers_are_bit_identical_across_shard_counts() {
    let _guard = serial();
    let domain_log2 = 12;
    let schema = SkimmedSchema::scanning(Domain::with_log2(domain_log2), 5, 64, 7);
    let uf = mixed_updates(12_000, domain_log2, 0xF00D);
    let ug = mixed_updates(12_000, domain_log2, 0xBEEF);

    // Ground truth #1: the in-process estimate.
    let mut local_f = skimmed_sketch::SkimmedSketch::new(schema.clone());
    let mut local_g = skimmed_sketch::SkimmedSketch::new(schema.clone());
    local_f.add_batch(&uf);
    local_g.add_batch(&ug);
    let cfg = EstimatorConfig::default();
    let local_join = estimate_join(&local_f, &local_g, &cfg).estimate;
    let local_self_f = estimate_self_join(&local_f, &cfg);

    // Ground truth #2: a served single node fed the same stream.
    let single = Server::bind("127.0.0.1:0", shard_config(schema.clone())).unwrap();
    let mut client =
        ServerClient::connect_with(single.local_addr(), test_client_config(21)).unwrap();
    client.send_all(StreamId::F, &uf, 1_000).unwrap();
    client.send_all(StreamId::G, &ug, 1_000).unwrap();
    let single_join = client.query_join().unwrap().estimate;
    assert_eq!(single_join, local_join);
    client.goodbye().unwrap();
    single.shutdown().unwrap();

    for shard_count in [1usize, 2, 4] {
        let (shards, addrs) = start_shards(shard_count, &schema);
        let router = Router::bind("127.0.0.1:0", test_router_config(addrs)).unwrap();

        // The router is indistinguishable from a server at handshake:
        // it advertises the shards' (shared) schema.
        let mut client =
            ServerClient::connect_with(router.local_addr(), test_client_config(21)).unwrap();
        assert_eq!(client.info().domain_log2 as u32, domain_log2);

        client.send_all(StreamId::F, &uf, 1_000).unwrap();
        client.send_all(StreamId::G, &ug, 1_000).unwrap();

        let routed = client.query_join().unwrap();
        assert_eq!(
            routed.estimate, single_join,
            "routed join over {shard_count} shard(s) must be bit-identical to a single node"
        );
        assert_eq!(client.query_self_join(StreamId::F).unwrap(), local_self_f);

        // The merged snapshot is the single node's sketch, bit for bit.
        let merged = client.snapshot(StreamId::F).unwrap();
        assert_eq!(merged.level_counters(), local_f.level_counters());

        // The router answers RESUME with the fleet minimum: never beyond
        // what every shard applied (12 sequenced batches per stream).
        drop(client);
        let mut resumer =
            ServerClient::connect_with(router.local_addr(), test_client_config(21)).unwrap();
        let (last_f, last_g) = resumer.resume().unwrap();
        assert!(last_f <= 12 && last_g <= 12, "fleet minimum, never beyond");
        drop(resumer);

        // Replaying the *entire* sequenced stream through the router —
        // a fresh session re-sends seq 1.. — is absorbed by shard-side
        // dedup: same answer, nothing doubled.
        let mut replayer =
            ServerClient::connect_with(router.local_addr(), test_client_config(21)).unwrap();
        replayer.send_all(StreamId::F, &uf, 1_000).unwrap();
        replayer.send_all(StreamId::G, &ug, 1_000).unwrap();
        assert_eq!(
            replayer.query_join().unwrap().estimate,
            single_join,
            "full sequenced replay must be deduplicated shard-side"
        );
        replayer.goodbye().unwrap();

        router.shutdown().unwrap();
        for shard in shards {
            shard.shutdown().unwrap();
        }
    }
}

// ---------------------------------------------------------------------
// degraded mode: typed partial-answer error
// ---------------------------------------------------------------------

#[test]
fn dead_shard_yields_typed_shard_unavailable_naming_the_partition() {
    let _guard = serial();
    let domain_log2 = 10;
    let schema = SkimmedSchema::scanning(Domain::with_log2(domain_log2), 4, 32, 3);
    let (mut shards, addrs) = start_shards(2, &schema);
    let router = Router::bind("127.0.0.1:0", test_router_config(addrs)).unwrap();

    let mut client =
        ServerClient::connect_with(router.local_addr(), test_client_config(33)).unwrap();
    let uf = mixed_updates(2_000, domain_log2, 0xAB);
    client.send_all(StreamId::F, &uf, 500).unwrap();

    // Kill partition 1 and keep it down: queries need *every* shard.
    shards.remove(1).halt();
    let err = client.query_join().unwrap_err();
    match err {
        ClientError::Server { code, message } => {
            assert_eq!(code, ErrorCode::ShardUnavailable);
            assert!(
                message.contains("partition 1"),
                "degraded error must name the missing partition, got: {message}"
            );
        }
        other => panic!("expected a typed SHARD_UNAVAILABLE server error, got {other}"),
    }

    // Writes that land on the dead partition degrade the same way; the
    // healthy partition keeps accepting its share (no ack was sent, so
    // a sequenced retry after recovery converges — see the chaos suite).
    let mut refused = false;
    for batch in uf.chunks(500) {
        match client.send_batch(StreamId::F, batch) {
            Ok(_) => {}
            Err(ClientError::Server { code, .. }) => {
                assert_eq!(code, ErrorCode::ShardUnavailable);
                refused = true;
                break;
            }
            Err(other) => panic!("unexpected failure: {other}"),
        }
    }
    assert!(refused, "some sub-batch must route to the dead partition");

    // SHARD_MAP now reports the partition unhealthy.
    let map = client.shard_map().unwrap();
    assert_eq!(map.version, 1);
    assert_eq!(map.shards.len(), 2);
    assert!(map.shards[0].healthy);
    assert!(!map.shards[1].healthy);

    drop(client);
    router.shutdown().unwrap();
    for shard in shards {
        shard.shutdown().unwrap();
    }
}

// ---------------------------------------------------------------------
// HELLO version negotiation (router and shard alike)
// ---------------------------------------------------------------------

fn hello_raw(addr: std::net::SocketAddr, protocol: u16) -> Frame {
    let mut sock = TcpStream::connect(addr).unwrap();
    sock.set_read_timeout(Some(Duration::from_millis(100)))
        .unwrap();
    Frame::Hello {
        protocol,
        client: "versioner".into(),
    }
    .write_to(&mut sock)
    .unwrap();
    read_reply(&mut sock)
}

#[test]
fn hello_negotiation_accepts_the_range_and_rejects_outside_it_typed() {
    let _guard = serial();
    let schema = SkimmedSchema::scanning(Domain::with_log2(8), 3, 32, 1);
    let (shards, addrs) = start_shards(1, &schema);
    let router = Router::bind("127.0.0.1:0", test_router_config(addrs)).unwrap();

    for addr in [shards[0].local_addr(), router.local_addr()] {
        // Both ends of the accepted range handshake fine.
        assert!(matches!(
            hello_raw(addr, MIN_PROTOCOL_VERSION),
            Frame::HelloAck(_)
        ));
        assert!(matches!(
            hello_raw(addr, PROTOCOL_VERSION),
            Frame::HelloAck(_)
        ));
        // Outside the range: the *typed* rejection, naming the range.
        for bad in [1u16, PROTOCOL_VERSION + 1] {
            match hello_raw(addr, bad) {
                Frame::Error { code, message } => {
                    assert_eq!(code, ErrorCode::UnsupportedVersion);
                    assert!(
                        message.contains(&format!("{MIN_PROTOCOL_VERSION}..={PROTOCOL_VERSION}")),
                        "rejection must name the accepted range, got: {message}"
                    );
                }
                other => panic!("expected UNSUPPORTED_VERSION, got {other:?}"),
            }
        }
    }

    // A v2 session may not speak the v3 cluster vocabulary.
    let mut sock = TcpStream::connect(router.local_addr()).unwrap();
    sock.set_read_timeout(Some(Duration::from_millis(100)))
        .unwrap();
    Frame::Hello {
        protocol: MIN_PROTOCOL_VERSION,
        client: "v2".into(),
    }
    .write_to(&mut sock)
    .unwrap();
    assert!(matches!(read_reply(&mut sock), Frame::HelloAck(_)));
    Frame::ShardMap(ShardMapInfo {
        version: 0,
        seed: 0,
        shards: Vec::new(),
    })
    .write_to(&mut sock)
    .unwrap();
    match read_reply(&mut sock) {
        Frame::Error { code, .. } => assert_eq!(code, ErrorCode::Protocol),
        other => panic!("v2 session sent SHARD_MAP, expected rejection, got {other:?}"),
    }
    drop(sock);

    router.shutdown().unwrap();
    for shard in shards {
        shard.shutdown().unwrap();
    }
}

#[test]
fn client_surfaces_version_rejection_as_typed_mismatch() {
    let _guard = serial();
    // A fake "old" server that rejects every HELLO with the typed code.
    let listener = TcpListener::bind("127.0.0.1:0").unwrap();
    let addr = listener.local_addr().unwrap();
    let fake = std::thread::spawn(move || {
        let (mut sock, _) = listener.accept().unwrap();
        let _ = Frame::read_from(&mut sock, DEFAULT_MAX_PAYLOAD);
        Frame::Error {
            code: ErrorCode::UnsupportedVersion,
            message: "server speaks 1..=1".into(),
        }
        .write_to(&mut sock)
        .unwrap();
    });
    let err = ServerClient::connect_with(addr, test_client_config(0)).unwrap_err();
    match err {
        ClientError::VersionMismatch { offered, message } => {
            assert_eq!(offered, PROTOCOL_VERSION);
            assert!(message.contains("1..=1"));
        }
        other => panic!("expected VersionMismatch, got {other}"),
    }
    fake.join().unwrap();
}

// ---------------------------------------------------------------------
// SHARD_MAP manifest
// ---------------------------------------------------------------------

#[test]
fn shard_map_serves_the_versioned_manifest() {
    let _guard = serial();
    let schema = SkimmedSchema::scanning(Domain::with_log2(8), 3, 32, 1);
    let (shards, addrs) = start_shards(2, &schema);
    let mut config = test_router_config(addrs.clone());
    config.partition_seed = 0xFEED_5EED;
    let router = Router::bind("127.0.0.1:0", config).unwrap();

    let mut client = ServerClient::connect(router.local_addr()).unwrap();
    let map = client.shard_map().unwrap();
    assert_eq!(map.version, 1);
    assert_eq!(map.seed, 0xFEED_5EED);
    let got: Vec<&str> = map.shards.iter().map(|s| s.addr.as_str()).collect();
    let want: Vec<&str> = addrs.iter().map(String::as_str).collect();
    assert_eq!(got, want, "manifest order IS the partition map");
    assert!(map.shards.iter().all(|s| s.healthy));

    // A client can rebuild the exact partition function from the wire
    // manifest — the property that makes client-side routing possible.
    let remote = ss_cluster::Partitioner::new(map.seed, map.shards.len());
    let local = router.manifest().partitioner();
    assert!((0..4096u64).all(|v| remote.shard_of(v) == local.shard_of(v)));

    // Plain shard servers do not serve SHARD_MAP.
    let mut direct = ServerClient::connect(shards[0].local_addr()).unwrap();
    assert!(matches!(
        direct.shard_map(),
        Err(ClientError::Server {
            code: ErrorCode::Protocol,
            ..
        })
    ));

    client.goodbye().unwrap();
    router.shutdown().unwrap();
    for shard in shards {
        shard.shutdown().unwrap();
    }
}

// ---------------------------------------------------------------------
// bind-time schema verification
// ---------------------------------------------------------------------

#[test]
fn router_refuses_mixed_schemas_and_non_shard_servers() {
    let _guard = serial();
    let schema_a = SkimmedSchema::scanning(Domain::with_log2(8), 3, 32, 1);
    let schema_b = SkimmedSchema::scanning(Domain::with_log2(8), 3, 32, 2); // different seed
    let shard_a = Server::bind("127.0.0.1:0", shard_config(schema_a.clone())).unwrap();
    let shard_b = Server::bind("127.0.0.1:0", shard_config(schema_b)).unwrap();

    let config = test_router_config(vec![
        shard_a.local_addr().to_string(),
        shard_b.local_addr().to_string(),
    ]);
    match Router::bind("127.0.0.1:0", config) {
        Err(ss_cluster::RouterError::SchemaMismatch {
            partition, field, ..
        }) => {
            assert_eq!(partition, 1);
            assert_eq!(field, "seed");
        }
        Ok(_) => panic!("mixed schemas must refuse to route"),
        Err(other) => panic!("expected SchemaMismatch, got {other}"),
    }
    shard_b_cleanup(shard_b);

    // A plain (non-shard-role) server fails the bind-time probe.
    let mut plain_config = ServerConfig::new(schema_a);
    plain_config.handler_threads = 2;
    plain_config.read_timeout = Duration::from_millis(50);
    let plain = Server::bind("127.0.0.1:0", plain_config).unwrap();
    let config = test_router_config(vec![
        shard_a.local_addr().to_string(),
        plain.local_addr().to_string(),
    ]);
    match Router::bind("127.0.0.1:0", config) {
        Err(ss_cluster::RouterError::Probe { partition, .. }) => assert_eq!(partition, 1),
        Ok(_) => panic!("a non-shard server must fail the probe"),
        Err(other) => panic!("expected Probe failure, got {other}"),
    }

    plain.shutdown().unwrap();
    shard_a.shutdown().unwrap();
}

fn shard_b_cleanup(shard: Server) {
    shard.shutdown().unwrap();
}
