//! The cluster router: one TCP front speaking the same wire protocol as
//! a single [`stream_server::Server`], fanning writes across a set of
//! shard servers by domain partition and answering queries by merging
//! per-shard sketch state via linearity.
//!
//! ## Why the answers are bit-identical to a single node
//!
//! Sketch ingestion is *linear*: every counter is an i64 sum of
//! per-update contributions, and i64 addition is exact, commutative,
//! and associative. Partitioning the key domain across shards therefore
//! changes nothing about the final counters — `sketch(F)` equals
//! `Σ_s sketch(F restricted to shard s)` bit for bit, in any order.
//! The router exploits this twice:
//!
//! * **writes** — each UPDATE_BATCH is split by the manifest's
//!   partition function and the sub-batches are forwarded to their
//!   owning shards;
//! * **reads** — each query fetches every shard's **unskimmed** encoded
//!   sketch state (SHARD_QUERY), merges them with
//!   [`stream_sketches::merge_parts`], and runs the estimator on the
//!   merged sketch. Skimming happens *after* the merge because the skim
//!   threshold depends on global L1 mass; skimming per shard first
//!   would break the identity.
//!
//! ## Exactly-once forwarding
//!
//! Sequenced upstream batches (`client_id != 0`) are forwarded **as the
//! upstream producer** — same `(client_id, seq)` on every sub-batch —
//! so each shard's own idempotency table deduplicates end to end. The
//! router keeps no durable state at all: after a router restart (or an
//! upstream retry through a different handler thread) a re-forwarded
//! sub-batch is absorbed by the shard exactly like a direct client's
//! replay. An upstream RESUME is answered with the per-stream *minimum*
//! of the shards' high-water marks, so the producer replays everything
//! any shard might be missing and the shards that already applied it
//! dedup the overlap. Unsequenced upstream batches are forwarded under
//! a handler-unique router identity (see [`RouterConfig::client_id_base`])
//! so shard crashes mid-forward still cannot double-count; like on a
//! single node, an unsequenced *upstream* retry after an error reply
//! may.
//!
//! ## Degraded mode
//!
//! When a shard stays unreachable past the retry budget the router
//! answers with the typed [`ErrorCode::ShardUnavailable`] error naming
//! the missing partition — never a silently under-counted answer.
//!
//! ## Failover
//!
//! When [`RouterConfig::followers`] names a replica per shard, a
//! supervisor thread probes every primary with HEARTBEAT at
//! [`RouterConfig::heartbeat_every`]. After
//! [`RouterConfig::heartbeat_misses`] consecutive misses it sends
//! PROMOTE to the shard's follower under the next fencing epoch,
//! repoints the shared [`AddressBook`](crate::AddressBook), and bumps
//! the manifest version (visible in SHARD_MAP). Handler sessions notice
//! the book's version change on their next dial, reconnect to the
//! promoted follower, and RESUME — the follower's replicated
//! idempotency table absorbs anything the dead primary already applied,
//! so exactly-once forwarding survives the failover. Because replicated
//! state is byte-identical WAL state and sketches are linear, the
//! promoted follower's answers are bit-identical to the answers the
//! primary would have given at the same acknowledged prefix.

use skimmed_sketch::{
    decode_skimmed, encode_skimmed, estimate_join, estimate_self_join, EstimatorConfig,
    SkimmedSketch,
};
use ss_retry::BackoffConfig;
use ss_trace::Phase;
use std::io;
use std::net::{SocketAddr, TcpListener, TcpStream, ToSocketAddrs};
use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::sync::mpsc::{RecvTimeoutError, SyncSender, TrySendError};
use std::sync::{Arc, Mutex};
use std::thread::JoinHandle;
use std::time::Duration;
use stream_server::{ClientConfig, ClientError, ServerClient};
use stream_sketches::merge_parts;
use stream_wire::{
    ErrorCode, Frame, InspectReport, ServerInfo, StreamId, TraceContext, WireError, INSPECT_EVENTS,
    INSPECT_METRICS, MIN_PROTOCOL_VERSION, PROTOCOL_VERSION, SHARD_STREAM_BOTH, SHARD_STREAM_F,
    SHARD_STREAM_G,
};

use crate::failover::{AddressBook, Clock, DetectorConfig, FailureDetector, SystemClock};
use crate::manifest::{ClusterManifest, Partitioner};
use crate::session::{ShardError, ShardSession};
use crate::telem::{router_metrics, RouterMetrics};

/// Router configuration: the shard set plus the knobs of both faces —
/// the client-facing listener and the shard-facing sessions.
#[derive(Debug, Clone)]
pub struct RouterConfig {
    /// Shard server addresses; partition `i` is `shards[i]`. Order is
    /// part of the cluster identity (it defines the partition map).
    pub shards: Vec<String>,
    /// Seed of the partitioning hash, recorded in the manifest. Routers
    /// that must agree on a partition map must share it.
    pub partition_seed: u64,
    /// Client-facing connection-handler threads; each owns one session
    /// per shard.
    pub handler_threads: usize,
    /// Base for handler-unique shard identities: handler `h` forwards
    /// *unsequenced* upstream traffic under `client_id_base + h`, making
    /// those forwards idempotent across shard reconnects. `0` opts the
    /// unsequenced path out of sequencing (sequenced upstream traffic is
    /// unaffected — it is always forwarded under the upstream identity).
    pub client_id_base: u64,
    /// Attempts per shard operation before the typed degraded error.
    pub retry_budget: u32,
    /// Backoff between shard retry attempts.
    pub backoff: BackoffConfig,
    /// Client-facing read timeout; also the shutdown-notice tick.
    pub read_timeout: Duration,
    /// Write timeout, both faces.
    pub write_timeout: Duration,
    /// Shard-facing socket read tick.
    pub shard_read_timeout: Duration,
    /// Shard-facing reply patience, in read ticks.
    pub shard_reply_retries: u32,
    /// Largest accepted frame payload, client-facing.
    pub max_payload: u32,
    /// Estimator knobs for merged-sketch answers. Must match the
    /// single-node configuration being compared against for answers to
    /// be bit-identical.
    pub estimator: EstimatorConfig,
    /// Follower address per partition (empty string = no follower), or
    /// an empty vec for an unreplicated cluster. When any entry is
    /// non-empty the router runs the heartbeat supervisor and fails
    /// over to the follower when a primary goes quiet.
    pub followers: Vec<String>,
    /// How often the supervisor probes each primary with HEARTBEAT.
    pub heartbeat_every: Duration,
    /// Patience per heartbeat probe (connect + reply) before it counts
    /// as a miss.
    pub heartbeat_timeout: Duration,
    /// Consecutive missed heartbeats before failover is attempted.
    pub heartbeat_misses: u32,
    /// The shards' WAL segment size, used to turn cross-segment
    /// `(segment, offset)` frontier gaps into a byte lag estimate for
    /// SHARD_MAP / `top`. Same-segment lag (the caught-up steady state)
    /// is exact regardless. Must match the shards'
    /// `WalConfig::segment_bytes` for cross-segment estimates to be
    /// meaningful.
    pub wal_segment_bytes: u64,
}

impl RouterConfig {
    /// Defaults for a loopback/LAN cluster: 4 handlers, 5 attempts per
    /// shard operation, 500 ms shard read tick × 20 retries.
    pub fn new(shards: Vec<String>) -> Self {
        RouterConfig {
            shards,
            partition_seed: 0xC1A5_7E8D,
            handler_threads: 4,
            client_id_base: 0xC1A5_7E00_0000_0000,
            retry_budget: 5,
            backoff: BackoffConfig::default(),
            read_timeout: Duration::from_millis(250),
            write_timeout: Duration::from_secs(5),
            shard_read_timeout: Duration::from_millis(500),
            shard_reply_retries: 20,
            max_payload: stream_wire::DEFAULT_MAX_PAYLOAD,
            estimator: EstimatorConfig::default(),
            followers: Vec::new(),
            heartbeat_every: Duration::from_millis(150),
            heartbeat_timeout: Duration::from_millis(250),
            heartbeat_misses: 3,
            // stream_durability::WalConfig's default segment size.
            wal_segment_bytes: 64 << 20,
        }
    }
}

/// Failures surfaced by [`Router::bind`] and [`Router::shutdown`].
#[derive(Debug)]
pub enum RouterError {
    /// Listener-level failure.
    Io(io::Error),
    /// A shard could not be probed at bind time (unreachable, or not a
    /// shard-role server).
    Probe {
        /// The partition that failed its probe.
        partition: usize,
        /// Its address.
        addr: String,
        /// What the probe died of.
        error: ClientError,
    },
    /// Two shards advertised different sketch schemas; merging their
    /// state would be meaningless, so the router refuses to start.
    SchemaMismatch {
        /// The partition that disagrees with partition 0.
        partition: usize,
        /// Its address.
        addr: String,
        /// Which advertised field differs.
        field: &'static str,
    },
    /// The acceptor or a handler thread panicked while serving.
    ThreadPanicked {
        /// Which thread family panicked.
        thread: &'static str,
    },
}

impl std::fmt::Display for RouterError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            RouterError::Io(e) => write!(f, "router i/o error: {e}"),
            RouterError::Probe {
                partition,
                addr,
                error,
            } => write!(f, "probing partition {partition} ({addr}) failed: {error}"),
            RouterError::SchemaMismatch {
                partition,
                addr,
                field,
            } => write!(
                f,
                "partition {partition} ({addr}) advertises a different `{field}` \
                 than partition 0; all shards must share one schema"
            ),
            RouterError::ThreadPanicked { thread } => write!(f, "{thread} thread panicked"),
        }
    }
}

impl std::error::Error for RouterError {}

impl From<io::Error> for RouterError {
    fn from(e: io::Error) -> Self {
        RouterError::Io(e)
    }
}

/// Shared state between router connection handlers.
struct Inner {
    config: RouterConfig,
    /// The versioned cluster manifest; the supervisor rewrites a
    /// partition's address (and bumps the version) on failover.
    // ss-analyze: allow(a4-blocking-hot-path) -- locked by SHARD_MAP replies and the (rare) failover write, never on the batch/query fan-out path
    manifest: Mutex<ClusterManifest>,
    partitioner: Partitioner,
    /// Live primary/follower table shared with every handler session;
    /// its version counter is what routes new dials after a failover.
    book: Arc<AddressBook>,
    /// Per-shard follower lag in bytes (supervisor's estimate), served
    /// in SHARD_MAP for `ssketch top`.
    lag: Vec<AtomicU64>,
    /// The schema/limits advertised to clients: partition 0's schema
    /// with the fleet-minimum `max_batch` and `queue_limit`.
    info: ServerInfo,
    /// Last-known per-shard health, written by whichever handler talked
    /// to the shard most recently; served in SHARD_MAP.
    health: Vec<AtomicBool>,
    shutdown: AtomicBool,
    metrics: Option<&'static RouterMetrics>,
    started: std::time::Instant,
}

impl Inner {
    fn manifest(&self) -> std::sync::MutexGuard<'_, ClusterManifest> {
        // A poisoned lock only means a thread panicked between reads of
        // plain data; the manifest itself stays valid.
        self.manifest.lock().unwrap_or_else(|p| p.into_inner())
    }
}

/// A running cluster router. Shut down explicitly with
/// [`Router::shutdown`]; dropping it leaves the threads unjoined.
pub struct Router {
    inner: Arc<Inner>,
    local_addr: SocketAddr,
    acceptor: JoinHandle<()>,
    handlers: Vec<JoinHandle<()>>,
    supervisor: Option<JoinHandle<()>>,
}

impl Router {
    /// Binds `addr` and starts routing over `config.shards`.
    ///
    /// Bind-time checks fail loud instead of mis-merging later: every
    /// shard is probed (it must be reachable *and* serve SHARD_QUERY —
    /// i.e. run with [`stream_server::ServerConfig::shard`] set), and
    /// all shards must advertise the identical sketch schema.
    pub fn bind<A: ToSocketAddrs>(addr: A, config: RouterConfig) -> Result<Router, RouterError> {
        assert!(!config.shards.is_empty(), "need at least one shard");
        assert!(config.handler_threads > 0, "need at least one handler");
        assert!(
            config.followers.is_empty() || config.followers.len() == config.shards.len(),
            "followers must be empty or one entry per shard (empty string for none)"
        );
        let metrics = stream_telemetry::ENABLED.then(router_metrics);

        // Probe the fleet before accepting anything.
        let mut infos: Vec<ServerInfo> = Vec::with_capacity(config.shards.len());
        for (partition, addr) in config.shards.iter().enumerate() {
            let probe_config = ClientConfig {
                name: format!("ss-router/probe{partition}"),
                read_timeout: config.shard_read_timeout,
                write_timeout: config.write_timeout,
                reply_retries: config.shard_reply_retries,
                backoff: config.backoff.clone(),
                ..ClientConfig::default()
            };
            let fail = |error| RouterError::Probe {
                partition,
                addr: addr.clone(),
                error,
            };
            let mut probe = ServerClient::connect_with(addr, probe_config).map_err(fail)?;
            // Role check: a plain (non-shard) server rejects SHARD_QUERY
            // with a protocol error, so a mis-pointed router dies here.
            probe.shard_query(SHARD_STREAM_F).map_err(fail)?;
            infos.push(*probe.info());
            let _ = probe.goodbye();
        }
        // ss-analyze: allow(a2-panic-free) -- `shards` is non-empty (asserted above), so `infos` has a first element
        let first = infos[0];
        for (partition, info) in infos.iter().enumerate() {
            let field = if info.domain_log2 != first.domain_log2 {
                Some("domain_log2")
            } else if info.dyadic != first.dyadic {
                Some("dyadic")
            } else if info.tables != first.tables {
                Some("tables")
            } else if info.buckets != first.buckets {
                Some("buckets")
            } else if info.seed != first.seed {
                Some("seed")
            } else {
                None
            };
            if let Some(field) = field {
                return Err(RouterError::SchemaMismatch {
                    partition,
                    // ss-analyze: allow(a2-panic-free) -- `infos` was built with one entry per `config.shards` element, so `partition` is in bounds
                    addr: config.shards[partition].clone(),
                    field,
                });
            }
        }
        // Advertise the fleet minimum of each limit: a batch the router
        // accepts must be acceptable to every shard it fans out to.
        let info = ServerInfo {
            max_batch: infos.iter().map(|i| i.max_batch).min().unwrap_or(0),
            queue_limit: infos.iter().map(|i| i.queue_limit).min().unwrap_or(0),
            ..first
        };

        let listener = TcpListener::bind(addr)?;
        listener.set_nonblocking(true)?;
        let local_addr = listener.local_addr()?;

        let manifest = ClusterManifest::new(config.partition_seed, config.shards.clone());
        let partitioner = manifest.partitioner();
        let book = Arc::new(AddressBook::new(&config.shards, &config.followers));
        let lag = config.shards.iter().map(|_| AtomicU64::new(0)).collect();
        let health = config
            .shards
            .iter()
            .map(|_| AtomicBool::new(true))
            .collect();
        let replicated = config.followers.iter().any(|f| !f.is_empty());
        let inner = Arc::new(Inner {
            // ss-analyze: allow(a4-blocking-hot-path) -- construction, off the data path
            manifest: Mutex::new(manifest),
            partitioner,
            book,
            lag,
            info,
            health,
            shutdown: AtomicBool::new(false),
            metrics,
            started: std::time::Instant::now(),
            config,
        });

        // Same bounded hand-off as the server: a full handler pool
        // pushes new connections back into the OS listen backlog.
        let (conn_tx, conn_rx) =
            std::sync::mpsc::sync_channel::<TcpStream>(inner.config.handler_threads * 2);
        // ss-analyze: allow(a4-blocking-hot-path) -- accept-path hand-off, taken once per connection (not per frame); contention is bounded by the handler count
        let conn_rx = Arc::new(Mutex::new(conn_rx));

        let handlers = (0..inner.config.handler_threads)
            .map(|h| {
                let inner = inner.clone();
                let conn_rx = conn_rx.clone();
                std::thread::spawn(move || {
                    // Each handler owns one session per shard, sequenced
                    // under a handler-unique identity (see the module
                    // docs' exactly-once story).
                    let mut sessions = make_sessions(&inner, h);
                    loop {
                        let next = {
                            // A poisoned lock only means a sibling
                            // handler panicked mid-recv; keep serving.
                            let rx = conn_rx.lock().unwrap_or_else(|p| p.into_inner());
                            rx.recv_timeout(Duration::from_millis(100))
                        };
                        match next {
                            Ok(sock) => {
                                if inner.shutdown.load(Ordering::Acquire) {
                                    continue; // accepted but never served: drop
                                }
                                handle_connection(&inner, &mut sessions, sock);
                            }
                            Err(RecvTimeoutError::Timeout) => {
                                if inner.shutdown.load(Ordering::Acquire) {
                                    break;
                                }
                            }
                            Err(RecvTimeoutError::Disconnected) => break,
                        }
                    }
                })
            })
            .collect();

        let acceptor = {
            let inner = inner.clone();
            std::thread::spawn(move || accept_loop(&listener, &conn_tx, &inner))
        };

        // The failure-detection / failover supervisor only runs when a
        // follower is configured somewhere; an unreplicated cluster
        // behaves exactly as before.
        let supervisor = replicated.then(|| {
            let inner = inner.clone();
            std::thread::Builder::new()
                .name("ss-supervisor".into())
                .spawn(move || supervise(&inner, &SystemClock))
        });
        let supervisor = match supervisor {
            Some(Ok(handle)) => Some(handle),
            Some(Err(e)) => {
                // Let the already-spawned threads drain and bail.
                inner.shutdown.store(true, Ordering::Release);
                return Err(RouterError::Io(e));
            }
            None => None,
        };

        Ok(Router {
            inner,
            local_addr,
            acceptor,
            handlers,
            supervisor,
        })
    }

    /// The bound address (with the real port when bound to port 0).
    pub fn local_addr(&self) -> SocketAddr {
        self.local_addr
    }

    /// A snapshot of the cluster manifest this router routes by (its
    /// version moves when a failover repoints a partition).
    pub fn manifest(&self) -> ClusterManifest {
        self.inner.manifest().clone()
    }

    /// Schema and limits advertised to clients (partition 0's schema,
    /// fleet-minimum limits).
    pub fn info(&self) -> ServerInfo {
        self.inner.info
    }

    /// Last-known per-shard health, in partition order.
    pub fn health(&self) -> Vec<bool> {
        self.inner
            .health
            .iter()
            // ordering: health flags are advisory monitoring state; no
            // other memory is published through them.
            .map(|h| h.load(Ordering::Relaxed))
            .collect()
    }

    /// Stops accepting, lets handlers finish their in-flight request,
    /// and joins every thread. The shards keep running — a router is
    /// stateless and restartable by design.
    pub fn shutdown(self) -> Result<(), RouterError> {
        self.inner.shutdown.store(true, Ordering::Release);
        let mut first_err: Option<RouterError> = None;
        if self.acceptor.join().is_err() {
            first_err = Some(RouterError::ThreadPanicked { thread: "acceptor" });
        }
        if let Some(s) = self.supervisor {
            if s.join().is_err() {
                first_err.get_or_insert(RouterError::ThreadPanicked {
                    thread: "supervisor",
                });
            }
        }
        for h in self.handlers {
            if h.join().is_err() {
                first_err.get_or_insert(RouterError::ThreadPanicked {
                    thread: "connection handler",
                });
            }
        }
        match first_err {
            Some(e) => Err(e),
            None => Ok(()),
        }
    }
}

/// Builds handler `h`'s per-shard sessions, wired to the failover
/// address book so post-promotion dials go to the new primary.
fn make_sessions(inner: &Inner, h: usize) -> Vec<ShardSession> {
    let config = &inner.config;
    (0..config.shards.len())
        .map(|partition| {
            let addr = inner.book.primary(partition).unwrap_or_default();
            let client_id = if config.client_id_base == 0 {
                0
            } else {
                config.client_id_base.wrapping_add(h as u64)
            };
            ShardSession::new(
                partition,
                addr,
                ClientConfig {
                    name: format!("ss-router/h{h}"),
                    client_id,
                    read_timeout: config.shard_read_timeout,
                    write_timeout: config.write_timeout,
                    reply_retries: config.shard_reply_retries,
                    backoff: config.backoff.clone(),
                    ..ClientConfig::default()
                },
                config.retry_budget,
            )
            .with_address_book(inner.book.clone())
        })
        .collect()
}

fn accept_loop(listener: &TcpListener, conn_tx: &SyncSender<TcpStream>, inner: &Inner) {
    loop {
        if inner.shutdown.load(Ordering::Acquire) {
            return;
        }
        match listener.accept() {
            Ok((sock, _peer)) => {
                if let Some(m) = inner.metrics {
                    m.accepted.inc();
                }
                let mut sock = sock;
                loop {
                    match conn_tx.try_send(sock) {
                        Ok(()) => break,
                        Err(TrySendError::Full(s)) => {
                            if inner.shutdown.load(Ordering::Acquire) {
                                return;
                            }
                            sock = s;
                            // ss-analyze: allow(a4-blocking-hot-path) -- acceptor backoff while every handler is busy; no frame is in flight on this thread
                            std::thread::sleep(Duration::from_millis(2));
                        }
                        Err(TrySendError::Disconnected(_)) => return,
                    }
                }
            }
            Err(e) if e.kind() == io::ErrorKind::WouldBlock => {
                // ss-analyze: allow(a4-blocking-hot-path) -- nonblocking-accept poll tick; the acceptor owns no data-path work
                std::thread::sleep(Duration::from_millis(2));
            }
            Err(_) => {
                // Transient accept errors: keep serving.
                // ss-analyze: allow(a4-blocking-hot-path) -- accept-error backoff on the acceptor thread, off the data path
                std::thread::sleep(Duration::from_millis(2));
            }
        }
    }
}

/// One partition's supervisor-side state: its failure detector, the
/// fencing epoch the supervisor will promote under, and a persistent
/// heartbeat connection to the current primary.
struct Watch {
    detector: FailureDetector,
    /// Highest fencing epoch observed from this partition's primary; a
    /// failover promotes the follower under `epoch + 1`, so a
    /// resurrected ex-primary's replication traffic is fenced off.
    epoch: u64,
    /// The address `probe` is connected to (dropped when the book moves
    /// the primary).
    addr: String,
    probe: Option<ServerClient>,
}

/// The heartbeat/promotion client configuration: short patience (one
/// missed tick is one detector miss, not a long stall) and no sequence
/// identity (heartbeats carry no batches).
fn probe_config(config: &RouterConfig, name: String) -> ClientConfig {
    ClientConfig {
        name,
        read_timeout: config.heartbeat_timeout,
        write_timeout: config.heartbeat_timeout,
        reply_retries: 1,
        backoff: config.backoff.clone(),
        ..ClientConfig::default()
    }
}

/// The heartbeat failure-detection / failover loop (the `ss-supervisor`
/// thread). Probes every primary at `heartbeat_every`; on
/// `heartbeat_misses` consecutive misses promotes the partition's
/// follower under the next fencing epoch and repoints the address book
/// and manifest. Also probes followers opportunistically to publish
/// replication-lag estimates for SHARD_MAP / `top`.
fn supervise(inner: &Inner, clock: &dyn Clock) {
    let config = &inner.config;
    let detector = DetectorConfig {
        probe_every: config.heartbeat_every,
        miss_threshold: config.heartbeat_misses.max(1),
    };
    let mut watches: Vec<Watch> = (0..config.shards.len())
        .map(|_| Watch {
            detector: FailureDetector::new(detector),
            epoch: 1,
            addr: String::new(),
            probe: None,
        })
        .collect();
    let shard_metrics: Vec<_> = (0..config.shards.len())
        .map(|p| stream_telemetry::ENABLED.then(|| crate::telem::shard_metrics(p)))
        .collect();
    // Poll tick: fine-grained enough to hit `heartbeat_every` with low
    // jitter, coarse enough to stay off the profile.
    let tick =
        (config.heartbeat_every / 4).clamp(Duration::from_millis(1), Duration::from_millis(50));
    while !inner.shutdown.load(Ordering::Acquire) {
        for (partition, watch) in watches.iter_mut().enumerate() {
            if inner.shutdown.load(Ordering::Acquire) {
                return;
            }
            let now = clock.now();
            if !watch.detector.due(now) {
                continue;
            }
            let Some(addr) = inner.book.primary(partition) else {
                continue;
            };
            if addr != watch.addr {
                // The primary moved (failover, possibly by another
                // supervisor probe cycle): dial the new one.
                watch.addr = addr.clone();
                watch.probe = None;
            }
            match probe_primary(inner, partition, watch) {
                Ok(status) => {
                    watch.detector.record_ok(now);
                    watch.epoch = watch.epoch.max(status.epoch);
                    note_health(inner, partition, true);
                    publish_lag(inner, partition, &status, shard_metrics.get(partition));
                }
                Err(_) => {
                    watch.probe = None;
                    note_health(inner, partition, false);
                    if let Some(m) = inner.metrics {
                        m.heartbeat_misses.inc();
                    }
                    if watch.detector.record_miss(now)
                        && try_failover(inner, partition, watch.epoch.saturating_add(1))
                    {
                        watch.epoch = watch.epoch.saturating_add(1);
                        watch.detector.record_ok(now);
                        watch.addr = String::new(); // re-dial next probe
                    }
                }
            }
        }
        // ss-analyze: allow(a4-blocking-hot-path) -- supervisor poll tick; this thread owns no data-path work
        std::thread::sleep(tick);
    }
}

/// One heartbeat round-trip to `watch`'s primary, dialing if needed.
fn probe_primary(
    inner: &Inner,
    partition: usize,
    watch: &mut Watch,
) -> Result<stream_server::ReplicaStatus, ClientError> {
    if watch.probe.is_none() {
        let cfg = probe_config(&inner.config, format!("ss-router/hb{partition}"));
        watch.probe = Some(ServerClient::connect_with(&*watch.addr, cfg)?);
    }
    let Some(client) = watch.probe.as_mut() else {
        // Unreachable: the branch above just filled the slot; treated
        // as a miss rather than panicking.
        return Err(ClientError::Timeout);
    };
    client.heartbeat(watch.epoch)
}

/// Estimates the follower's byte lag behind the primary's durable
/// frontier `status` and publishes it (atomic for SHARD_MAP, gauge for
/// scrapes). Probes the follower with a one-shot heartbeat; skipped
/// when the partition has no follower.
fn publish_lag(
    inner: &Inner,
    partition: usize,
    status: &stream_server::ReplicaStatus,
    metrics: Option<&Option<crate::telem::ShardMetrics>>,
) {
    let Some(follower) = inner.book.follower(partition) else {
        return;
    };
    let cfg = probe_config(&inner.config, format!("ss-router/lag{partition}"));
    let Ok(mut client) = ServerClient::connect_with(&*follower, cfg) else {
        return;
    };
    let Ok(fs) = client.heartbeat(status.epoch) else {
        return;
    };
    let _ = client.goodbye();
    let seg_bytes = i128::from(inner.config.wal_segment_bytes);
    let lag = (i128::from(status.segment) - i128::from(fs.segment)) * seg_bytes
        + i128::from(status.offset)
        - i128::from(fs.offset);
    let lag = u64::try_from(lag.max(0)).unwrap_or(u64::MAX);
    if let Some(slot) = inner.lag.get(partition) {
        // ordering: advisory monitoring state; see note_health.
        slot.store(lag, Ordering::Relaxed);
    }
    if let Some(Some(m)) = metrics {
        m.replica_lag.set(i64::try_from(lag).unwrap_or(i64::MAX));
    }
}

/// Promotes `partition`'s follower under fencing epoch `epoch` and, on
/// success, repoints the address book and the manifest (version bump →
/// SHARD_MAP changes). Returns whether the failover completed.
fn try_failover(inner: &Inner, partition: usize, epoch: u64) -> bool {
    let Some(follower) = inner.book.follower(partition) else {
        return false; // unreplicated partition: stay degraded
    };
    // PROMOTE seals and fsyncs the follower's WAL before replying, so
    // it gets the shard-facing patience, not the heartbeat one.
    let cfg = ClientConfig {
        read_timeout: inner.config.shard_read_timeout,
        reply_retries: inner.config.shard_reply_retries,
        ..probe_config(&inner.config, format!("ss-router/promote{partition}"))
    };
    let Ok(mut client) = ServerClient::connect_with(&*follower, cfg) else {
        return false;
    };
    if client.promote(epoch).is_err() {
        return false;
    }
    let _ = client.goodbye();
    let Some(addr) = inner.book.promote(partition) else {
        return false; // raced with another promotion of the same slot
    };
    inner.manifest().set_addr(partition, &addr);
    if let Some(slot) = inner.lag.get(partition) {
        // The shard runs unreplicated after promotion: no lag to show.
        // ordering: advisory gauge read by INSPECT only; no edge
        slot.store(0, Ordering::Relaxed);
    }
    note_health(inner, partition, true);
    if let Some(m) = inner.metrics {
        m.promotions.inc();
    }
    true
}

fn send(
    sock: &mut TcpStream,
    frame: &Frame,
    ctx: Option<TraceContext>,
    metrics: Option<&'static RouterMetrics>,
) -> bool {
    match frame.write_to_traced(sock, ctx) {
        Ok(_) => {
            if let Some(m) = metrics {
                m.frames_tx.inc();
            }
            true
        }
        Err(_) => false,
    }
}

fn send_error(
    sock: &mut TcpStream,
    code: ErrorCode,
    message: &str,
    ctx: Option<TraceContext>,
    metrics: Option<&'static RouterMetrics>,
) {
    let _ = send(
        sock,
        &Frame::Error {
            code,
            message: message.to_string(),
        },
        ctx,
        metrics,
    );
}

/// Replies with the typed degraded-mode error naming the unreachable
/// partition, and records it.
fn send_degraded(
    sock: &mut TcpStream,
    e: &ShardError,
    ctx: Option<TraceContext>,
    metrics: Option<&'static RouterMetrics>,
) {
    if let Some(m) = metrics {
        m.degraded_replies.inc();
    }
    send_error(
        sock,
        ErrorCode::ShardUnavailable,
        &e.to_string(),
        ctx,
        metrics,
    );
}

fn handle_connection(inner: &Inner, sessions: &mut [ShardSession], mut sock: TcpStream) {
    let metrics = inner.metrics;
    if sock.set_nodelay(true).is_err()
        || sock
            .set_read_timeout(Some(inner.config.read_timeout))
            .is_err()
        || sock
            .set_write_timeout(Some(inner.config.write_timeout))
            .is_err()
    {
        return;
    }
    if let Some(m) = metrics {
        m.connections.add(1);
    }
    serve_frames(inner, sessions, &mut sock);
    if let Some(m) = metrics {
        m.connections.add(-1);
    }
}

/// Reads one frame, handling idle ticks and shutdown; `None` means the
/// connection is done.
fn next_frame(
    inner: &Inner,
    sock: &mut TcpStream,
    scratch: &mut Vec<u8>,
) -> Option<(Frame, Option<TraceContext>)> {
    let metrics = inner.metrics;
    loop {
        match Frame::read_traced_from_with_scratch(sock, inner.config.max_payload, scratch) {
            Ok((frame, _n, ctx)) => {
                if let Some(m) = metrics {
                    m.frames_rx.inc();
                }
                return Some((frame, ctx));
            }
            Err(WireError::Idle) => {
                if inner.shutdown.load(Ordering::Acquire) {
                    send_error(
                        sock,
                        ErrorCode::ShuttingDown,
                        "router draining; reconnect later",
                        None,
                        metrics,
                    );
                    return None;
                }
            }
            Err(WireError::Closed) => return None,
            Err(WireError::Io(_)) => return None,
            Err(decode_err) => {
                if let Some(m) = metrics {
                    m.decode_errors.inc();
                }
                send_error(
                    sock,
                    ErrorCode::Protocol,
                    &decode_err.to_string(),
                    None,
                    metrics,
                );
                return None;
            }
        }
    }
}

/// Fans one query across every shard, decodes the requested streams,
/// and merges each stream by linearity. `streams` is a `SHARD_STREAM_*`
/// mask. Each shard's reply is one linearizable cut of that shard's
/// acknowledged prefix; linearity makes the merge order irrelevant.
fn merged_snapshots(
    inner: &Inner,
    sessions: &mut [ShardSession],
    streams: u8,
    ctx: Option<TraceContext>,
) -> Result<(Option<SkimmedSketch>, Option<SkimmedSketch>), MergeError> {
    let mut parts_f: Vec<SkimmedSketch> = Vec::new();
    let mut parts_g: Vec<SkimmedSketch> = Vec::new();
    for sess in sessions.iter_mut() {
        let partition = sess.partition();
        let reply = sess.query(streams, ctx);
        note_health(inner, partition, reply.is_ok());
        let (bytes_f, bytes_g) = reply.map_err(MergeError::Shard)?;
        if streams & SHARD_STREAM_F != 0 {
            parts_f.push(
                decode_skimmed(bytes::Bytes::from(bytes_f))
                    .map_err(|_| MergeError::Undecodable(partition))?,
            );
        }
        if streams & SHARD_STREAM_G != 0 {
            parts_g.push(
                decode_skimmed(bytes::Bytes::from(bytes_g))
                    .map_err(|_| MergeError::Undecodable(partition))?,
            );
        }
    }
    Ok((merge_parts(parts_f), merge_parts(parts_g)))
}

/// Why a cross-shard merge failed.
enum MergeError {
    /// A shard stayed unreachable past the retry budget.
    Shard(ShardError),
    /// A shard's reply did not decode as a sketch (schema drift after
    /// bind, or corruption) — an internal error, not a degraded answer.
    Undecodable(usize),
}

/// Records `partition`'s last-interaction health for SHARD_MAP replies.
fn note_health(inner: &Inner, partition: usize, up: bool) {
    if let Some(flag) = inner.health.get(partition) {
        // ordering: health flags are advisory monitoring state with no
        // happens-before obligations; last-writer-wins is the semantics.
        flag.store(up, Ordering::Relaxed);
    }
}

/// Sends the merge failure as the right wire error. Returns whether the
/// connection may continue (degraded replies keep it open so the client
/// can retry once the shard returns; decode failures close it).
fn send_merge_error(
    sock: &mut TcpStream,
    e: &MergeError,
    ctx: Option<TraceContext>,
    metrics: Option<&'static RouterMetrics>,
) -> bool {
    match e {
        MergeError::Shard(se) => {
            send_degraded(sock, se, ctx, metrics);
            true
        }
        MergeError::Undecodable(partition) => {
            send_error(
                sock,
                ErrorCode::Internal,
                &format!("partition {partition} returned an undecodable sketch"),
                ctx,
                metrics,
            );
            false
        }
    }
}

/// Builds an Answer frame from a merged-join estimate.
fn answer_frame(est: &skimmed_sketch::JoinEstimate) -> Frame {
    Frame::Answer {
        estimate: est.estimate,
        dense_dense: est.dense_dense,
        dense_sparse: est.dense_sparse,
        sparse_dense: est.sparse_dense,
        sparse_sparse: est.sparse_sparse,
        dense_f: est.dense_f as u64,
        dense_g: est.dense_g as u64,
    }
}

fn serve_frames(inner: &Inner, sessions: &mut [ShardSession], sock: &mut TcpStream) {
    let metrics = inner.metrics;
    let mut scratch = Vec::new();

    // Handshake: identical negotiation to the single-node server, so a
    // v2 client cannot tell a router from a server (until it asks for
    // SHARD_MAP, which needs a v3 session).
    let session_protocol;
    match next_frame(inner, sock, &mut scratch) {
        Some((Frame::Hello { protocol, .. }, ctx)) => {
            if !(MIN_PROTOCOL_VERSION..=PROTOCOL_VERSION).contains(&protocol) {
                send_error(
                    sock,
                    ErrorCode::UnsupportedVersion,
                    &format!(
                        "protocol {protocol} unsupported (router speaks \
                         {MIN_PROTOCOL_VERSION}..={PROTOCOL_VERSION})"
                    ),
                    None,
                    metrics,
                );
                return;
            }
            session_protocol = protocol;
            if !send(sock, &Frame::HelloAck(inner.info), ctx, metrics) {
                return;
            }
        }
        Some(_) => {
            send_error(sock, ErrorCode::Protocol, "expected HELLO", None, metrics);
            return;
        }
        None => return,
    }

    while let Some((frame, ctx)) = next_frame(inner, sock, &mut scratch) {
        // The router's Handler span, child of the client's Request
        // span; shard fan-out calls carry it so shard-side spans join
        // the same end-to-end trace.
        let handler_span = ctx.map(|c| ss_trace::span(Phase::Handler, c.trace_id, c.span_id, 0));
        let fwd = ctx.map(|c| TraceContext {
            trace_id: c.trace_id,
            span_id: handler_span
                .as_ref()
                .map_or(c.span_id, ss_trace::SpanGuard::id),
        });
        match frame {
            Frame::UpdateBatch {
                stream,
                client_id,
                seq,
                updates,
            } => {
                let _span = metrics.map(|m| m.update_latency.start_span());
                let len = updates.len();
                if len as u64 > inner.info.max_batch as u64 {
                    send_error(
                        sock,
                        ErrorCode::BatchTooLarge,
                        &format!(
                            "batch of {len} exceeds cluster max_batch {}",
                            inner.info.max_batch
                        ),
                        ctx,
                        metrics,
                    );
                    continue;
                }
                if let Some(m) = metrics {
                    m.batches_in.inc();
                }
                let parts = inner.partitioner.split(&updates);
                let mut failed: Option<ShardError> = None;
                for (sess, part) in sessions.iter_mut().zip(&parts) {
                    if part.is_empty() {
                        continue;
                    }
                    let partition = sess.partition();
                    let sequenced = client_id != 0 && seq != 0;
                    let result = if sequenced {
                        // Upstream identity pass-through: the shard
                        // dedups this sub-batch end to end.
                        sess.send_batch_as(stream, client_id, seq, part, fwd)
                    } else {
                        sess.send_batch(stream, part, fwd)
                    };
                    note_health(inner, partition, result.is_ok());
                    if let Err(e) = result {
                        failed = Some(e);
                        break;
                    }
                }
                match failed {
                    Some(e) => {
                        // No ack: the upstream producer retries, the
                        // shards that already applied their sub-batch
                        // dedup the replay.
                        send_degraded(sock, &e, ctx, metrics);
                    }
                    None => {
                        if let Some(m) = metrics {
                            m.updates_routed.add(len as u64);
                        }
                        let reply = Frame::BatchAck {
                            accepted: len as u64,
                        };
                        if !send(sock, &reply, ctx, metrics) {
                            return;
                        }
                    }
                }
            }
            Frame::QueryJoin => {
                let _span = metrics.map(|m| m.query_latency.start_span());
                if let Some(m) = metrics {
                    m.queries.inc();
                }
                let merged = merged_snapshots(inner, sessions, SHARD_STREAM_BOTH, fwd);
                match merged {
                    Ok((Some(f), Some(g))) => {
                        let est_span =
                            fwd.map(|c| ss_trace::span(Phase::Estimate, c.trace_id, c.span_id, 0));
                        let est = estimate_join(&f, &g, &inner.config.estimator);
                        drop(est_span);
                        if !send(sock, &answer_frame(&est), ctx, metrics) {
                            return;
                        }
                    }
                    Ok(_) => {
                        // Unreachable with a non-empty manifest; treat
                        // as internal rather than panicking.
                        send_error(sock, ErrorCode::Internal, "empty shard set", ctx, metrics);
                        return;
                    }
                    Err(e) => {
                        if !send_merge_error(sock, &e, ctx, metrics) {
                            return;
                        }
                    }
                }
            }
            Frame::QuerySelfJoin { stream } => {
                let _span = metrics.map(|m| m.query_latency.start_span());
                if let Some(m) = metrics {
                    m.queries.inc();
                }
                let mask = match stream {
                    StreamId::F => SHARD_STREAM_F,
                    StreamId::G => SHARD_STREAM_G,
                };
                match merged_snapshots(inner, sessions, mask, fwd) {
                    Ok((f, g)) => {
                        let Some(sk) = (match stream {
                            StreamId::F => f,
                            StreamId::G => g,
                        }) else {
                            send_error(sock, ErrorCode::Internal, "empty shard set", ctx, metrics);
                            return;
                        };
                        let est_span =
                            fwd.map(|c| ss_trace::span(Phase::Estimate, c.trace_id, c.span_id, 0));
                        let estimate = estimate_self_join(&sk, &inner.config.estimator);
                        drop(est_span);
                        let reply = Frame::Answer {
                            estimate,
                            dense_dense: 0.0,
                            dense_sparse: 0.0,
                            sparse_dense: 0.0,
                            sparse_sparse: 0.0,
                            dense_f: 0,
                            dense_g: 0,
                        };
                        if !send(sock, &reply, ctx, metrics) {
                            return;
                        }
                    }
                    Err(e) => {
                        if !send_merge_error(sock, &e, ctx, metrics) {
                            return;
                        }
                    }
                }
            }
            Frame::Snapshot { stream } => {
                let _span = metrics.map(|m| m.query_latency.start_span());
                let mask = match stream {
                    StreamId::F => SHARD_STREAM_F,
                    StreamId::G => SHARD_STREAM_G,
                };
                match merged_snapshots(inner, sessions, mask, fwd) {
                    Ok((f, g)) => {
                        let Some(sk) = (match stream {
                            StreamId::F => f,
                            StreamId::G => g,
                        }) else {
                            send_error(sock, ErrorCode::Internal, "empty shard set", ctx, metrics);
                            return;
                        };
                        let reply = Frame::SnapshotReply {
                            stream,
                            sketch: encode_skimmed(&sk).to_vec(),
                        };
                        if !send(sock, &reply, ctx, metrics) {
                            return;
                        }
                    }
                    Err(e) => {
                        if !send_merge_error(sock, &e, ctx, metrics) {
                            return;
                        }
                    }
                }
            }
            Frame::Resume { client_id } => {
                // The producer may resume from the highest seq *every*
                // shard has applied: per-stream minimum over the fleet.
                // Conservative under per-shard gaps (a shard that owned
                // no keys of a batch never saw its seq), but replays of
                // already-applied batches are absorbed by shard dedup.
                let mut low_f = u64::MAX;
                let mut low_g = u64::MAX;
                let mut failed: Option<ShardError> = None;
                for sess in sessions.iter_mut() {
                    let partition = sess.partition();
                    let reply = sess.resume_of(client_id, fwd);
                    note_health(inner, partition, reply.is_ok());
                    match reply {
                        Ok((f, g)) => {
                            low_f = low_f.min(f);
                            low_g = low_g.min(g);
                        }
                        Err(e) => {
                            failed = Some(e);
                            break;
                        }
                    }
                }
                match failed {
                    Some(e) => send_degraded(sock, &e, ctx, metrics),
                    None => {
                        let reply = Frame::ResumeAck {
                            last_seq_f: low_f,
                            last_seq_g: low_g,
                        };
                        if !send(sock, &reply, ctx, metrics) {
                            return;
                        }
                    }
                }
            }
            Frame::ShardMap(_) => {
                if session_protocol < 3 {
                    send_error(
                        sock,
                        ErrorCode::Protocol,
                        "SHARD_MAP requires a protocol-v3 session",
                        ctx,
                        metrics,
                    );
                    return;
                }
                let healthy: Vec<bool> = inner
                    .health
                    .iter()
                    // ordering: advisory monitoring reads; see note_health
                    .map(|h| h.load(Ordering::Relaxed))
                    .collect();
                let followers = inner.book.followers();
                let lags: Vec<u64> = inner
                    .lag
                    .iter()
                    // ordering: advisory monitoring reads; see note_health
                    .map(|l| l.load(Ordering::Relaxed))
                    .collect();
                let reply = Frame::ShardMap(inner.manifest().to_wire(&healthy, &followers, &lags));
                if !send(sock, &reply, ctx, metrics) {
                    return;
                }
            }
            Frame::Inspect {
                sections,
                last_events,
                ..
            } => {
                let mut report = InspectReport {
                    uptime_ns: inner.started.elapsed().as_nanos() as u64,
                    ..InspectReport::default()
                };
                if sections & INSPECT_METRICS != 0 && stream_telemetry::ENABLED {
                    report.metrics_json = stream_telemetry::global().render_json_lines();
                }
                if sections & INSPECT_EVENTS != 0 {
                    report.events = ss_trace::recent_events(last_events as usize)
                        .iter()
                        .map(|e| stream_wire::WireSpanEvent {
                            ts_ns: e.ts_ns,
                            trace_id: e.trace_id,
                            span_id: e.span_id,
                            parent_id: e.parent_id,
                            phase: e.phase,
                            kind: e.kind,
                            thread: e.thread,
                            arg: e.arg,
                        })
                        .collect();
                }
                if !send(sock, &Frame::InspectReply(Box::new(report)), ctx, metrics) {
                    return;
                }
            }
            Frame::ShardQuery { .. } => {
                send_error(
                    sock,
                    ErrorCode::Protocol,
                    "not a shard: routers do not serve SHARD_QUERY",
                    ctx,
                    metrics,
                );
                return;
            }
            Frame::Replicate { .. } | Frame::ReplicateAck { .. } | Frame::Promote { .. } => {
                // Replication and promotion run shard-to-shard and
                // supervisor-to-shard; the router is stateless and owns
                // no WAL to stream or seal.
                send_error(
                    sock,
                    ErrorCode::Protocol,
                    "routers do not replicate; speak to the shard directly",
                    ctx,
                    metrics,
                );
                return;
            }
            Frame::Heartbeat { .. } => {
                // Answered so liveness probes work against a router
                // front too; a router has no WAL frontier or epoch.
                let reply = Frame::Heartbeat {
                    epoch: 0,
                    primary: false,
                    segment: 0,
                    offset: 0,
                };
                if !send(sock, &reply, ctx, metrics) {
                    return;
                }
            }
            Frame::Goodbye => {
                let _ = send(sock, &Frame::Goodbye, ctx, metrics);
                return;
            }
            Frame::Error { .. } => return, // client gave up; nothing to reply
            Frame::Hello { .. }
            | Frame::HelloAck(_)
            | Frame::BatchAck { .. }
            | Frame::Answer { .. }
            | Frame::SnapshotReply { .. }
            | Frame::Throttle { .. }
            | Frame::ResumeAck { .. }
            | Frame::InspectReply(_)
            | Frame::ShardQueryReply { .. } => {
                send_error(
                    sock,
                    ErrorCode::Protocol,
                    "unexpected frame for a client to send",
                    ctx,
                    metrics,
                );
                return;
            }
        }
    }
}
