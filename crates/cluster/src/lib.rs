//! # ss-cluster
//!
//! Sharded multi-node deployment of the skimmed-sketch pipeline: a
//! [`Router`] partitions the key domain `[0, N)` across a set of shard
//! servers (plain [`stream_server::Server`]s run with
//! [`stream_server::ServerConfig::shard`] set), fans UPDATE_BATCH
//! traffic to the owning shards, and answers join / self-join / snapshot
//! queries by fetching each shard's **unskimmed** sketch state and
//! merging it via sketch linearity — so routed answers are
//! **bit-identical** to a single node fed the same stream.
//!
//! The pieces:
//!
//! * [`ClusterManifest`] / [`Partitioner`] — the versioned cluster
//!   identity `(seed, shard set)` and the `2^61 − 1` pairwise-hash
//!   domain split it pins; served over the wire as SHARD_MAP.
//! * [`Router`] / [`RouterConfig`] — the client-facing front. Speaks the
//!   same protocol as a single server (v2 clients work unchanged) plus
//!   the v3 cluster vocabulary.
//! * [`ShardSession`] / [`ShardError`] — one handler's connection to one
//!   shard: capped-jitter retries, reconnect-and-RESUME, exactly-once
//!   forwarding, per-shard health/latency telemetry. [`ShardError`] is
//!   the typed ingredient of the degraded-mode SHARD_UNAVAILABLE reply.
//! * [`FailureDetector`] / [`AddressBook`] — the failover machinery:
//!   when [`RouterConfig::followers`] names per-shard replicas, a
//!   supervisor thread heartbeats every primary, and after a run of
//!   missed probes PROMOTEs the follower under the next fencing epoch,
//!   repointing the shared address book (handler sessions re-dial and
//!   RESUME) and bumping the manifest version. Replicated WAL state is
//!   byte-identical, so answers stay bit-identical across a failover.
//!
//! See `DESIGN.md` §11 for the full architecture and failure-semantics
//! discussion (§12 for the replication/failover contract), and the
//! crate's integration tests for the bit-identity and kill/restart
//! convergence proofs.

#![forbid(unsafe_code)]
#![deny(missing_docs)]
#![warn(clippy::all)]

mod failover;
mod manifest;
mod router;
mod session;
mod telem;

pub use failover::{AddressBook, Clock, DetectorConfig, FailureDetector, SystemClock};
pub use manifest::{ClusterManifest, Partitioner};
pub use router::{Router, RouterConfig, RouterError};
pub use session::{ShardError, ShardSession};
