//! One router→shard connection with the retry, resume, and
//! exactly-once machinery the fan-out path needs.
//!
//! Each router handler thread owns one [`ShardSession`] per shard,
//! sequenced under a client id unique to that handler — so a shard sees
//! the router as a set of independent idempotent producers, and the
//! server-side `(client_id, stream, seq)` dedup it already implements
//! for direct clients gives the router exactly-once delivery for free.
//!
//! The crash-window argument for [`ShardSession::send_batch`]: the
//! session captures the shard-side sequence number a batch will be
//! applied under *before* the first send attempt. If the connection
//! dies without an ack, the retry reconnects and RESUMEs; the shard's
//! recovered high-water mark then tells the truth — if it advanced past
//! the captured number the batch was applied (and WAL-persisted) before
//! the crash, otherwise it is resent under the same number. Either way
//! the shard applies it exactly once.

use std::sync::Arc;
use std::time::Instant;
use stream_model::update::Update;
use stream_server::{BatchOutcome, ClientConfig, ClientError, ServerClient};
use stream_wire::{StreamId, TraceContext};

use crate::failover::AddressBook;
use crate::telem::ShardMetrics;
use ss_retry::Backoff;

/// A shard operation abandoned after the session's whole retry budget:
/// the typed ingredients of the degraded-mode SHARD_UNAVAILABLE reply,
/// naming the missing partition instead of silently under-counting.
#[derive(Debug)]
pub struct ShardError {
    /// The partition (= manifest index) that is unreachable.
    pub partition: usize,
    /// Its address, for the operator.
    pub addr: String,
    /// Attempts spent before giving up.
    pub attempts: u32,
    /// The failure that ended the last attempt.
    pub last: ClientError,
}

impl std::fmt::Display for ShardError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(
            f,
            "partition {} ({}) unavailable after {} attempts: {}",
            self.partition, self.addr, self.attempts, self.last
        )
    }
}

impl std::error::Error for ShardError {}

/// Why one attempt did not complete, before retry policy is applied.
enum Attempt {
    /// Shard alive but backpressuring; retry after backoff.
    Throttled,
    /// Connection-level failure; reconnect before the next attempt.
    Failed(ClientError),
}

/// One handler thread's connection to one shard server.
pub struct ShardSession {
    partition: usize,
    addr: String,
    config: ClientConfig,
    retry_budget: u32,
    backoff: Backoff,
    client: Option<ServerClient>,
    metrics: Option<ShardMetrics>,
    /// The failover address table; when its version moves past
    /// `book_version` the next `ensure` re-reads this partition's
    /// primary (a promotion happened) before dialing.
    book: Option<Arc<AddressBook>>,
    book_version: u64,
}

impl ShardSession {
    /// A session for `partition` at `addr`, sequenced under
    /// `config.client_id` (which must be unique per handler thread) and
    /// allowed `retry_budget` attempts per operation.
    pub fn new(partition: usize, addr: String, config: ClientConfig, retry_budget: u32) -> Self {
        let backoff = Backoff::new(&config.backoff);
        let metrics = stream_telemetry::ENABLED.then(|| crate::telem::shard_metrics(partition));
        ShardSession {
            partition,
            addr,
            config,
            retry_budget: retry_budget.max(1),
            backoff,
            client: None,
            metrics,
            book: None,
            book_version: 0,
        }
    }

    /// Attaches the failover address book: the session will follow
    /// promotions by re-reading its partition's primary whenever the
    /// book's version moves. The dropped-and-redialed connection then
    /// RESUMEs against the new primary, whose replicated idempotency
    /// table dedups anything the old primary already applied.
    pub fn with_address_book(mut self, book: Arc<AddressBook>) -> Self {
        // Version 0 is below any real book version, so the first
        // `ensure` syncs the address even if a promotion raced bind.
        self.book_version = 0;
        self.book = Some(book);
        self
    }

    /// The partition this session feeds.
    pub fn partition(&self) -> usize {
        self.partition
    }

    /// The shard's address.
    pub fn addr(&self) -> &str {
        &self.addr
    }

    /// Whether the last operation succeeded (i.e. the shard is healthy
    /// from this session's point of view).
    pub fn connected(&self) -> bool {
        self.client.is_some()
    }

    /// Dials (or reuses) the connection. A fresh sequenced connection
    /// RESUMEs first, fast-forwarding past everything the shard already
    /// applied — the heart of kill/restart convergence.
    fn ensure(&mut self) -> Result<&mut ServerClient, ClientError> {
        self.refresh_addr();
        if self.client.is_none() {
            let mut client = ServerClient::connect_with(&*self.addr, self.config.clone())?;
            if client.client_id() != 0 {
                client.resume()?;
            }
            self.client = Some(client);
        }
        // ss-analyze: allow(a2-panic-free) -- the branch above just filled the slot
        Ok(self.client.as_mut().expect("session just connected"))
    }

    /// Drops the connection so the next attempt re-dials and RESUMEs.
    fn disconnect(&mut self) {
        self.client = None;
    }

    /// Syncs this session's address with the failover book. Cheap when
    /// nothing changed (one atomic load); on a version change, a moved
    /// primary drops the connection so the next dial goes to the
    /// promoted follower.
    fn refresh_addr(&mut self) {
        let Some(book) = &self.book else { return };
        let version = book.version();
        if version == self.book_version {
            return;
        }
        self.book_version = version;
        if let Some(addr) = book.primary(self.partition) {
            if addr != self.addr {
                self.addr = addr;
                self.disconnect();
            }
        }
    }

    fn set_health(&self, up: bool) {
        if let Some(m) = &self.metrics {
            m.healthy.set(up as i64);
        }
    }

    fn fail(&mut self, attempts: u32, last: ClientError) -> ShardError {
        self.set_health(false);
        if let Some(m) = &self.metrics {
            m.failures.inc();
        }
        ShardError {
            partition: self.partition,
            addr: self.addr.clone(),
            attempts,
            last,
        }
    }

    /// Runs `op` under the session's retry budget with capped-jitter
    /// backoff, reconnect-and-RESUME between connection failures, and
    /// per-shard RTT/health telemetry.
    fn with_retries<T>(
        &mut self,
        mut op: impl FnMut(&mut ServerClient) -> Result<T, Attempt>,
    ) -> Result<T, ShardError> {
        self.backoff.reset();
        let mut attempts = 0u32;
        loop {
            attempts += 1;
            let t0 = Instant::now();
            let outcome = match self.ensure() {
                Ok(client) => match op(client) {
                    Ok(v) => Ok(v),
                    Err(a) => Err(a),
                },
                Err(e) => Err(Attempt::Failed(e)),
            };
            match outcome {
                Ok(v) => {
                    if let Some(m) = &self.metrics {
                        m.fanout_rtt.record(t0.elapsed().as_nanos() as u64);
                    }
                    self.set_health(true);
                    return Ok(v);
                }
                Err(Attempt::Throttled) => {
                    // Shard alive, queue full: keep the connection, pay
                    // backoff, and spend budget so a wedged shard still
                    // converges to the typed degraded error.
                    if attempts > self.retry_budget {
                        return Err(self.fail(attempts, ClientError::Timeout));
                    }
                }
                Err(Attempt::Failed(e)) => {
                    self.disconnect();
                    if attempts > self.retry_budget {
                        return Err(self.fail(attempts, e));
                    }
                }
            }
            if let Some(m) = &self.metrics {
                m.retries.inc();
            }
            // ss-analyze: allow(a4-blocking-hot-path) -- deliberate retry backoff on a failed/throttled shard; the handler thread owns no other work mid-request
            std::thread::sleep(self.backoff.delay());
        }
    }

    /// Forwards one sub-batch exactly once, surviving shard crashes and
    /// restarts in the middle (see the module docs for the seq-capture
    /// argument). `ctx` is stamped on the wire verbatim so the shard's
    /// spans join the end client's trace.
    pub fn send_batch(
        &mut self,
        stream: StreamId,
        updates: &[Update],
        ctx: Option<TraceContext>,
    ) -> Result<(), ShardError> {
        // The shard-side seq this batch will go out under, captured on
        // the first attempt that reaches a connected client.
        let mut base: Option<u64> = None;
        self.with_retries(|client| {
            client.set_forward_trace(ctx);
            if client.client_id() != 0 {
                let cur = client.next_seq(stream);
                match base {
                    None => base = Some(cur),
                    // RESUME fast-forwarded past the captured number:
                    // the shard applied (and WAL-persisted) the batch
                    // before the crash. Done — do not re-apply.
                    Some(b) if cur > b => return Ok(()),
                    // The shard came back *behind* the captured number
                    // (recovered from an older state); re-capture and
                    // resend under the shard's actual next seq.
                    Some(b) if cur < b => base = Some(cur),
                    Some(_) => {}
                }
            }
            match client.send_batch(stream, updates) {
                Ok(BatchOutcome::Accepted(_)) => Ok(()),
                Ok(BatchOutcome::Throttled { .. }) => Err(Attempt::Throttled),
                Err(e) => Err(Attempt::Failed(e)),
            }
        })
    }

    /// Forwards one sub-batch *as the upstream producer*: the batch
    /// goes out under the upstream's `(client_id, seq)` verbatim, so
    /// the shard's own idempotency table absorbs duplicates end to end
    /// — across upstream retries, handler threads, and router restarts
    /// alike. Used for sequenced upstream traffic; unsequenced traffic
    /// goes through [`ShardSession::send_batch`] under the session's
    /// handler-unique identity instead.
    pub fn send_batch_as(
        &mut self,
        stream: StreamId,
        client_id: u64,
        seq: u64,
        updates: &[Update],
        ctx: Option<TraceContext>,
    ) -> Result<(), ShardError> {
        self.with_retries(|client| {
            client.set_forward_trace(ctx);
            match client.send_batch_as(stream, client_id, seq, updates) {
                Ok(BatchOutcome::Accepted(_)) => Ok(()),
                Ok(BatchOutcome::Throttled { .. }) => Err(Attempt::Throttled),
                Err(e) => Err(Attempt::Failed(e)),
            }
        })
    }

    /// Reads the upstream producer `client_id`'s applied high-water
    /// marks on this shard (for the router's fanned-out RESUME answer).
    pub fn resume_of(
        &mut self,
        client_id: u64,
        ctx: Option<TraceContext>,
    ) -> Result<(u64, u64), ShardError> {
        self.with_retries(|client| {
            client.set_forward_trace(ctx);
            client.resume_of(client_id).map_err(Attempt::Failed)
        })
    }

    /// Fetches the shard's encoded sketch state for `streams`
    /// (idempotent, so retries are plain re-asks).
    pub fn query(
        &mut self,
        streams: u8,
        ctx: Option<TraceContext>,
    ) -> Result<(Vec<u8>, Vec<u8>), ShardError> {
        self.with_retries(|client| {
            client.set_forward_trace(ctx);
            client.shard_query(streams).map_err(Attempt::Failed)
        })
    }

    /// Fetches the shard's live introspection report (for `ssketch top`
    /// per-shard rows, proxied through the router's address book).
    pub fn inspect(
        &mut self,
        sections: u8,
        ctx: Option<TraceContext>,
    ) -> Result<stream_wire::InspectReport, ShardError> {
        self.with_retries(|client| {
            client.set_forward_trace(ctx);
            client.inspect(sections, 0, 0).map_err(Attempt::Failed)
        })
    }
}
