//! Failure detection and failover bookkeeping.
//!
//! Everything in this module is pure state: the [`FailureDetector`] is
//! a per-shard miss counter driven by explicit [`Instant`]s (the
//! supervisor injects a [`Clock`], tests inject arithmetic instants —
//! no test ever sleeps to make a detector fire), and the
//! [`AddressBook`] is the versioned primary/follower table the
//! supervisor rewrites on promotion and handler sessions re-read on
//! version mismatch. The I/O half of failover — heartbeat probes and
//! the PROMOTE call — lives in the router's supervisor thread.

use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Mutex;
use std::time::{Duration, Instant};

/// A monotonic time source for the failure detector's probe schedule.
///
/// The supervisor runs on [`SystemClock`]; detector tests drive
/// [`FailureDetector`] with hand-built instants instead, so detection
/// logic is exercised without wall-clock time or sleeps.
pub trait Clock: Send + Sync {
    /// The current instant.
    fn now(&self) -> Instant;
}

/// The real monotonic clock.
#[derive(Debug, Clone, Copy, Default)]
pub struct SystemClock;

impl Clock for SystemClock {
    fn now(&self) -> Instant {
        Instant::now()
    }
}

/// Tunables for a [`FailureDetector`].
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct DetectorConfig {
    /// How often each primary is probed with HEARTBEAT.
    pub probe_every: Duration,
    /// Consecutive missed probes before the primary is declared down.
    pub miss_threshold: u32,
}

impl Default for DetectorConfig {
    fn default() -> Self {
        DetectorConfig {
            probe_every: Duration::from_millis(150),
            miss_threshold: 3,
        }
    }
}

/// Per-shard heartbeat failure detector: a probe schedule plus a
/// consecutive-miss counter.
///
/// The contract is deliberately conservative: one successful probe
/// clears the count (a single slow reply never accumulates toward a
/// failover), and `record_miss` keeps reporting "down" on every miss at
/// or past the threshold, so a failover attempt that itself fails (the
/// follower is still starting, say) is retried at probe cadence rather
/// than armed exactly once.
#[derive(Debug)]
pub struct FailureDetector {
    config: DetectorConfig,
    last_probe: Option<Instant>,
    misses: u32,
}

impl FailureDetector {
    /// A fresh detector; the first `due` is immediate.
    pub fn new(config: DetectorConfig) -> Self {
        FailureDetector {
            config,
            last_probe: None,
            misses: 0,
        }
    }

    /// Whether a probe should be sent at `now`.
    pub fn due(&self, now: Instant) -> bool {
        match self.last_probe {
            None => true,
            Some(at) => now.duration_since(at) >= self.config.probe_every,
        }
    }

    /// Records a successful probe at `now`, clearing the miss count.
    pub fn record_ok(&mut self, now: Instant) {
        self.last_probe = Some(now);
        self.misses = 0;
    }

    /// Records a missed probe at `now`. Returns `true` when the shard
    /// is now considered down (miss count at or past the threshold).
    pub fn record_miss(&mut self, now: Instant) -> bool {
        self.last_probe = Some(now);
        self.misses = self.misses.saturating_add(1);
        self.is_down()
    }

    /// Whether the consecutive-miss count has reached the threshold.
    pub fn is_down(&self) -> bool {
        self.misses >= self.config.miss_threshold
    }

    /// Current consecutive-miss count.
    pub fn misses(&self) -> u32 {
        self.misses
    }
}

#[derive(Debug, Clone)]
struct BookEntry {
    addr: String,
    follower: String,
}

/// The live primary/follower address table, shared between the
/// supervisor (writer, on promotion) and every handler's shard sessions
/// (readers). The version counter makes the read path cheap: sessions
/// compare one atomic against their cached copy and only take the lock
/// when a failover actually happened.
#[derive(Debug)]
pub struct AddressBook {
    version: AtomicU64,
    // ss-analyze: allow(a4-blocking-hot-path) -- taken by the supervisor and by sessions only on a version change (failover), never on the per-frame path
    entries: Mutex<Vec<BookEntry>>,
}

impl AddressBook {
    /// A book over `addrs`, with `followers` (empty string = no
    /// follower for that partition; an empty slice = none anywhere).
    ///
    /// # Panics
    /// If `followers` is non-empty and not one entry per shard.
    pub fn new(addrs: &[String], followers: &[String]) -> Self {
        assert!(
            followers.is_empty() || followers.len() == addrs.len(),
            "one follower entry per shard (empty string for none)"
        );
        let entries = addrs
            .iter()
            .enumerate()
            .map(|(i, a)| BookEntry {
                addr: a.clone(),
                follower: followers.get(i).cloned().unwrap_or_default(),
            })
            .collect();
        AddressBook {
            version: AtomicU64::new(1),
            // ss-analyze: allow(a4-blocking-hot-path) -- construction, off the data path
            entries: Mutex::new(entries),
        }
    }

    /// Current version; bumps on every [`AddressBook::promote`].
    pub fn version(&self) -> u64 {
        self.version.load(Ordering::Acquire)
    }

    fn entries(&self) -> std::sync::MutexGuard<'_, Vec<BookEntry>> {
        // A poisoned lock only means a sibling thread panicked between
        // load and store of plain data; the table itself stays valid.
        self.entries.lock().unwrap_or_else(|p| p.into_inner())
    }

    /// The current primary address of `partition`.
    pub fn primary(&self, partition: usize) -> Option<String> {
        self.entries().get(partition).map(|e| e.addr.clone())
    }

    /// The follower address of `partition` (`None` when it has none).
    pub fn follower(&self, partition: usize) -> Option<String> {
        self.entries()
            .get(partition)
            .and_then(|e| (!e.follower.is_empty()).then(|| e.follower.clone()))
    }

    /// Follower addresses in partition order, empty string for none —
    /// the SHARD_MAP wire shape.
    pub fn followers(&self) -> Vec<String> {
        self.entries().iter().map(|e| e.follower.clone()).collect()
    }

    /// Installs the follower of `partition` as its primary (the
    /// follower slot empties: the shard runs unreplicated until an
    /// operator attaches a new follower) and bumps the version.
    /// Returns the new primary address, or `None` when the partition is
    /// out of range or has no follower to promote.
    pub fn promote(&self, partition: usize) -> Option<String> {
        let mut entries = self.entries();
        let e = entries.get_mut(partition)?;
        if e.follower.is_empty() {
            return None;
        }
        e.addr = std::mem::take(&mut e.follower);
        let addr = e.addr.clone();
        drop(entries);
        self.version.fetch_add(1, Ordering::AcqRel);
        Some(addr)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn cfg(ms: u64, misses: u32) -> DetectorConfig {
        DetectorConfig {
            probe_every: Duration::from_millis(ms),
            miss_threshold: misses,
        }
    }

    #[test]
    fn detector_fires_only_after_consecutive_misses() {
        let base = Instant::now();
        let at = |ms: u64| base + Duration::from_millis(ms);
        let mut d = FailureDetector::new(cfg(100, 3));
        assert!(d.due(at(0)), "first probe is immediate");
        assert!(!d.record_miss(at(0)));
        assert!(!d.due(at(50)), "not due again until probe_every elapses");
        assert!(d.due(at(100)));
        assert!(!d.record_miss(at(100)));
        // A success between misses clears the count entirely.
        d.record_ok(at(200));
        assert_eq!(d.misses(), 0);
        assert!(!d.record_miss(at(300)));
        assert!(!d.record_miss(at(400)));
        assert!(d.record_miss(at(500)), "third consecutive miss fires");
        assert!(d.is_down());
        // It keeps reporting down on later misses (failover retries).
        assert!(d.record_miss(at(600)));
        // Recovery (or a successful promotion) rearms it.
        d.record_ok(at(700));
        assert!(!d.is_down());
    }

    #[test]
    fn detector_schedule_is_clock_driven() {
        let base = Instant::now();
        let mut d = FailureDetector::new(cfg(150, 2));
        d.record_ok(base);
        assert!(!d.due(base + Duration::from_millis(149)));
        assert!(d.due(base + Duration::from_millis(150)));
        assert!(d.due(base + Duration::from_secs(10)));
    }

    #[test]
    fn address_book_promotion_swaps_and_bumps() {
        let addrs = vec!["p0:1".to_string(), "p1:1".to_string()];
        let followers = vec![String::new(), "f1:1".to_string()];
        let book = AddressBook::new(&addrs, &followers);
        assert_eq!(book.version(), 1);
        assert_eq!(book.primary(1).as_deref(), Some("p1:1"));
        assert_eq!(book.follower(1).as_deref(), Some("f1:1"));
        assert_eq!(book.follower(0), None);

        // Partition 0 has no follower: promotion refused, no bump.
        assert_eq!(book.promote(0), None);
        assert_eq!(book.promote(7), None);
        assert_eq!(book.version(), 1);

        // Partition 1 fails over to its follower.
        assert_eq!(book.promote(1).as_deref(), Some("f1:1"));
        assert_eq!(book.version(), 2);
        assert_eq!(book.primary(1).as_deref(), Some("f1:1"));
        assert_eq!(book.follower(1), None, "promoted shard runs bare");
        assert_eq!(book.followers(), vec![String::new(), String::new()]);

        // A second promotion of the same partition has nothing to do.
        assert_eq!(book.promote(1), None);
        assert_eq!(book.version(), 2);
    }

    #[test]
    fn address_book_defaults_to_no_followers() {
        let book = AddressBook::new(&["a:1".to_string()], &[]);
        assert_eq!(book.follower(0), None);
        assert_eq!(book.followers(), vec![String::new()]);
    }
}
