//! Router telemetry, compile-gated exactly like the serving layer:
//! with `--no-default-features` every handle is a ZST no-op and the
//! `Option` wrappers at call sites fold away.
//!
//! Two layers: process-wide counters for the router's own traffic, and
//! per-shard handles (fan-out round-trip histograms, health gauges,
//! retry counters) labelled by partition index so `ssketch top` can
//! show one row per shard.

use std::sync::{Arc, OnceLock};
use stream_telemetry::{Counter, Gauge, Histogram, Unit};

/// Cached process-wide handles for the router's metrics.
pub(crate) struct RouterMetrics {
    /// Currently open client connections.
    pub connections: Arc<Gauge>,
    /// Connections accepted since start.
    pub accepted: Arc<Counter>,
    /// Frames received from clients.
    pub frames_rx: Arc<Counter>,
    /// Frames sent to clients.
    pub frames_tx: Arc<Counter>,
    /// Frames that failed header/CRC/payload decoding.
    pub decode_errors: Arc<Counter>,
    /// UPDATE_BATCH frames routed (counted once, not per shard).
    pub batches_in: Arc<Counter>,
    /// Updates fanned out to shards.
    pub updates_routed: Arc<Counter>,
    /// Join/self-join queries answered by cross-shard merge.
    pub queries: Arc<Counter>,
    /// Queries refused with the typed SHARD_UNAVAILABLE partial-answer
    /// error (degraded mode).
    pub degraded_replies: Arc<Counter>,
    /// Heartbeat probes that went unanswered (supervisor-side misses;
    /// `heartbeat_misses` consecutive ones trigger a failover attempt).
    pub heartbeat_misses: Arc<Counter>,
    /// Followers promoted to primary by the supervisor.
    pub promotions: Arc<Counter>,
    /// End-to-end routed UPDATE_BATCH handling latency.
    pub update_latency: Arc<Histogram>,
    /// End-to-end routed query latency (fan-out + merge + estimate).
    pub query_latency: Arc<Histogram>,
}

/// The lazily-registered process-wide [`RouterMetrics`].
pub(crate) fn router_metrics() -> &'static RouterMetrics {
    static METRICS: OnceLock<RouterMetrics> = OnceLock::new();
    METRICS.get_or_init(|| {
        let r = stream_telemetry::global();
        let lat =
            |kind: &str| r.histogram_with("router_request_seconds", &[("kind", kind)], Unit::Nanos);
        RouterMetrics {
            connections: r.gauge("router_connections"),
            accepted: r.counter("router_connections_total"),
            frames_rx: r.counter_with("router_frames_total", &[("dir", "rx")]),
            frames_tx: r.counter_with("router_frames_total", &[("dir", "tx")]),
            decode_errors: r.counter("router_decode_errors_total"),
            batches_in: r.counter("router_batches_total"),
            updates_routed: r.counter("router_updates_routed_total"),
            queries: r.counter("router_queries_total"),
            degraded_replies: r.counter("router_degraded_replies_total"),
            heartbeat_misses: r.counter("router_heartbeat_misses_total"),
            promotions: r.counter("router_promotions_total"),
            update_latency: lat("update_batch"),
            query_latency: lat("query"),
        }
    })
}

/// Per-shard handles, labelled by partition index. Created once per
/// [`ShardSession`](crate::ShardSession); the registry dedups by
/// (name, labels), so every session of the same partition shares the
/// same underlying series.
#[derive(Clone)]
pub(crate) struct ShardMetrics {
    /// Round-trip latency of one shard call (send→ack / query→reply).
    pub fanout_rtt: Arc<Histogram>,
    /// 1 while the shard's last interaction succeeded within the retry
    /// budget, 0 once it is considered down.
    pub healthy: Arc<Gauge>,
    /// Retries spent against this shard (reconnects, throttles, I/O
    /// errors — anything that consumed retry budget).
    pub retries: Arc<Counter>,
    /// Operations abandoned after the retry budget (degraded mode).
    pub failures: Arc<Counter>,
    /// Follower replication lag behind this shard's primary, in bytes
    /// (supervisor's estimate; 0 when caught up or unreplicated).
    pub replica_lag: Arc<Gauge>,
}

/// Registers (or re-resolves) the per-shard handles for `partition`.
pub(crate) fn shard_metrics(partition: usize) -> ShardMetrics {
    let r = stream_telemetry::global();
    let idx = partition.to_string();
    let labels: &[(&str, &str)] = &[("shard", &idx)];
    ShardMetrics {
        fanout_rtt: r.histogram_with("cluster_shard_rtt_seconds", labels, Unit::Nanos),
        healthy: r.gauge_with("cluster_shard_healthy", labels),
        retries: r.counter_with("cluster_shard_retries_total", labels),
        failures: r.counter_with("cluster_shard_failures_total", labels),
        replica_lag: r.gauge_with("cluster_replica_lag_bytes", labels),
    }
}
