//! The versioned cluster manifest and the domain partitioner it pins.
//!
//! A cluster is defined by `(seed, [shard addresses])`: key `v` lives on
//! shard `h_seed(v) mod S` where `h` is the workspace's pairwise hash
//! family over the Mersenne field `2^61 − 1` — the same family the
//! sketches themselves bucket with, so the split inherits its uniformity
//! guarantees without new machinery. The manifest records both halves
//! plus a version number, and is what SHARD_MAP serves over the wire:
//! any client can recompute the partition function from it.

use stream_hash::seed::SeedSequence;
use stream_hash::PairwiseHash;
use stream_model::update::Update;
use stream_wire::{ShardEntry, ShardMapInfo};

/// The pinned description of a cluster: partitioning seed, shard set,
/// and a version that increments whenever the shard set changes.
///
/// Two routers (or a router across restarts) built from the same
/// manifest route every key identically — which is the property the
/// exactly-once resume path depends on: a recovering shard must receive
/// exactly the keys it owned before the crash.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ClusterManifest {
    version: u64,
    seed: u64,
    addrs: Vec<String>,
}

impl ClusterManifest {
    /// A version-1 manifest over `addrs` (partition `i` is `addrs[i]`).
    ///
    /// # Panics
    /// If `addrs` is empty — a cluster has at least one shard.
    pub fn new(seed: u64, addrs: Vec<String>) -> Self {
        assert!(!addrs.is_empty(), "a cluster needs at least one shard");
        ClusterManifest {
            version: 1,
            seed,
            addrs,
        }
    }

    /// Manifest version (bumps when the shard set changes).
    pub fn version(&self) -> u64 {
        self.version
    }

    /// Seed of the partitioning hash.
    pub fn seed(&self) -> u64 {
        self.seed
    }

    /// Number of shards (= number of partitions).
    pub fn shard_count(&self) -> usize {
        self.addrs.len()
    }

    /// Shard addresses in partition order.
    pub fn addrs(&self) -> &[String] {
        &self.addrs
    }

    /// The partition function this manifest pins.
    pub fn partitioner(&self) -> Partitioner {
        Partitioner::new(self.seed, self.addrs.len())
    }

    /// Repoints partition `partition` at `addr` (a failover: the
    /// follower took over) and bumps the version so every SHARD_MAP
    /// consumer sees a changed manifest. Returns `false` (no bump) for
    /// an out-of-range partition or an unchanged address.
    ///
    /// The partition *function* is untouched — it depends only on
    /// `(seed, shard_count)` — which is exactly why failover preserves
    /// the exactly-once story: the new primary owns the same key set,
    /// and its replicated idempotency table dedups upstream replays.
    pub fn set_addr(&mut self, partition: usize, addr: &str) -> bool {
        match self.addrs.get_mut(partition) {
            Some(slot) if slot != addr => {
                *slot = addr.to_string();
                self.version += 1;
                true
            }
            _ => false,
        }
    }

    /// The wire form served for SHARD_MAP, with live per-shard health,
    /// follower addresses (empty string = none) and replication lag.
    ///
    /// # Panics
    /// If `healthy`, `followers`, or `lags` is not one entry per shard.
    pub fn to_wire(&self, healthy: &[bool], followers: &[String], lags: &[u64]) -> ShardMapInfo {
        assert_eq!(healthy.len(), self.addrs.len(), "one health flag per shard");
        assert_eq!(
            followers.len(),
            self.addrs.len(),
            "one follower entry per shard"
        );
        assert_eq!(lags.len(), self.addrs.len(), "one lag entry per shard");
        ShardMapInfo {
            version: self.version,
            seed: self.seed,
            shards: self
                .addrs
                .iter()
                .zip(healthy)
                .zip(followers.iter().zip(lags))
                .map(|((addr, h), (follower, lag))| ShardEntry {
                    addr: addr.clone(),
                    healthy: *h,
                    follower: follower.clone(),
                    lag_bytes: *lag,
                })
                .collect(),
        }
    }
}

/// The hash split `[0, N) → [0, S)`: pairwise hashing over `2^61 − 1`,
/// bucketed to the shard count.
#[derive(Debug, Clone)]
pub struct Partitioner {
    hash: PairwiseHash,
}

impl Partitioner {
    /// The partition function for `shards` partitions under `seed`.
    ///
    /// # Panics
    /// If `shards == 0`.
    pub fn new(seed: u64, shards: usize) -> Self {
        assert!(shards > 0, "need at least one partition");
        Partitioner {
            hash: PairwiseHash::from_seed(SeedSequence::new(seed), shards),
        }
    }

    /// Number of partitions.
    pub fn shards(&self) -> usize {
        self.hash.range()
    }

    /// The owning partition of key `value`.
    pub fn shard_of(&self, value: u64) -> usize {
        self.hash.bucket(value)
    }

    /// Splits a batch by owning partition, preserving within-partition
    /// order (linearity makes cross-partition order irrelevant, but
    /// keeping arrival order per shard keeps replay deterministic).
    pub fn split(&self, updates: &[Update]) -> Vec<Vec<Update>> {
        let mut parts = vec![Vec::new(); self.shards()];
        for u in updates {
            // ss-analyze: allow(a2-panic-free) -- `bucket` is `< range()` by construction and `parts` has `range()` slots
            parts[self.shard_of(u.value)].push(*u);
        }
        parts
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn partition_is_deterministic_and_total() {
        let p1 = Partitioner::new(0xC1A5_7E8D, 4);
        let p2 = Partitioner::new(0xC1A5_7E8D, 4);
        let mut seen = [false; 4];
        for v in 0..4096u64 {
            let s = p1.shard_of(v);
            assert_eq!(s, p2.shard_of(v), "same seed, same split");
            assert!(s < 4);
            seen[s] = true;
        }
        assert!(seen.iter().all(|s| *s), "all partitions receive keys");
        // A different seed produces a different split somewhere.
        let p3 = Partitioner::new(0xC1A5_7E8E, 4);
        assert!((0..4096u64).any(|v| p1.shard_of(v) != p3.shard_of(v)));
    }

    #[test]
    fn single_shard_owns_everything() {
        let p = Partitioner::new(7, 1);
        assert!((0..1024u64).all(|v| p.shard_of(v) == 0));
    }

    #[test]
    fn split_preserves_order_and_mass() {
        let p = Partitioner::new(3, 3);
        let updates: Vec<Update> = (0..500u64)
            .map(|i| Update {
                value: i.wrapping_mul(0x9E37_79B9_7F4A_7C15) >> 50,
                weight: if i % 3 == 0 { -1 } else { 2 },
            })
            .collect();
        let parts = p.split(&updates);
        assert_eq!(parts.len(), 3);
        assert_eq!(parts.iter().map(Vec::len).sum::<usize>(), updates.len());
        for (shard, part) in parts.iter().enumerate() {
            // Each sub-batch holds exactly the keys the partitioner owns
            // there, in arrival order.
            let expected: Vec<Update> = updates
                .iter()
                .filter(|u| p.shard_of(u.value) == shard)
                .copied()
                .collect();
            assert_eq!(*part, expected);
        }
    }

    #[test]
    fn manifest_round_trips_to_wire() {
        let m = ClusterManifest::new(42, vec!["a:1".into(), "b:2".into()]);
        assert_eq!(m.version(), 1);
        let followers = vec![String::from("f:1"), String::new()];
        let wire = m.to_wire(&[true, false], &followers, &[128, 0]);
        assert_eq!(wire.version, 1);
        assert_eq!(wire.seed, 42);
        assert_eq!(wire.shards.len(), 2);
        assert!(wire.shards[0].healthy && !wire.shards[1].healthy);
        assert_eq!(wire.shards[1].addr, "b:2");
        assert_eq!(wire.shards[0].follower, "f:1");
        assert_eq!(wire.shards[0].lag_bytes, 128);
        assert!(wire.shards[1].follower.is_empty());
        // The partitioner rebuilt from the wire form routes identically.
        let remote = Partitioner::new(wire.seed, wire.shards.len());
        let local = m.partitioner();
        assert!((0..2048u64).all(|v| local.shard_of(v) == remote.shard_of(v)));
    }

    #[test]
    fn set_addr_bumps_version_and_repartitions_nothing() {
        let mut m = ClusterManifest::new(42, vec!["a:1".into(), "b:2".into()]);
        let before = m.partitioner();
        assert!(m.set_addr(1, "c:3"));
        assert_eq!(m.version(), 2);
        assert_eq!(m.addrs()[1], "c:3");
        // Same address or bad partition: no change, no version bump.
        assert!(!m.set_addr(1, "c:3"));
        assert!(!m.set_addr(9, "d:4"));
        assert_eq!(m.version(), 2);
        // Routing is identical before and after the repoint.
        let after = m.partitioner();
        assert!((0..2048u64).all(|v| before.shard_of(v) == after.shard_of(v)));
    }
}
