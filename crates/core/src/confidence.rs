//! Confidence intervals for skimmed join estimates.
//!
//! The `s1` hash tables are independent estimators, so their spread carries
//! distribution-free information: if each table is within `ε` of the truth
//! with probability `> 1/2` (which is what the per-table variance bound of
//! Lemmas 1–2 gives, via Chebyshev), then order statistics of the
//! per-table estimates bracket the truth with probability
//! `1 − 2·Binom(s1, ½).cdf(k−1)`-style tail bounds — the same
//! median-boosting argument the point estimate uses, read as an interval.
//!
//! This module also exposes the **median-of-sums** estimator variant: one
//! total per table (dense⋈dense + that table's three sub-join estimates),
//! medianed once — versus the paper's sum-of-medians. The `anatomy` bench
//! compares them; their difference is within noise on every workload we
//! generate, which is itself a useful robustness observation.

use crate::estimator::{est_subjoin_in_table, EstimatorConfig, SkimmedSketch};
use stream_model::metrics::median_f64;
use stream_sketches::LinearSynopsis;

/// A join estimate with a per-table spread interval.
#[derive(Debug, Clone, PartialEq)]
pub struct ConfidenceEstimate {
    /// Median-of-sums point estimate.
    pub estimate: f64,
    /// Lower order-statistic bracket.
    pub lower: f64,
    /// Upper order-statistic bracket.
    pub upper: f64,
    /// The exact dense⋈dense component shared by every table.
    pub dense_dense: f64,
    /// One combined estimate per hash table.
    pub per_table: Vec<f64>,
}

/// ESTSKIMJOINSIZE with per-table totals and an order-statistic interval.
///
/// `trim` is how many order statistics to discard on each side when
/// forming the interval (`0` = min/max of the per-table totals; `1` drops
/// the single most extreme value each side, and so on). `trim` must leave
/// at least one value: `2·trim < s1`.
pub fn estimate_join_with_confidence(
    f: &SkimmedSketch,
    g: &SkimmedSketch,
    cfg: &EstimatorConfig,
    trim: usize,
) -> ConfidenceEstimate {
    assert!(
        f.compatible(g),
        "join estimation requires sketches under the same schema"
    );
    let mut f = f.clone();
    let mut g = g.clone();
    let tf = cfg.policy.threshold(f.base(), f.l1_mass());
    let tg = cfg.policy.threshold(g.base(), g.l1_mass());
    let dense_f = f.skim(tf, cfg.max_candidates);
    let dense_g = g.skim(tg, cfg.max_candidates);
    let dd = dense_f.dot(&dense_g) as f64;

    let tables = f.base().schema().tables();
    assert!(2 * trim < tables, "trim leaves no order statistics");
    let fb = f.base();
    let gb = g.base();
    let buckets = fb.schema().buckets();
    let per_table: Vec<f64> = (0..tables)
        .map(|i| {
            let ds = est_subjoin_in_table(&dense_f, gb, i);
            let sd = est_subjoin_in_table(&dense_g, fb, i);
            let ss: i64 = (0..buckets).map(|q| fb.table(i)[q] * gb.table(i)[q]).sum();
            dd + ds + sd + ss as f64
        })
        .collect();

    let mut sorted = per_table.clone();
    sorted.sort_by(|a, b| a.partial_cmp(b).expect("NaN estimate"));
    let estimate = median_f64(&mut sorted.clone());
    ConfidenceEstimate {
        estimate,
        lower: sorted[trim],
        upper: sorted[sorted.len() - 1 - trim],
        dense_dense: dd,
        per_table,
    }
}

impl ConfidenceEstimate {
    /// Interval width relative to the point estimate (0 for a degenerate
    /// estimate).
    pub fn relative_width(&self) -> f64 {
        if self.estimate.abs() < f64::EPSILON {
            0.0
        } else {
            (self.upper - self.lower).abs() / self.estimate.abs()
        }
    }

    /// Whether the interval contains `value`.
    pub fn contains(&self, value: f64) -> bool {
        self.lower <= value && value <= self.upper
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::estimator::{estimate_join, SkimmedSchema};
    use rand::rngs::StdRng;
    use rand::SeedableRng;
    use stream_model::gen::ZipfGenerator;
    use stream_model::{Domain, FrequencyVector};

    fn workload(seed: u64) -> (SkimmedSketch, SkimmedSketch, f64) {
        let d = Domain::with_log2(12);
        let schema = SkimmedSchema::scanning(d, 9, 256, seed);
        let mut sf = SkimmedSketch::new(schema.clone());
        let mut sg = SkimmedSketch::new(schema);
        let mut rng = StdRng::seed_from_u64(seed ^ 0xFF);
        let zf = ZipfGenerator::new(d, 1.1, 0);
        let zg = ZipfGenerator::new(d, 1.1, 30);
        let mut f = FrequencyVector::new(d);
        let mut g = FrequencyVector::new(d);
        for _ in 0..40_000 {
            let a = zf.sample(&mut rng);
            let b = zg.sample(&mut rng);
            sf.add_weighted(a, 1);
            sg.add_weighted(b, 1);
            *f.get_mut(a) += 1;
            *g.get_mut(b) += 1;
        }
        (sf, sg, f.join(&g) as f64)
    }

    #[test]
    fn interval_brackets_the_truth() {
        let mut covered = 0;
        for seed in 0..5 {
            let (sf, sg, actual) = workload(seed);
            let ce = estimate_join_with_confidence(&sf, &sg, &EstimatorConfig::default(), 0);
            assert!(ce.lower <= ce.estimate && ce.estimate <= ce.upper);
            if ce.contains(actual) {
                covered += 1;
            }
        }
        // Min/max over 9 independent tables: coverage misses only when all
        // tables land on the same side — rare; demand 4/5.
        assert!(covered >= 4, "covered={covered}/5");
    }

    #[test]
    fn median_of_sums_agrees_with_sum_of_medians() {
        let (sf, sg, actual) = workload(11);
        let cfg = EstimatorConfig::default();
        let mos = estimate_join_with_confidence(&sf, &sg, &cfg, 0).estimate;
        let som = estimate_join(&sf, &sg, &cfg).estimate;
        // The two medianing orders must land within each other's error
        // scale (both close to the truth here).
        let rel = (mos - som).abs() / actual;
        assert!(rel < 0.2, "mos={mos} som={som} actual={actual}");
    }

    #[test]
    fn trimming_narrows_the_interval() {
        let (sf, sg, _) = workload(13);
        let cfg = EstimatorConfig::default();
        let wide = estimate_join_with_confidence(&sf, &sg, &cfg, 0);
        let narrow = estimate_join_with_confidence(&sf, &sg, &cfg, 2);
        assert!(narrow.upper - narrow.lower <= wide.upper - wide.lower);
        assert_eq!(wide.per_table.len(), 9);
    }

    #[test]
    #[should_panic(expected = "order statistics")]
    fn excessive_trim_panics() {
        let (sf, sg, _) = workload(17);
        let _ = estimate_join_with_confidence(&sf, &sg, &EstimatorConfig::default(), 5);
    }
}
