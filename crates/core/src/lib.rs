//! # skimmed-sketch
//!
//! The skimmed-sketch join-size estimator of Ganguly, Garofalakis &
//! Rastogi, *"Processing Data-Stream Join Aggregates Using Skimmed
//! Sketches"* (EDBT 2004) — the paper's primary contribution, implemented
//! in full:
//!
//! * [`SkimmedSketch`] — the per-stream synopsis: `s1` hash tables of `b`
//!   AMS counters (update cost `O(s1)`, logarithmic), optionally augmented
//!   with dyadic levels for fast dense-value extraction;
//! * [`skim::skim_dense_scan`] / [`DyadicHashSketch::skim_dense`] —
//!   SKIMDENSE, which pulls every frequency ≥ `T ≈ n/√b` out of the sketch
//!   and leaves a residual-only skimmed sketch;
//! * [`estimate_join`] — ESTSKIMJOINSIZE, summing an exact dense⋈dense
//!   term with three median-boosted sub-join estimates;
//! * [`ThresholdPolicy`] — worst-case and adaptive dense thresholds;
//! * [`analysis`] — the exact error-budget arithmetic of §3.
//!
//! ## Quick example
//!
//! ```
//! use skimmed_sketch::{estimate_join, EstimatorConfig, SkimmedSchema, SkimmedSketch};
//! use stream_model::{Domain, StreamSink, Update};
//!
//! let domain = Domain::with_log2(16);
//! let schema = SkimmedSchema::scanning(domain, 7, 256, 42);
//! let mut f = SkimmedSketch::new(schema.clone());
//! let mut g = SkimmedSketch::new(schema);
//! for v in 0..1000 {
//!     f.update(Update::insert(v % 64));   // skewed stream F
//!     g.update(Update::insert(v % 128));  // stream G
//! }
//! let est = estimate_join(&f, &g, &EstimatorConfig::default());
//! assert!(est.estimate > 0.0);
//! ```

#![forbid(unsafe_code)]
#![deny(missing_docs)]
#![warn(clippy::all)]

pub mod analysis;
pub mod audit;
pub mod codec;
pub mod confidence;
pub mod dyadic;
pub mod estimator;
pub mod extracted;
pub mod planner;
pub mod skim;
pub(crate) mod telem;
pub mod threshold;
pub mod windowed;

pub use audit::audit_ratio_error;
pub use codec::{decode_skimmed, encode_skimmed, SkimCodecError};
pub use confidence::{estimate_join_with_confidence, ConfidenceEstimate};
pub use dyadic::{DyadicHashSketch, DyadicSchema};
pub use estimator::{
    est_subjoin, est_subjoin_in_table, estimate_join, estimate_self_join, EstimatorConfig,
    ExtractionStrategy, JoinEstimate, SkimmedSchema, SkimmedSketch,
};
pub use extracted::ExtractedDense;
pub use planner::{plan, Plan, PlannerInput};
pub use threshold::ThresholdPolicy;
pub use windowed::{estimate_windowed_join, WindowedSkimmedSketch};
