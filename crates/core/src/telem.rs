//! Skim-pipeline telemetry: per-phase span histograms and the gauges
//! that make Theorem 3's preconditions observable at runtime.
//!
//! ESTSKIMJOINSIZE's error guarantee rests on runtime facts the
//! estimator computes anyway — how many dense values each skim
//! extracted, and how much L2 mass the residual (skimmed) sketch still
//! holds. This module registers those as gauges next to the per-phase
//! timings so an operator can see *why* an estimate was good or bad,
//! not just how long it took.

use std::sync::{Arc, OnceLock};
use stream_telemetry::{Counter, FloatGauge, Gauge, Histogram, Unit};

/// Cached handles for the skim pipeline's metrics.
pub(crate) struct SkimMetrics {
    /// SKIMDENSE on the `F` sketch.
    pub skim_f: Arc<Histogram>,
    /// SKIMDENSE on the `G` sketch.
    pub skim_g: Arc<Histogram>,
    /// Exact dense⋈dense sort-merge.
    pub dense_dense: Arc<Histogram>,
    /// ESTSUBJOINSIZE `f̂·gₛ`.
    pub dense_sparse: Arc<Histogram>,
    /// ESTSUBJOINSIZE `fₛ·ĝ`.
    pub sparse_dense: Arc<Histogram>,
    /// Bucket-wise sparse⋈sparse counter product.
    pub sparse_sparse: Arc<Histogram>,
    /// Dense values extracted from `F` by the last estimate.
    pub dense_f: Arc<Gauge>,
    /// Dense values extracted from `G` by the last estimate.
    pub dense_g: Arc<Gauge>,
    /// Residual L2 norm of the skimmed `F` sketch (Thm 3 precondition).
    pub residual_f: Arc<FloatGauge>,
    /// Residual L2 norm of the skimmed `G` sketch.
    pub residual_g: Arc<FloatGauge>,
    /// ESTSKIMJOINSIZE invocations.
    pub estimates: Arc<Counter>,
}

/// The lazily-registered process-wide [`SkimMetrics`].
pub(crate) fn skim_metrics() -> &'static SkimMetrics {
    static METRICS: OnceLock<SkimMetrics> = OnceLock::new();
    METRICS.get_or_init(|| {
        let r = stream_telemetry::global();
        let phase = |p: &str| r.histogram_with("skim_phase_seconds", &[("phase", p)], Unit::Nanos);
        SkimMetrics {
            skim_f: phase("skim_f"),
            skim_g: phase("skim_g"),
            dense_dense: phase("dense_dense"),
            dense_sparse: phase("dense_sparse"),
            sparse_dense: phase("sparse_dense"),
            sparse_sparse: phase("sparse_sparse"),
            dense_f: r.gauge_with("skim_dense_values", &[("side", "f")]),
            dense_g: r.gauge_with("skim_dense_values", &[("side", "g")]),
            residual_f: r.float_gauge_with("skim_residual_l2", &[("side", "f")]),
            residual_g: r.float_gauge_with("skim_residual_l2", &[("side", "g")]),
            estimates: r.counter("skim_estimates_total"),
        }
    })
}
