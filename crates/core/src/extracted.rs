//! The dense-frequency vector extracted by SKIMDENSE.
//!
//! A sparse, value-sorted map `v → f̂(v)` of the frequencies skimmed out of
//! a hash sketch. Sorted order makes the exact dense⋈dense sub-join a
//! linear sort-merge and keeps lookups logarithmic without hashing.

/// Sparse vector of extracted dense frequencies, sorted by value.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct ExtractedDense {
    entries: Vec<(u64, i64)>,
}

impl ExtractedDense {
    /// Builds from `(value, estimate)` pairs (any order, values distinct).
    pub fn from_entries(mut entries: Vec<(u64, i64)>) -> Self {
        entries.sort_unstable_by_key(|&(v, _)| v);
        debug_assert!(
            entries.windows(2).all(|w| w[0].0 < w[1].0),
            "duplicate values in extracted set"
        );
        Self { entries }
    }

    /// Empty set.
    pub fn empty() -> Self {
        Self::default()
    }

    /// Number of extracted values.
    pub fn len(&self) -> usize {
        self.entries.len()
    }

    /// Whether nothing was extracted.
    pub fn is_empty(&self) -> bool {
        self.entries.is_empty()
    }

    /// The extracted estimate for `v`, or 0 if `v` was not skimmed.
    pub fn get(&self, v: u64) -> i64 {
        match self.entries.binary_search_by_key(&v, |&(x, _)| x) {
            Ok(i) => self.entries[i].1,
            Err(_) => 0,
        }
    }

    /// Iterator over `(value, estimate)` in increasing value order.
    pub fn iter(&self) -> impl Iterator<Item = (u64, i64)> + '_ {
        self.entries.iter().copied()
    }

    /// Exact inner product with another extracted set — the dense⋈dense
    /// sub-join, computed with zero error by sort-merge.
    pub fn dot(&self, other: &ExtractedDense) -> i64 {
        let (mut i, mut j) = (0, 0);
        let mut acc: i64 = 0;
        while i < self.entries.len() && j < other.entries.len() {
            let (va, fa) = self.entries[i];
            let (vb, fb) = other.entries[j];
            match va.cmp(&vb) {
                std::cmp::Ordering::Less => i += 1,
                std::cmp::Ordering::Greater => j += 1,
                std::cmp::Ordering::Equal => {
                    acc += fa * fb;
                    i += 1;
                    j += 1;
                }
            }
        }
        acc
    }

    /// Total extracted mass `Σ |f̂(v)|`.
    pub fn l1(&self) -> i64 {
        self.entries.iter().map(|&(_, f)| f.abs()).sum()
    }

    /// Self-join of the extracted vector, `Σ f̂(v)²`.
    pub fn self_join(&self) -> i64 {
        self.entries.iter().map(|&(_, f)| f * f).sum()
    }

    /// Smallest extracted |estimate| (None when empty) — handy for
    /// validating that everything extracted cleared the threshold.
    pub fn min_abs(&self) -> Option<i64> {
        self.entries.iter().map(|&(_, f)| f.abs()).min()
    }
}

impl<'a> IntoIterator for &'a ExtractedDense {
    type Item = (u64, i64);
    type IntoIter = std::iter::Copied<std::slice::Iter<'a, (u64, i64)>>;

    fn into_iter(self) -> Self::IntoIter {
        self.entries.iter().copied()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn from_entries_sorts() {
        let e = ExtractedDense::from_entries(vec![(5, 50), (1, 10), (3, 30)]);
        let vals: Vec<u64> = e.iter().map(|(v, _)| v).collect();
        assert_eq!(vals, vec![1, 3, 5]);
    }

    #[test]
    fn get_hits_and_misses() {
        let e = ExtractedDense::from_entries(vec![(2, -7), (9, 4)]);
        assert_eq!(e.get(2), -7);
        assert_eq!(e.get(9), 4);
        assert_eq!(e.get(3), 0);
    }

    #[test]
    fn dot_is_exact_sparse_inner_product() {
        let a = ExtractedDense::from_entries(vec![(1, 2), (4, 3), (8, 5)]);
        let b = ExtractedDense::from_entries(vec![(4, 10), (8, -1), (9, 100)]);
        assert_eq!(a.dot(&b), 3 * 10 + -5);
        assert_eq!(a.dot(&b), b.dot(&a));
        assert_eq!(a.dot(&ExtractedDense::empty()), 0);
    }

    #[test]
    fn norms() {
        let a = ExtractedDense::from_entries(vec![(1, -2), (4, 3)]);
        assert_eq!(a.l1(), 5);
        assert_eq!(a.self_join(), 13);
        assert_eq!(a.min_abs(), Some(2));
        assert_eq!(ExtractedDense::empty().min_abs(), None);
    }
}
