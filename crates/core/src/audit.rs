//! Estimator self-audit: streaming ratio-error observations.
//!
//! The paper's accuracy claims (Theorems 3–4) are probabilistic, so a
//! deployment can only *validate* them where ground truth exists —
//! tests, benchmarks, or a shadow exact aggregator. Whenever a caller
//! has both an estimate and the truth, routing the comparison through
//! [`audit_ratio_error`] streams the paper's §5.1 ratio error into the
//! `estimator_ratio_error` histogram of the global registry, making the
//! estimator's observed error distribution (p50/p95/p99/max) part of
//! every telemetry snapshot.

use std::sync::{Arc, OnceLock};
use stream_model::metrics::ratio_error;
use stream_telemetry::{Histogram, Unit};

/// The audit histogram (1e-6 fixed-point ratio errors).
fn audit_histogram() -> &'static Arc<Histogram> {
    static HIST: OnceLock<Arc<Histogram>> = OnceLock::new();
    HIST.get_or_init(|| {
        stream_telemetry::global().histogram("estimator_ratio_error", Unit::Scaled1e6)
    })
}

/// Computes the paper's symmetric ratio error between `estimate` and the
/// ground-truth `actual`, records it into the global
/// `estimator_ratio_error` histogram, and returns it.
///
/// With telemetry compiled out this is exactly
/// [`stream_model::metrics::ratio_error`].
pub fn audit_ratio_error(estimate: f64, actual: f64) -> f64 {
    let err = ratio_error(estimate, actual);
    if stream_telemetry::ENABLED {
        audit_histogram().record_f64(err);
    }
    err
}

#[cfg(test)]
mod tests {
    use super::*;
    use stream_model::metrics::ERROR_SANITY_BOUND;

    #[test]
    fn audit_returns_the_ratio_error() {
        assert_eq!(audit_ratio_error(100.0, 100.0), 0.0);
        assert!((audit_ratio_error(200.0, 100.0) - 1.0).abs() < 1e-12);
        assert_eq!(audit_ratio_error(0.0, 100.0), ERROR_SANITY_BOUND);
    }

    #[test]
    fn audit_streams_into_the_global_histogram() {
        let before = audit_histogram().count();
        audit_ratio_error(150.0, 100.0);
        audit_ratio_error(100.0, 100.0);
        if stream_telemetry::ENABLED {
            assert_eq!(audit_histogram().count(), before + 2);
            assert!(audit_histogram().quantile_f64(1.0) >= 0.5);
        } else {
            assert_eq!(audit_histogram().count(), 0);
        }
    }
}
