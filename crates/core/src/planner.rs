//! Synopsis sizing — turning the paper's space bounds into a planning
//! tool.
//!
//! Theorem 5 says the skimmed estimator achieves relative error `ε` with
//! `O(n² / (ε·J))` counters — the join-size lower bound of \[4\] — while
//! basic AGMS needs the *square* of that. Given what a deployment knows
//! (stream length budget, a lower bound on the join sizes it cares about,
//! a target error and confidence), [`plan`] inverts those bounds into a
//! concrete `(s1, b)` configuration, and [`predict`] goes the other way
//! for a configuration in hand.
//!
//! The constants are the ones our own evaluation validates (see
//! `EXPERIMENTS.md`): worst-case-safe, so real skewed workloads typically
//! do several times better than the prediction.

use crate::estimator::{ExtractionStrategy, SkimmedSchema};
use std::sync::Arc;
use stream_model::Domain;

/// What the deployment knows ahead of time.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct PlannerInput {
    /// Upper bound on elements per stream (`n`).
    pub stream_len: u64,
    /// Lower bound on the join sizes that must be estimated well (`J`).
    /// Smaller joins are allowed to have larger relative error — exactly
    /// the paper's accuracy model.
    pub min_join_size: f64,
    /// Target relative error `ε`.
    pub target_error: f64,
    /// Target failure probability `δ` (drives the table count).
    pub failure_probability: f64,
}

/// A recommended configuration with its predicted guarantees.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct Plan {
    /// Recommended hash-table count (`s1`).
    pub tables: usize,
    /// Recommended buckets per table (`b`).
    pub buckets: usize,
    /// Total words per stream synopsis.
    pub words: usize,
    /// Worst-case additive error the plan guarantees (`≈ ε·J`).
    pub predicted_additive_error: f64,
    /// The same, relative to `min_join_size`.
    pub predicted_relative_error: f64,
}

/// Worst-case additive error of the skimmed estimator at `buckets` buckets
/// for a stream of length `n`: the three estimated sub-joins each carry
/// `O(√(SJ_res²/b))` deviation with `SJ_res ≤ n·T = n²/√b`, giving
/// `c·n²/b` with a small constant (we use `c = 3`, one per estimated
/// sub-join — the constant our Theorem-5 validation run stays under).
pub fn worst_case_additive_error(stream_len: u64, buckets: usize) -> f64 {
    assert!(buckets > 0, "buckets must be positive");
    let n = stream_len as f64;
    3.0 * n * n / buckets as f64
}

/// Tables needed to push per-table constant failure probability down to
/// `δ` by median boosting: `s1 = ⌈4.5·ln(1/δ)⌉`, forced odd so the median
/// is a single order statistic.
pub fn tables_for_confidence(failure_probability: f64) -> usize {
    assert!(
        (0.0..1.0).contains(&failure_probability) && failure_probability > 0.0,
        "failure probability must be in (0, 1)"
    );
    let s1 = (4.5 * (1.0 / failure_probability).ln()).ceil() as usize;
    let s1 = s1.max(3);
    if s1.is_multiple_of(2) {
        s1 + 1
    } else {
        s1
    }
}

/// Produces a configuration meeting `input`'s targets.
///
/// # Examples
///
/// ```
/// use skimmed_sketch::planner::{plan, PlannerInput};
///
/// let p = plan(&PlannerInput {
///     stream_len: 1_000_000,
///     min_join_size: 1e8,
///     target_error: 0.1,
///     failure_probability: 0.01,
/// });
/// assert!(p.predicted_relative_error <= 0.1);
/// assert!(p.buckets >= 100_000); // ~3·n²/(εJ)
/// ```
pub fn plan(input: &PlannerInput) -> Plan {
    assert!(input.target_error > 0.0, "target error must be positive");
    assert!(
        input.min_join_size > 0.0,
        "join lower bound must be positive"
    );
    let n = input.stream_len as f64;
    // Invert worst_case_additive_error(n, b) ≤ ε·J.
    let buckets = (3.0 * n * n / (input.target_error * input.min_join_size))
        .ceil()
        .max(2.0) as usize;
    let tables = tables_for_confidence(input.failure_probability);
    let add = worst_case_additive_error(input.stream_len, buckets);
    Plan {
        tables,
        buckets,
        words: tables * buckets,
        predicted_additive_error: add,
        predicted_relative_error: add / input.min_join_size,
    }
}

/// Predicts the guarantee of an existing `(tables, buckets)` configuration
/// for streams of length `stream_len` and joins of at least `min_join`.
pub fn predict(stream_len: u64, min_join: f64, buckets: usize) -> f64 {
    worst_case_additive_error(stream_len, buckets) / min_join
}

/// Materializes a plan as a ready-to-use schema.
pub fn schema_for_plan(
    plan: &Plan,
    domain: Domain,
    seed: u64,
    strategy: ExtractionStrategy,
) -> Arc<SkimmedSchema> {
    match strategy {
        ExtractionStrategy::NaiveScan => {
            SkimmedSchema::scanning(domain, plan.tables, plan.buckets, seed)
        }
        ExtractionStrategy::Dyadic => {
            SkimmedSchema::dyadic(domain, plan.tables, plan.buckets, seed)
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn plan_meets_its_own_target() {
        let input = PlannerInput {
            stream_len: 1_000_000,
            min_join_size: 5e7,
            target_error: 0.1,
            failure_probability: 0.01,
        };
        let p = plan(&input);
        assert!(p.predicted_relative_error <= input.target_error * 1.001);
        assert_eq!(p.words, p.tables * p.buckets);
        assert!(p.tables % 2 == 1);
    }

    #[test]
    fn space_scales_inversely_with_error_and_join() {
        let base = PlannerInput {
            stream_len: 100_000,
            min_join_size: 1e6,
            target_error: 0.1,
            failure_probability: 0.05,
        };
        let p1 = plan(&base);
        let p2 = plan(&PlannerInput {
            target_error: 0.05,
            ..base
        });
        // Halving ε doubles the buckets (linear in 1/ε — the lower-bound
        // scaling, *not* the 1/ε² of basic sketching).
        assert!((p2.buckets as f64 / p1.buckets as f64 - 2.0).abs() < 0.01);
        let p3 = plan(&PlannerInput {
            min_join_size: 2e6,
            ..base
        });
        assert!((p1.buckets as f64 / p3.buckets as f64 - 2.0).abs() < 0.01);
    }

    #[test]
    fn more_confidence_means_more_tables() {
        assert!(tables_for_confidence(0.001) > tables_for_confidence(0.1));
        assert_eq!(tables_for_confidence(0.5) % 2, 1);
    }

    #[test]
    fn predict_inverts_plan() {
        let input = PlannerInput {
            stream_len: 500_000,
            min_join_size: 1e8,
            target_error: 0.2,
            failure_probability: 0.05,
        };
        let p = plan(&input);
        let rel = predict(input.stream_len, input.min_join_size, p.buckets);
        assert!(rel <= input.target_error * 1.001, "rel={rel}");
    }

    #[test]
    fn schema_materialization_matches_plan() {
        let p = Plan {
            tables: 5,
            buckets: 64,
            words: 320,
            predicted_additive_error: 0.0,
            predicted_relative_error: 0.0,
        };
        let d = Domain::with_log2(10);
        let s = schema_for_plan(&p, d, 1, ExtractionStrategy::NaiveScan);
        assert_eq!(s.base().tables(), 5);
        assert_eq!(s.base().buckets(), 64);
        let dy = schema_for_plan(&p, d, 1, ExtractionStrategy::Dyadic);
        assert_eq!(dy.strategy(), ExtractionStrategy::Dyadic);
    }

    #[test]
    #[should_panic(expected = "positive")]
    fn zero_error_target_rejected() {
        let _ = plan(&PlannerInput {
            stream_len: 100,
            min_join_size: 10.0,
            target_error: 0.0,
            failure_probability: 0.1,
        });
    }
}
