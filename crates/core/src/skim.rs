//! SKIMDENSE — extracting dense frequencies out of a hash sketch.
//!
//! This is Fig. 3 of the paper (the CountSketch variant adapted to
//! *skimming*): estimate every candidate value from the sketch, keep those
//! whose estimate clears the threshold, then **subtract the estimates back
//! out of the sketch**, leaving a *skimmed* sketch that summarizes only the
//! residual (sparse) frequencies. Theorem 4's guarantees — residuals below
//! the threshold, and skimmed frequencies never overshooting the original —
//! hold w.h.p. and are property-tested in this module and in
//! `tests/skim_properties.rs`.
//!
//! The naive scan here costs `O(|domain| · s1)`; the dyadic variant in
//! [`crate::dyadic`] brings that down to `O(poly · log |domain|)`.

use crate::extracted::ExtractedDense;
use stream_model::Domain;
use stream_sketches::HashSketch;

/// Runs naive SKIMDENSE over `sketch`: scans every value of `domain`,
/// extracts those with `|estimate| ≥ threshold`, subtracts them from the
/// sketch in place, and returns the extracted dense vector.
pub fn skim_dense_scan(sketch: &mut HashSketch, domain: Domain, threshold: i64) -> ExtractedDense {
    assert!(threshold >= 1, "threshold must be at least 1");
    // Phase 1 (paper steps 3–7): estimate every value from the *unskimmed*
    // sketch. Estimating before any subtraction matters: subtracting while
    // scanning would make later estimates depend on scan order.
    let mut entries: Vec<(u64, i64)> = Vec::new();
    for v in 0..domain.size() {
        let est = sketch.point_estimate(v);
        if est.abs() >= threshold {
            entries.push((v, est));
        }
    }
    // Phase 2 (paper steps 8–9): skim the extracted estimates out.
    for &(v, est) in &entries {
        sketch.add_weighted(v, -est);
    }
    ExtractedDense::from_entries(entries)
}

/// Like [`skim_dense_scan`] but restricted to an explicit candidate list
/// (the dyadic descent produces one); values outside `candidates` are never
/// extracted.
pub fn skim_dense_candidates(
    sketch: &mut HashSketch,
    candidates: &[u64],
    threshold: i64,
) -> ExtractedDense {
    assert!(threshold >= 1, "threshold must be at least 1");
    let mut entries: Vec<(u64, i64)> = Vec::new();
    for &v in candidates {
        let est = sketch.point_estimate(v);
        if est.abs() >= threshold {
            entries.push((v, est));
        }
    }
    for &(v, est) in &entries {
        sketch.add_weighted(v, -est);
    }
    ExtractedDense::from_entries(entries)
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::StdRng;
    use rand::SeedableRng;
    use stream_model::gen::ZipfGenerator;
    use stream_model::update::StreamSink;
    use stream_model::{FrequencyVector, Update};
    use stream_sketches::{HashSketch, HashSketchSchema};

    fn build(
        domain_log2: u32,
        updates: &[Update],
        tables: usize,
        buckets: usize,
        seed: u64,
    ) -> (FrequencyVector, HashSketch) {
        let d = Domain::with_log2(domain_log2);
        let fv = FrequencyVector::from_updates(d, updates.iter().copied());
        let schema = HashSketchSchema::new(tables, buckets, seed);
        let mut sk = HashSketch::new(schema);
        for &u in updates {
            sk.update(u);
        }
        (fv, sk)
    }

    #[test]
    fn extracts_exactly_the_planted_heads_on_clean_data() {
        // Three tall values over light uniform noise; T cleanly separates.
        let d = Domain::with_log2(10);
        let mut updates: Vec<Update> = Vec::new();
        for (v, w) in [(3u64, 500i64), (700, 800), (512, 300)] {
            updates.push(Update::with_measure(v, w));
        }
        let mut rng = StdRng::seed_from_u64(1);
        let noise = ZipfGenerator::new(d, 0.0, 0).generate(&mut rng, 2000);
        updates.extend(noise);
        let (fv, mut sk) = build(10, &updates, 7, 256, 5);
        let dense = skim_dense_scan(&mut sk, d, 150);
        let got: Vec<u64> = dense.iter().map(|(v, _)| v).collect();
        assert!(
            got.contains(&3) && got.contains(&700) && got.contains(&512),
            "got={got:?}"
        );
        // Estimates within the CountSketch error of the truth.
        for (v, est) in dense.iter() {
            let actual = fv.get(v);
            assert!(
                (est - actual).abs() <= 30,
                "v={v} est={est} actual={actual}"
            );
        }
    }

    #[test]
    fn residuals_stay_below_threshold() {
        // Thm 4(1): after skimming, |f(v) - f̂(v)| < T for (nearly) all v.
        let d = Domain::with_log2(12);
        let zipf = ZipfGenerator::new(d, 1.2, 0);
        let mut rng = StdRng::seed_from_u64(2);
        let updates = zipf.generate(&mut rng, 50_000);
        let (fv, mut sk) = build(12, &updates, 7, 512, 9);
        let t = 120i64;
        let dense = skim_dense_scan(&mut sk, d, t);
        assert!(!dense.is_empty());
        let mut violations = 0;
        for v in 0..d.size() {
            let residual = fv.get(v) - dense.get(v);
            if residual.abs() >= 2 * t {
                violations += 1;
            }
        }
        assert_eq!(violations, 0, "residuals above 2T");
        // And the typical residual is below T itself.
        let above_t = (0..d.size())
            .filter(|&v| (fv.get(v) - dense.get(v)).abs() >= t)
            .count();
        assert!(above_t <= 3, "above_t={above_t}");
    }

    #[test]
    fn skimmed_sketch_summarizes_the_residual_vector() {
        // The skimmed sketch must equal a fresh sketch of (f - f̂), exactly.
        let d = Domain::with_log2(8);
        let zipf = ZipfGenerator::new(d, 1.5, 0);
        let mut rng = StdRng::seed_from_u64(3);
        let updates = zipf.generate(&mut rng, 10_000);
        let (fv, mut sk) = build(8, &updates, 5, 128, 11);
        let schema = sk.schema().clone();
        let dense = skim_dense_scan(&mut sk, d, 50);
        let mut residual = fv.clone();
        for (v, est) in dense.iter() {
            *residual.get_mut(v) -= est;
        }
        let expect = HashSketch::from_frequencies(schema, residual.nonzero());
        assert_eq!(sk.counters(), expect.counters());
    }

    #[test]
    fn empty_sketch_extracts_nothing() {
        let d = Domain::with_log2(6);
        let schema = HashSketchSchema::new(3, 32, 1);
        let mut sk = HashSketch::new(schema);
        let dense = skim_dense_scan(&mut sk, d, 1);
        assert!(dense.is_empty());
    }

    #[test]
    fn candidates_variant_respects_candidate_list() {
        let d = Domain::with_log2(8);
        let mut updates = vec![
            Update::with_measure(10, 1000),
            Update::with_measure(20, 1000),
        ];
        updates.push(Update::insert(30));
        let (_, mut sk) = build(8, &updates, 5, 64, 13);
        // Only value 10 offered as a candidate.
        let dense = skim_dense_candidates(&mut sk, &[10], 100);
        assert_eq!(dense.len(), 1);
        assert_eq!(dense.iter().next().unwrap().0, 10);
        // 20 remains in the sketch: estimate still tall.
        assert!(sk.point_estimate(20) > 900);
        let _ = d;
    }

    #[test]
    fn skim_handles_negative_frequencies() {
        // General update streams: a strongly negative frequency is "dense"
        // in absolute value and must be skimmed too.
        let (_fv, mut sk) = build(
            6,
            &[Update::with_measure(5, -400), Update::with_measure(9, 350)],
            5,
            64,
            17,
        );
        let dense = skim_dense_scan(&mut sk, Domain::with_log2(6), 100);
        assert_eq!(dense.get(5), -400);
        assert_eq!(dense.get(9), 350);
        assert!(sk.counters().iter().all(|&c| c == 0));
    }

    #[test]
    #[should_panic(expected = "threshold")]
    fn zero_threshold_rejected() {
        let schema = HashSketchSchema::new(2, 8, 0);
        let mut sk = HashSketch::new(schema);
        let _ = skim_dense_scan(&mut sk, Domain::with_log2(3), 0);
    }
}
