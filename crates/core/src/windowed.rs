//! Windowed join estimation — jumping-window semantics over skimmed
//! sketches.
//!
//! Streaming deployments rarely want the join over *all history*; they
//! want "the last hour". The paper's related work points at sliding-window
//! statistics \[12\]; linear sketches give a particularly clean jumping
//! (epoch-granular) window: keep one sub-sketch per epoch plus their
//! running sum, and expire an epoch by **subtracting** its sub-sketch from
//! the sum — exact, O(synopsis) per expiry, no rescan of history.
//!
//! The window slides in whole epochs (a "jumping" window). Memory is
//! `(window + 1) × synopsis`; the estimate at any time covers exactly the
//! live epochs.

use crate::estimator::{
    estimate_join, EstimatorConfig, JoinEstimate, SkimmedSchema, SkimmedSketch,
};
use std::collections::VecDeque;
use std::sync::Arc;
use stream_model::update::{StreamSink, Update};

/// A skimmed sketch over the most recent `window` epochs of a stream.
///
/// # Examples
///
/// ```
/// use skimmed_sketch::{SkimmedSchema, WindowedSkimmedSketch};
/// use stream_model::Domain;
///
/// let schema = SkimmedSchema::scanning(Domain::with_log2(8), 3, 32, 1);
/// let mut w = WindowedSkimmedSketch::new(schema, 2);
/// w.add_weighted(5, 100);
/// w.advance_epoch(); // epoch with the 100 units is still live
/// assert_eq!(w.window_sketch().l1_mass(), 100);
/// w.advance_epoch(); // now it expires
/// assert_eq!(w.window_sketch().l1_mass(), 0);
/// ```
#[derive(Debug, Clone)]
pub struct WindowedSkimmedSketch {
    schema: Arc<SkimmedSchema>,
    /// Completed epochs still inside the window, oldest first.
    epochs: VecDeque<SkimmedSketch>,
    /// The epoch currently being filled.
    current: SkimmedSketch,
    /// Running sum of `epochs` + `current`.
    total: SkimmedSketch,
    /// Maximum number of epochs covered (including the current one).
    window: usize,
    /// Epochs closed so far (diagnostics / time axis).
    epochs_closed: u64,
}

impl WindowedSkimmedSketch {
    /// A windowed sketch covering `window ≥ 1` epochs under `schema`.
    pub fn new(schema: Arc<SkimmedSchema>, window: usize) -> Self {
        assert!(window >= 1, "window must cover at least one epoch");
        Self {
            epochs: VecDeque::with_capacity(window),
            current: SkimmedSketch::new(schema.clone()),
            total: SkimmedSketch::new(schema.clone()),
            schema,
            window,
            epochs_closed: 0,
        }
    }

    /// The shared schema.
    pub fn schema(&self) -> &Arc<SkimmedSchema> {
        &self.schema
    }

    /// Number of epochs the window covers.
    pub fn window(&self) -> usize {
        self.window
    }

    /// Number of epochs closed so far.
    pub fn epochs_closed(&self) -> u64 {
        self.epochs_closed
    }

    /// The synopsis of the live window (sum of live epochs).
    pub fn window_sketch(&self) -> &SkimmedSketch {
        &self.total
    }

    /// Adds `w` copies of `v` to the current epoch.
    pub fn add_weighted(&mut self, v: u64, w: i64) {
        self.current.add_weighted(v, w);
        self.total.add_weighted(v, w);
    }

    /// Closes the current epoch and opens a fresh one, expiring the oldest
    /// epoch if the window is full. Returns the number of epochs expired
    /// (0 or 1).
    pub fn advance_epoch(&mut self) -> usize {
        let finished =
            std::mem::replace(&mut self.current, SkimmedSketch::new(self.schema.clone()));
        self.epochs.push_back(finished);
        self.epochs_closed += 1;
        // `epochs` plus the (new, empty) current epoch must cover at most
        // `window` epochs.
        let mut expired = 0;
        while self.epochs.len() + 1 > self.window {
            let old = self.epochs.pop_front().expect("nonempty");
            self.total.retract(&old);
            expired += 1;
        }
        expired
    }

    /// Memory footprint in words across all retained sub-sketches.
    pub fn words(&self) -> usize {
        (self.epochs.len() + 2) * self.schema.words()
    }
}

impl StreamSink for WindowedSkimmedSketch {
    fn update(&mut self, u: Update) {
        self.add_weighted(u.value, u.weight);
    }
}

/// Estimates the join of the two windows (ESTSKIMJOINSIZE over the live
/// window sums). Both windows must share the schema; they may cover
/// different epoch counts (the estimate is over whatever is live in each).
pub fn estimate_windowed_join(
    f: &WindowedSkimmedSketch,
    g: &WindowedSkimmedSketch,
    cfg: &EstimatorConfig,
) -> JoinEstimate {
    estimate_join(f.window_sketch(), g.window_sketch(), cfg)
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::StdRng;
    use rand::SeedableRng;
    use stream_model::gen::ZipfGenerator;
    use stream_model::metrics::ratio_error;
    use stream_model::{Domain, FrequencyVector};

    fn schema(seed: u64) -> Arc<SkimmedSchema> {
        SkimmedSchema::scanning(Domain::with_log2(12), 7, 256, seed)
    }

    #[test]
    fn window_sum_equals_live_epochs_exactly() {
        let d = Domain::with_log2(12);
        let mut w = WindowedSkimmedSketch::new(schema(1), 3);
        let zipf = ZipfGenerator::new(d, 1.0, 0);
        let mut rng = StdRng::seed_from_u64(2);
        let mut per_epoch: Vec<Vec<Update>> = Vec::new();
        for _ in 0..6 {
            let us = zipf.generate(&mut rng, 2_000);
            for &u in &us {
                w.update(u);
            }
            per_epoch.push(us);
            w.advance_epoch();
        }
        // Live: the last (window-1)=2 closed epochs + empty current.
        let mut expect = SkimmedSketch::new(w.schema().clone());
        for us in &per_epoch[4..] {
            for &u in us {
                expect.update(u);
            }
        }
        assert_eq!(
            w.window_sketch().base().counters(),
            expect.base().counters()
        );
        assert_eq!(w.window_sketch().l1_mass(), expect.l1_mass());
    }

    #[test]
    fn windowed_estimate_tracks_live_join_only() {
        let d = Domain::with_log2(12);
        let sch = schema(3);
        let mut wf = WindowedSkimmedSketch::new(sch.clone(), 2);
        let mut wg = WindowedSkimmedSketch::new(sch, 2);
        let mut rng = StdRng::seed_from_u64(4);
        let zf = ZipfGenerator::new(d, 1.2, 0);
        let zg = ZipfGenerator::new(d, 1.2, 64);
        let cfg = EstimatorConfig::default();

        let mut live_f = FrequencyVector::new(d);
        let mut live_g = FrequencyVector::new(d);
        // Epoch 1: heavy prefix traffic that will later expire.
        for _ in 0..30_000 {
            let (a, b) = (zf.sample(&mut rng), zg.sample(&mut rng));
            wf.add_weighted(a, 1);
            wg.add_weighted(b, 1);
        }
        wf.advance_epoch();
        wg.advance_epoch();
        // Epoch 2 (the only one that will remain live after the next
        // advance): tracked exactly.
        for _ in 0..30_000 {
            let (a, b) = (zf.sample(&mut rng), zg.sample(&mut rng));
            wf.add_weighted(a, 1);
            wg.add_weighted(b, 1);
            live_f.update(Update::insert(a));
            live_g.update(Update::insert(b));
        }
        wf.advance_epoch(); // expires epoch 1 (window = 2: epoch 2 + current)
        wg.advance_epoch();

        let est = estimate_windowed_join(&wf, &wg, &cfg);
        let actual = live_f.join(&live_g) as f64;
        let err = ratio_error(est.estimate, actual);
        assert!(err < 0.2, "err={err} est={} actual={actual}", est.estimate);
    }

    #[test]
    fn window_one_keeps_only_the_current_epoch() {
        let mut w = WindowedSkimmedSketch::new(schema(5), 1);
        w.add_weighted(7, 100);
        assert_eq!(w.advance_epoch(), 1); // immediately expired
        assert!(w.window_sketch().base().counters().iter().all(|&c| c == 0));
        assert_eq!(w.window_sketch().l1_mass(), 0);
        w.add_weighted(9, 5);
        assert_eq!(w.window_sketch().l1_mass(), 5);
    }

    #[test]
    fn expiry_count_and_epoch_bookkeeping() {
        let mut w = WindowedSkimmedSketch::new(schema(6), 3);
        assert_eq!(w.advance_epoch(), 0);
        assert_eq!(w.advance_epoch(), 0);
        assert_eq!(w.advance_epoch(), 1);
        assert_eq!(w.advance_epoch(), 1);
        assert_eq!(w.epochs_closed(), 4);
        assert!(w.words() >= w.schema().words());
    }

    #[test]
    #[should_panic(expected = "at least one epoch")]
    fn zero_window_rejected() {
        let _ = WindowedSkimmedSketch::new(schema(7), 0);
    }
}
