//! Dyadic-level hash sketches — SKIMDENSE in `O(poly · log N)` time.
//!
//! The naive SKIMDENSE scan touches every domain value, untenable for the
//! 64-bit-address streams the paper motivates. Its §4.2 optimization (after
//! Cormode & Muthukrishnan \[9\]) maintains one hash sketch per *dyadic
//! level*: at level `ℓ` the stream value `v` is recorded as the interval
//! index `v >> ℓ`, so the level-`ℓ` "frequency" of an interval is the sum
//! of the frequencies inside it. Since an interval containing a dense value
//! is itself dense, extraction descends the binary hierarchy, expanding
//! only intervals whose estimate clears the threshold — `O(#dense · log N)`
//! point estimates instead of `O(N)`.
//!
//! Level 0 of the structure *is* the ordinary hash sketch, and join
//! estimation uses it alone; levels `≥ 1` exist purely to accelerate
//! extraction.

use crate::extracted::ExtractedDense;
use crate::skim::skim_dense_candidates;
use std::sync::Arc;
use stream_model::update::{StreamSink, Update};
use stream_model::Domain;
use stream_sketches::{HashSketch, HashSketchSchema, LinearSynopsis};

/// Shared per-level schemas for a family of dyadic sketches.
#[derive(Debug)]
pub struct DyadicSchema {
    domain: Domain,
    levels: Vec<Arc<HashSketchSchema>>,
    seed: u64,
}

impl DyadicSchema {
    /// Creates schemas for all `log2(N) + 1` levels. Each level gets
    /// `tables` hash tables; level `ℓ` gets `min(buckets, 2·intervals(ℓ))`
    /// buckets — no point hashing 4 intervals into 500 buckets.
    pub fn new(domain: Domain, tables: usize, buckets: usize, seed: u64) -> Arc<Self> {
        let root_seed =
            |level: u32| seed ^ (0xD1AD1C00u64 + u64::from(level)).wrapping_mul(0x9E3779B97F4A7C15);
        let levels = (0..domain.levels())
            .map(|level| {
                let intervals = domain.intervals_at(level);
                // ss-analyze: allow(a5-numeric-narrowing) -- usize -> u64 is lossless on every supported platform
                let b = (buckets as u64).min(intervals.saturating_mul(2).max(2)) as usize;
                HashSketchSchema::new(tables, b, root_seed(level))
            })
            .collect();
        Arc::new(Self {
            domain,
            levels,
            seed,
        })
    }

    /// The domain this schema covers.
    pub fn domain(&self) -> Domain {
        self.domain
    }

    /// The level-0 (value-granularity) schema.
    pub fn base(&self) -> &Arc<HashSketchSchema> {
        &self.levels[0]
    }

    /// Schema of level `ℓ`.
    pub fn level(&self, level: u32) -> &Arc<HashSketchSchema> {
        &self.levels[level as usize]
    }

    /// Number of levels.
    pub fn num_levels(&self) -> u32 {
        // ss-analyze: allow(a5-numeric-narrowing) -- at most `log2(domain)+1 <= 65` levels
        self.levels.len() as u32
    }

    /// Root seed.
    pub fn seed(&self) -> u64 {
        self.seed
    }

    /// Total counters across all levels.
    pub fn words(&self) -> usize {
        self.levels.iter().map(|s| s.words()).sum()
    }
}

/// A dyadic multi-level hash sketch of one stream.
#[derive(Debug, Clone)]
pub struct DyadicHashSketch {
    schema: Arc<DyadicSchema>,
    sketches: Vec<HashSketch>,
}

impl DyadicHashSketch {
    /// An empty dyadic sketch under `schema`.
    pub fn new(schema: Arc<DyadicSchema>) -> Self {
        let sketches = (0..schema.num_levels())
            .map(|l| HashSketch::new(schema.level(l).clone()))
            .collect();
        Self { schema, sketches }
    }

    /// The schema.
    pub fn schema(&self) -> &Arc<DyadicSchema> {
        &self.schema
    }

    /// The level-0 sketch (the one join estimation runs on).
    pub fn base(&self) -> &HashSketch {
        &self.sketches[0]
    }

    /// Mutable level-0 sketch.
    pub fn base_mut(&mut self) -> &mut HashSketch {
        &mut self.sketches[0]
    }

    /// The sketch of level `ℓ`.
    pub fn level(&self, level: u32) -> &HashSketch {
        &self.sketches[level as usize]
    }

    /// Adds `w` copies of `v` at every level — `O(s1 · log N)`.
    #[inline]
    pub fn add_weighted(&mut self, v: u64, w: i64) {
        debug_assert!(self.schema.domain.contains(v));
        for (level, sk) in self.sketches.iter_mut().enumerate() {
            sk.add_weighted(v >> level, w);
        }
    }

    /// Applies a batch of updates: each level receives the whole batch
    /// through [`HashSketch::add_batch`], with values shifted right one
    /// more bit per level (level `ℓ` sketches interval indices `v >> ℓ`).
    /// One scratch copy of the batch is shifted in place between levels,
    /// so the per-level cost is the level-0 batch kernel plus a linear
    /// pass. Counters are bit-identical to the per-update path.
    pub fn add_batch(&mut self, batch: &[Update]) {
        if batch.is_empty() {
            return;
        }
        debug_assert!(batch.iter().all(|u| self.schema.domain.contains(u.value)));
        if stream_telemetry::ENABLED {
            static STATS: std::sync::OnceLock<(
                std::sync::Arc<stream_telemetry::Counter>,
                std::sync::Arc<stream_telemetry::Counter>,
            )> = std::sync::OnceLock::new();
            let (updates, bytes) = STATS.get_or_init(|| {
                let r = stream_telemetry::global();
                let labels = [("sketch", "dyadic")];
                (
                    r.counter_with("sketch_batch_updates_total", &labels),
                    r.counter_with("sketch_batch_bytes_total", &labels),
                )
            });
            // Counts the dyadic wrapper's own view (levels × tables per
            // update); the per-level HashSketch kernels additionally
            // report under sketch="hash".
            // ss-analyze: allow(a5-numeric-narrowing) -- usize -> u64 is lossless on every supported platform
            updates.add(batch.len() as u64);
            let touched = batch.len() * self.sketches.len() * self.schema.base().tables();
            // ss-analyze: allow(a5-numeric-narrowing) -- usize -> u64 is lossless on every supported platform
            bytes.add(8 * touched as u64);
        }
        let mut shifted: Vec<Update> = Vec::new();
        for (level, sk) in self.sketches.iter_mut().enumerate() {
            if level == 0 {
                sk.add_batch(batch);
            } else if level == 1 {
                shifted = batch.to_vec();
                for u in &mut shifted {
                    u.value >>= 1;
                }
                sk.add_batch(&shifted);
            } else {
                for u in &mut shifted {
                    u.value >>= 1;
                }
                sk.add_batch(&shifted);
            }
        }
    }

    /// Total counters across all levels.
    pub fn words(&self) -> usize {
        self.schema.words()
    }

    /// Counter image of every level (codec support).
    pub fn level_counters(&self) -> Vec<&[i64]> {
        self.sketches.iter().map(|s| s.counters()).collect()
    }

    /// Restores every level's counter image (codec support).
    ///
    /// # Panics
    /// If the level count or any level's length does not match the schema.
    pub fn restore_levels(&mut self, levels: &[Vec<i64>]) {
        assert_eq!(levels.len(), self.sketches.len(), "level count mismatch");
        for (sk, level) in self.sketches.iter_mut().zip(levels) {
            sk.overwrite_counters(level);
        }
    }

    /// Dyadic SKIMDENSE: finds dense values by hierarchical descent, skims
    /// them out of **every** level, and returns the extracted vector.
    ///
    /// `max_candidates` caps the per-level frontier (there can be at most
    /// `L1/T` truly dense intervals per level, but estimation noise can
    /// inflate the frontier; when the cap binds, the tallest estimates are
    /// kept — a documented completeness/time trade-off).
    pub fn skim_dense(&mut self, threshold: i64, max_candidates: usize) -> ExtractedDense {
        assert!(threshold >= 1, "threshold must be at least 1");
        assert!(max_candidates >= 1, "max_candidates must be at least 1");
        let top = self.schema.num_levels() - 1;
        // Prune interior levels against T/2 rather than T: an interval
        // containing a dense value has true mass ≥ T, so the halved cut-off
        // tolerates estimation noise up to T/2 without ever pruning a live
        // branch — at the price of a slightly wider frontier.
        let interior_threshold = (threshold / 2).max(1);
        // Frontier of candidate interval indices, starting from the single
        // top-level interval.
        let mut frontier: Vec<u64> = vec![0];
        for level in (0..top).rev() {
            let mut next: Vec<(u64, i64)> = Vec::with_capacity(frontier.len() * 2);
            let sk = &self.sketches[level as usize];
            let cut = if level == 0 {
                threshold
            } else {
                interior_threshold
            };
            for &idx in &frontier {
                let (c0, c1) = self.schema.domain.children(idx);
                for child in [c0, c1] {
                    let est = sk.point_estimate(child);
                    if est.abs() >= cut {
                        next.push((child, est));
                    }
                }
            }
            if next.len() > max_candidates {
                next.sort_unstable_by_key(|&(_, e)| std::cmp::Reverse(e.abs()));
                next.truncate(max_candidates);
            }
            frontier = next.into_iter().map(|(i, _)| i).collect();
            if frontier.is_empty() {
                return ExtractedDense::empty();
            }
        }
        // `frontier` now holds level-0 candidates (domain values).
        let dense = skim_dense_candidates(&mut self.sketches[0], &frontier, threshold);
        // Keep the upper levels consistent: remove the extracted mass there
        // too, so later skims (or continued streaming) see residuals only.
        for (v, est) in dense.iter() {
            for (level, sk) in self.sketches.iter_mut().enumerate().skip(1) {
                sk.add_weighted(v >> level, -est);
            }
        }
        dense
    }
}

impl StreamSink for DyadicHashSketch {
    #[inline]
    fn update(&mut self, u: Update) {
        self.add_weighted(u.value, u.weight);
    }

    fn update_batch(&mut self, batch: &[Update]) {
        self.add_batch(batch);
    }
}

impl LinearSynopsis for DyadicHashSketch {
    fn compatible(&self, other: &Self) -> bool {
        Arc::ptr_eq(&self.schema, &other.schema)
            || (self.schema.seed == other.schema.seed
                && self.schema.domain == other.schema.domain
                && self.schema.num_levels() == other.schema.num_levels()
                && self.schema.base().words() == other.schema.base().words())
    }

    fn merge_from(&mut self, other: &Self) {
        assert!(self.compatible(other), "incompatible dyadic sketches");
        for (a, b) in self.sketches.iter_mut().zip(&other.sketches) {
            a.merge_from(b);
        }
    }

    fn negate(&mut self) {
        for s in &mut self.sketches {
            s.negate();
        }
    }

    fn clear(&mut self) {
        for s in &mut self.sketches {
            s.clear();
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::skim::skim_dense_scan;
    use rand::rngs::StdRng;
    use rand::SeedableRng;
    use stream_model::gen::ZipfGenerator;
    use stream_model::FrequencyVector;

    fn zipf_updates(log2: u32, z: f64, n: usize, seed: u64) -> Vec<Update> {
        let d = Domain::with_log2(log2);
        let mut rng = StdRng::seed_from_u64(seed);
        ZipfGenerator::new(d, z, 0).generate(&mut rng, n)
    }

    #[test]
    fn level_frequencies_aggregate() {
        let d = Domain::with_log2(6);
        let schema = DyadicSchema::new(d, 5, 64, 1);
        let mut sk = DyadicHashSketch::new(schema);
        // Mass 100 at value 5 and 200 at value 7: same level-2 interval 1.
        sk.add_weighted(5, 100);
        sk.add_weighted(7, 200);
        assert_eq!(sk.level(0).point_estimate(5), 100);
        assert_eq!(sk.level(0).point_estimate(7), 200);
        // Level 2 interval 1 covers [4, 8).
        let est = sk.level(2).point_estimate(1);
        assert_eq!(est, 300);
        // Top level sees everything.
        let top = sk.schema().num_levels() - 1;
        assert_eq!(sk.level(top).point_estimate(0), 300);
    }

    #[test]
    fn dyadic_skim_agrees_with_naive_scan_away_from_the_threshold() {
        let d = Domain::with_log2(12);
        let updates = zipf_updates(12, 1.3, 40_000, 2);
        let schema = DyadicSchema::new(d, 7, 512, 3);
        let mut dy = DyadicHashSketch::new(schema.clone());
        for &u in &updates {
            dy.update(u);
        }
        // A scan sketch sharing level-0 randomness: its level-0 estimator
        // is the identical function, so the dyadic extraction is always a
        // *subset* of the scan's, differing only where interior-level
        // noise pruned a borderline branch.
        let mut scan = HashSketch::new(schema.base().clone());
        for &u in &updates {
            scan.update(u);
        }
        let t = 1000;
        let from_scan = skim_dense_scan(&mut scan, d, t);
        let from_dyadic = dy.skim_dense(t, 4096);
        assert!(!from_dyadic.is_empty());
        // dyadic ⊆ scan, with identical estimates on the intersection.
        for (v, est) in from_dyadic.iter() {
            assert_eq!(from_scan.get(v), est, "v={v}");
        }
        // Anything the dyadic descent missed must be borderline (< 2T).
        for (v, est) in from_scan.iter() {
            if from_dyadic.get(v) == 0 {
                assert!(est.abs() < 2 * t, "clearly dense v={v} est={est} missed");
            }
        }
    }

    #[test]
    fn skim_leaves_upper_levels_consistent() {
        let d = Domain::with_log2(8);
        let schema = DyadicSchema::new(d, 5, 128, 4);
        let mut dy = DyadicHashSketch::new(schema.clone());
        let updates = vec![
            Update::with_measure(17, 500),
            Update::with_measure(99, 700),
            Update::with_measure(200, 3),
        ];
        let mut fv = FrequencyVector::new(d);
        for &u in &updates {
            dy.update(u);
            fv.update(u);
        }
        let dense = dy.skim_dense(100, 1024);
        assert_eq!(dense.get(17), 500);
        assert_eq!(dense.get(99), 700);
        // After skimming, every level's estimate of the skimmed values'
        // intervals reflects only residual mass (value 200's 3 units).
        for level in 0..schema.num_levels() {
            let est = dy.level(level).point_estimate(200 >> level);
            assert!((est - 3).abs() <= 3, "level {level} est={est}");
        }
    }

    #[test]
    fn empty_dyadic_skims_nothing() {
        let d = Domain::with_log2(10);
        let mut dy = DyadicHashSketch::new(DyadicSchema::new(d, 3, 64, 5));
        assert!(dy.skim_dense(1, 64).is_empty());
    }

    #[test]
    fn candidate_cap_keeps_tallest() {
        let d = Domain::with_log2(10);
        let mut dy = DyadicHashSketch::new(DyadicSchema::new(d, 7, 256, 6));
        // 8 planted values; cap the frontier at 4 — the 4 tallest must
        // still surface because caps keep the largest estimates.
        let weights = [1000, 900, 800, 700, 50, 40, 30, 20];
        for (i, &w) in weights.iter().enumerate() {
            dy.add_weighted((i * 128) as u64, w);
        }
        let dense = dy.skim_dense(15, 4);
        let got: Vec<u64> = dense.iter().map(|(v, _)| v).collect();
        for v in [0u64, 128, 256, 384] {
            assert!(got.contains(&v), "missing {v}; got {got:?}");
        }
    }

    #[test]
    fn merge_negate_roundtrip() {
        let d = Domain::with_log2(6);
        let schema = DyadicSchema::new(d, 3, 32, 7);
        let mut a = DyadicHashSketch::new(schema.clone());
        for u in zipf_updates(6, 1.0, 500, 8) {
            a.update(u);
        }
        let mut b = a.clone();
        b.negate();
        a.merge_from(&b);
        for level in 0..schema.num_levels() {
            assert!(a.level(level).counters().iter().all(|&c| c == 0));
        }
    }

    #[test]
    fn update_cost_is_one_counter_per_table_per_level() {
        let d = Domain::with_log2(4);
        let schema = DyadicSchema::new(d, 2, 8, 9);
        let mut sk = DyadicHashSketch::new(schema.clone());
        sk.update(Update::insert(11));
        for level in 0..schema.num_levels() {
            let s = sk.level(level);
            let nonzero = s.counters().iter().filter(|&&c| c != 0).count();
            assert_eq!(nonzero, 2, "level {level}"); // one per table
        }
    }
}
