//! Wire codec for skimmed sketches.
//!
//! Extends the per-sketch codec of `stream-sketches` to the full
//! [`SkimmedSketch`]: strategy, domain, shape, seed, tracked L1 mass, and
//! the counters of every level (one level when scanning, `log2(N)+1` when
//! dyadic). A decoded sketch is bit-identical to the original — same
//! estimates, mergeable with compatible local sketches — so sites can ship
//! complete skimmed synopses, not just their level-0 projections.
//!
//! Format (little-endian):
//!
//! ```text
//! magic "SSKM" | version u16 | strategy u8 | domain_log2 u8
//! tables u32 | buckets u32 | seed u64 | l1_mass u64 | levels u16
//! per level: count u32, then count zigzag-varint counters
//! ```

use crate::estimator::{ExtractionStrategy, SkimmedSchema, SkimmedSketch};
use bytes::{Buf, BufMut, Bytes, BytesMut};
use std::sync::Arc;

const MAGIC: &[u8; 4] = b"SSKM";
const VERSION: u16 = 1;

/// Decoding errors.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum SkimCodecError {
    /// Header magic mismatch.
    BadMagic,
    /// Unsupported version.
    BadVersion(u16),
    /// Unknown strategy tag.
    BadStrategy(u8),
    /// Buffer ended early or malformed varint.
    Truncated,
    /// Level shape did not match the declared schema.
    ShapeMismatch,
}

impl std::fmt::Display for SkimCodecError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            SkimCodecError::BadMagic => write!(f, "bad skimmed-sketch magic"),
            SkimCodecError::BadVersion(v) => write!(f, "unsupported version {v}"),
            SkimCodecError::BadStrategy(s) => write!(f, "unknown strategy tag {s}"),
            SkimCodecError::Truncated => write!(f, "buffer truncated"),
            SkimCodecError::ShapeMismatch => write!(f, "level shape mismatch"),
        }
    }
}

impl std::error::Error for SkimCodecError {}

fn put_varint(buf: &mut BytesMut, mut x: u64) {
    loop {
        // ss-analyze: allow(a5-numeric-narrowing) -- masked to 7 bits, fits u8 by construction
        let byte = (x & 0x7F) as u8;
        x >>= 7;
        if x == 0 {
            buf.put_u8(byte);
            return;
        }
        buf.put_u8(byte | 0x80);
    }
}

fn get_varint(buf: &mut Bytes) -> Result<u64, SkimCodecError> {
    let mut x = 0u64;
    for shift in (0..64).step_by(7) {
        if !buf.has_remaining() {
            return Err(SkimCodecError::Truncated);
        }
        let byte = buf.get_u8();
        x |= u64::from(byte & 0x7F) << shift;
        if byte & 0x80 == 0 {
            return Ok(x);
        }
    }
    Err(SkimCodecError::Truncated)
}

#[inline]
fn zigzag(w: i64) -> u64 {
    // ss-analyze: allow(a5-numeric-narrowing) -- deliberate two's-complement reinterpretation; zigzag is a bijection on the full 64-bit range
    ((w << 1) ^ (w >> 63)) as u64
}

#[inline]
fn unzigzag(z: u64) -> i64 {
    // ss-analyze: allow(a5-numeric-narrowing) -- inverse of the zigzag bijection; both casts reinterpret bits on purpose
    ((z >> 1) as i64) ^ -((z & 1) as i64)
}

/// Encodes a skimmed sketch into a self-describing buffer.
pub fn encode_skimmed(sk: &SkimmedSketch) -> Bytes {
    let schema = sk.schema();
    let levels = sk.level_counters();
    let mut buf = BytesMut::with_capacity(40 + levels.iter().map(|l| l.len() * 2).sum::<usize>());
    buf.put_slice(MAGIC);
    buf.put_u16_le(VERSION);
    buf.put_u8(match schema.strategy() {
        ExtractionStrategy::NaiveScan => 0,
        ExtractionStrategy::Dyadic => 1,
    });
    // ss-analyze: allow(a5-numeric-narrowing) -- `log2_size() <= 64` by `Domain`'s invariant, fits u8
    buf.put_u8(schema.domain().log2_size() as u8);
    // ss-analyze: allow(a5-numeric-narrowing) -- header fields are u32 by format; a schema with 2^32 tables or buckets is not constructible in memory
    buf.put_u32_le(schema.base().tables() as u32);
    // ss-analyze: allow(a5-numeric-narrowing) -- same u32 format bound as `tables`
    buf.put_u32_le(schema.base().buckets() as u32);
    buf.put_u64_le(schema.seed());
    buf.put_u64_le(sk.l1_mass());
    // ss-analyze: allow(a5-numeric-narrowing) -- at most `log2(domain)+1 <= 65` levels, fits u16
    buf.put_u16_le(levels.len() as u16);
    for level in levels {
        // ss-analyze: allow(a5-numeric-narrowing) -- per-level counter count is tables*buckets, already bounded by the u32 header fields above
        buf.put_u32_le(level.len() as u32);
        for &c in level {
            put_varint(&mut buf, zigzag(c));
        }
    }
    buf.freeze()
}

/// Decodes a skimmed sketch, reconstructing the schema from the header.
pub fn decode_skimmed(mut buf: Bytes) -> Result<SkimmedSketch, SkimCodecError> {
    if buf.remaining() < 34 {
        return Err(SkimCodecError::Truncated);
    }
    let mut magic = [0u8; 4];
    buf.copy_to_slice(&mut magic);
    if &magic != MAGIC {
        return Err(SkimCodecError::BadMagic);
    }
    let version = buf.get_u16_le();
    if version != VERSION {
        return Err(SkimCodecError::BadVersion(version));
    }
    let strategy = match buf.get_u8() {
        0 => ExtractionStrategy::NaiveScan,
        1 => ExtractionStrategy::Dyadic,
        s => return Err(SkimCodecError::BadStrategy(s)),
    };
    let log2 = u32::from(buf.get_u8());
    let tables = buf.get_u32_le() as usize;
    let buckets = buf.get_u32_le() as usize;
    let seed = buf.get_u64_le();
    let l1_mass = buf.get_u64_le();
    let level_count = buf.get_u16_le() as usize;

    let domain = stream_model::Domain::with_log2(log2);
    let schema: Arc<SkimmedSchema> = match strategy {
        ExtractionStrategy::NaiveScan => SkimmedSchema::scanning(domain, tables, buckets, seed),
        ExtractionStrategy::Dyadic => SkimmedSchema::dyadic(domain, tables, buckets, seed),
    };
    let mut sk = SkimmedSketch::new(schema);
    let expected = sk.level_counters();
    if expected.len() != level_count {
        return Err(SkimCodecError::ShapeMismatch);
    }
    let shapes: Vec<usize> = expected.iter().map(|l| l.len()).collect();
    let mut levels: Vec<Vec<i64>> = Vec::with_capacity(level_count);
    for &want in &shapes {
        if buf.remaining() < 4 {
            return Err(SkimCodecError::Truncated);
        }
        let count = buf.get_u32_le() as usize;
        if count != want {
            return Err(SkimCodecError::ShapeMismatch);
        }
        let mut counters = Vec::with_capacity(count);
        for _ in 0..count {
            counters.push(unzigzag(get_varint(&mut buf)?));
        }
        levels.push(counters);
    }
    sk.restore(levels, l1_mass);
    Ok(sk)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::estimator::{estimate_join, EstimatorConfig};
    use rand::rngs::StdRng;
    use rand::SeedableRng;
    use stream_model::gen::ZipfGenerator;
    use stream_model::update::StreamSink;
    use stream_model::Domain;
    use stream_sketches::LinearSynopsis;

    fn built(schema: &Arc<SkimmedSchema>, seed: u64, n: usize) -> SkimmedSketch {
        let mut sk = SkimmedSketch::new(schema.clone());
        let mut rng = StdRng::seed_from_u64(seed);
        for u in ZipfGenerator::new(schema.domain(), 1.1, 0).generate(&mut rng, n) {
            sk.update(u);
        }
        sk
    }

    #[test]
    fn scanning_round_trip_is_bit_exact() {
        let schema = SkimmedSchema::scanning(Domain::with_log2(10), 5, 128, 7);
        let sk = built(&schema, 1, 10_000);
        let back = decode_skimmed(encode_skimmed(&sk)).unwrap();
        assert_eq!(back.base().counters(), sk.base().counters());
        assert_eq!(back.l1_mass(), sk.l1_mass());
        assert!(back.compatible(&sk));
    }

    #[test]
    fn dyadic_round_trip_restores_every_level() {
        let schema = SkimmedSchema::dyadic(Domain::with_log2(8), 3, 64, 9);
        let sk = built(&schema, 2, 5_000);
        let back = decode_skimmed(encode_skimmed(&sk)).unwrap();
        assert_eq!(back.level_counters(), sk.level_counters());
        // Skimming behaves identically post-decode.
        let mut a = sk.clone();
        let mut b = back.clone();
        assert_eq!(a.skim(100, 1024), b.skim(100, 1024));
    }

    #[test]
    fn decoded_sketches_estimate_joins_identically() {
        let schema = SkimmedSchema::scanning(Domain::with_log2(10), 5, 128, 11);
        let sf = built(&schema, 3, 20_000);
        let sg = built(&schema, 4, 20_000);
        let cfg = EstimatorConfig::default();
        let before = estimate_join(&sf, &sg, &cfg);
        let sf2 = decode_skimmed(encode_skimmed(&sf)).unwrap();
        let sg2 = decode_skimmed(encode_skimmed(&sg)).unwrap();
        let after = estimate_join(&sf2, &sg2, &cfg);
        assert_eq!(before, after);
        // And across the wire boundary: decoded joins with original.
        let mixed = estimate_join(&sf2, &sg, &cfg);
        assert_eq!(before, mixed);
    }

    #[test]
    fn rejects_corruption() {
        let schema = SkimmedSchema::scanning(Domain::with_log2(6), 2, 16, 1);
        let sk = SkimmedSketch::new(schema);
        let good = encode_skimmed(&sk);
        let mut bad = good.to_vec();
        bad[0] = b'Z';
        assert_eq!(
            decode_skimmed(Bytes::from(bad)).unwrap_err(),
            SkimCodecError::BadMagic
        );
        let cut = Bytes::from(good[..good.len() - 1].to_vec());
        assert_eq!(decode_skimmed(cut).unwrap_err(), SkimCodecError::Truncated);
        let mut badstrat = good.to_vec();
        badstrat[6] = 9;
        assert_eq!(
            decode_skimmed(Bytes::from(badstrat)).unwrap_err(),
            SkimCodecError::BadStrategy(9)
        );
    }
}
