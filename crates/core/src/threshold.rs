//! Dense-frequency thresholds for SKIMDENSE.
//!
//! SKIMDENSE extracts every value whose estimated frequency clears a
//! threshold `T`. The paper's analysis pins `T = Θ(n/√b)`: CountSketch
//! point estimates are accurate to `Δ = O(√(F₂ᵣₑₛ/b)) ≤ O(n/√b)`, so
//! anything at least a couple of `Δ`s tall is reliably detected, and after
//! skimming every residual frequency sits below `T` w.h.p. (Thm 4) —
//! which is what caps the residual self-join sizes at `n²/√b` and buys the
//! square-root space improvement.
//!
//! Two computable policies are provided:
//!
//! * [`ThresholdPolicy::WorstCase`] — `T = c·n/√b` with `n` the stream's
//!   L1 mass; the distribution-free bound the theorems use.
//! * [`ThresholdPolicy::Adaptive`] — `T = c·√(F̂₂/b)` with `F̂₂`
//!   self-estimated from the sketch being skimmed. On skewed data
//!   `√(F₂) ≪ n`, so this skims deeper and is the better default; the
//!   `ablation_threshold` bench quantifies the gap.

use stream_sketches::HashSketch;

/// How SKIMDENSE chooses its dense/sparse cut-off.
#[derive(Debug, Clone, Copy, PartialEq)]
pub enum ThresholdPolicy {
    /// `T = max(1, ⌈factor · n / √b⌉)` where `n` is the L1 mass tracked by
    /// the sketch. Distribution-free (the theorems' setting).
    WorstCase {
        /// Multiplier `c` on `n/√b`; the analysis wants a small constant.
        factor: f64,
    },
    /// `T = max(1, ⌈factor · √(F̂₂ / b)⌉)` with `F̂₂` the sketch's own
    /// self-join estimate — a tighter, data-dependent `Δ` proxy.
    Adaptive {
        /// Multiplier `c` on the estimated per-bucket noise `√(F̂₂/b)`.
        factor: f64,
    },
    /// A fixed absolute threshold (tests, worked examples).
    Fixed(i64),
}

impl Default for ThresholdPolicy {
    /// Adaptive with `c = 3`: comfortably above the estimation noise
    /// (CountSketch concentrates within ~`√(F₂/b)`) while skimming
    /// aggressively enough to flatten Zipf heads.
    fn default() -> Self {
        ThresholdPolicy::Adaptive { factor: 3.0 }
    }
}

impl ThresholdPolicy {
    /// Computes the threshold for skimming `sketch`, whose stream carries
    /// `l1` total absolute mass.
    pub fn threshold(&self, sketch: &HashSketch, l1: u64) -> i64 {
        let b = sketch.schema().buckets() as f64;
        let t = match *self {
            ThresholdPolicy::WorstCase { factor } => {
                assert!(factor > 0.0, "factor must be positive");
                factor * l1 as f64 / b.sqrt()
            }
            ThresholdPolicy::Adaptive { factor } => {
                assert!(factor > 0.0, "factor must be positive");
                let f2 = sketch.self_join_estimate().max(0.0);
                factor * (f2 / b).sqrt()
            }
            ThresholdPolicy::Fixed(t) => return t.max(1),
        };
        (t.ceil() as i64).max(1)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use stream_model::update::StreamSink;
    use stream_model::Update;
    use stream_sketches::HashSketchSchema;

    fn sketch_with(counts: &[(u64, i64)]) -> HashSketch {
        let schema = HashSketchSchema::new(5, 100, 42);
        let mut sk = HashSketch::new(schema);
        for &(v, w) in counts {
            sk.update(Update::with_measure(v, w));
        }
        sk
    }

    #[test]
    fn fixed_is_clamped_to_one() {
        let sk = sketch_with(&[]);
        assert_eq!(ThresholdPolicy::Fixed(0).threshold(&sk, 0), 1);
        assert_eq!(ThresholdPolicy::Fixed(-5).threshold(&sk, 0), 1);
        assert_eq!(ThresholdPolicy::Fixed(17).threshold(&sk, 0), 17);
    }

    #[test]
    fn worst_case_scales_with_l1_over_sqrt_b() {
        let sk = sketch_with(&[]);
        // b = 100 → √b = 10; n = 1000, c = 1 → T = 100.
        let t = ThresholdPolicy::WorstCase { factor: 1.0 }.threshold(&sk, 1000);
        assert_eq!(t, 100);
        let t2 = ThresholdPolicy::WorstCase { factor: 2.0 }.threshold(&sk, 1000);
        assert_eq!(t2, 200);
    }

    #[test]
    fn adaptive_tracks_f2() {
        // One value of weight 1000: F2 = 1e6, b = 100 → √(F2/b) = 100.
        let sk = sketch_with(&[(7, 1000)]);
        let t = ThresholdPolicy::Adaptive { factor: 1.0 }.threshold(&sk, 1000);
        assert!((90..=110).contains(&t), "t={t}");
    }

    #[test]
    fn adaptive_beats_worst_case_on_skew() {
        // Skewed stream: F2 ≪ n², so the adaptive threshold must come out
        // far below the worst-case one at equal mass.
        let spread: Vec<(u64, i64)> = (0..900).map(|v| (v, 1)).collect();
        let mut all = vec![(1000u64, 100i64)];
        all.extend(spread);
        let sk = sketch_with(&all);
        let l1 = 1000u64;
        let wc = ThresholdPolicy::WorstCase { factor: 2.0 }.threshold(&sk, l1);
        let ad = ThresholdPolicy::Adaptive { factor: 2.0 }.threshold(&sk, l1);
        assert!(ad < wc, "adaptive {ad} should be below worst-case {wc}");
    }

    #[test]
    fn empty_sketch_thresholds_to_one() {
        let sk = sketch_with(&[]);
        assert_eq!(
            ThresholdPolicy::Adaptive { factor: 3.0 }.threshold(&sk, 0),
            1
        );
        assert_eq!(
            ThresholdPolicy::WorstCase { factor: 1.0 }.threshold(&sk, 0),
            1
        );
    }
}
