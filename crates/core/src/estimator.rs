//! ESTSKIMJOINSIZE — the skimmed-sketch join-size estimator (Fig. 4).
//!
//! [`SkimmedSketch`] is the user-facing synopsis: the hash sketch of §4.1
//! plus (optionally) the dyadic acceleration levels of §4.2. Join
//! estimation proceeds exactly as in the paper:
//!
//! 1. **Skim** both sketches: extract the dense vectors `f̂`, `ĝ` and leave
//!    skimmed sketches summarizing the residual (sparse) components.
//! 2. Decompose `f·g = f̂·ĝ + f̂·gₛ + fₛ·ĝ + fₛ·gₛ`:
//!    * dense⋈dense — **exact** sort-merge over the extracted vectors;
//!    * dense⋈sparse (both directions) — per table `i`, probe the other
//!      stream's skimmed counters at the dense values
//!      (`Σ_v f̂(v)·ξᵢ(v)·C[i][hᵢ(v)]`), median over tables
//!      (ESTSUBJOINSIZE);
//!    * sparse⋈sparse — per table, the bucket-wise counter inner product,
//!      median over tables.
//! 3. Sum the four sub-join estimates.
//!
//! Because every residual frequency is below the threshold `T ≈ n/√b`
//! after skimming, the sub-join error terms are `O(n²/ b^{...})` — giving
//! the estimator its `O(√(SJ·SJ)/ε... )` ≈ square-root space advantage over
//! basic AGMS and matching the join-size space lower bound of \[4\].

use crate::dyadic::{DyadicHashSketch, DyadicSchema};
use crate::extracted::ExtractedDense;
use crate::skim::skim_dense_scan;
use crate::threshold::ThresholdPolicy;
use std::sync::Arc;
use stream_model::metrics::median_f64;
use stream_model::update::{StreamSink, Update};
use stream_model::Domain;
use stream_sketches::{HashSketch, HashSketchSchema, LinearSynopsis};

/// How SKIMDENSE locates dense values at estimation time.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum ExtractionStrategy {
    /// Scan the full domain — `O(N·s1)` extraction, no extra space.
    NaiveScan,
    /// Maintain dyadic levels — `O(s1·log N)` per update,
    /// `O(dense·log N)` extraction.
    Dyadic,
}

/// Shared configuration + randomness for a family of skimmed sketches.
///
/// As everywhere in this workspace, the `F` and `G` sketches of a join must
/// be built from the *same* `Arc<SkimmedSchema>`.
#[derive(Debug)]
pub struct SkimmedSchema {
    domain: Domain,
    strategy: ExtractionStrategy,
    /// Level-0 schema (always present; the join runs on it).
    base: Arc<HashSketchSchema>,
    /// All-levels schema when `strategy == Dyadic`.
    dyadic: Option<Arc<DyadicSchema>>,
}

impl SkimmedSchema {
    /// Schema with `tables` (= `s1`) hash tables of `buckets` (= `b`)
    /// counters, using the naive full-domain scan for extraction.
    pub fn scanning(domain: Domain, tables: usize, buckets: usize, seed: u64) -> Arc<Self> {
        Arc::new(Self {
            domain,
            strategy: ExtractionStrategy::NaiveScan,
            base: HashSketchSchema::new(tables, buckets, seed),
            dyadic: None,
        })
    }

    /// Schema with dyadic acceleration levels.
    pub fn dyadic(domain: Domain, tables: usize, buckets: usize, seed: u64) -> Arc<Self> {
        let dy = DyadicSchema::new(domain, tables, buckets, seed);
        Arc::new(Self {
            domain,
            strategy: ExtractionStrategy::Dyadic,
            base: dy.base().clone(),
            dyadic: Some(dy),
        })
    }

    /// The stream domain.
    pub fn domain(&self) -> Domain {
        self.domain
    }

    /// The extraction strategy.
    pub fn strategy(&self) -> ExtractionStrategy {
        self.strategy
    }

    /// The level-0 hash-sketch schema.
    pub fn base(&self) -> &Arc<HashSketchSchema> {
        &self.base
    }

    /// The root seed the whole schema was derived from (the value to pass
    /// back to `scanning`/`dyadic` to reconstruct identical hash
    /// functions).
    pub fn seed(&self) -> u64 {
        match &self.dyadic {
            Some(dy) => dy.seed(),
            None => self.base.seed(),
        }
    }

    /// Synopsis size in words (all levels).
    pub fn words(&self) -> usize {
        match &self.dyadic {
            Some(dy) => dy.words(),
            None => self.base.words(),
        }
    }
}

/// The skimmed-sketch synopsis of one stream.
#[derive(Debug, Clone)]
pub struct SkimmedSketch {
    schema: Arc<SkimmedSchema>,
    /// Level-0 sketch when scanning; `None` when dyadic (lives inside
    /// `dyadic` as level 0).
    scan: Option<HashSketch>,
    dyadic: Option<DyadicHashSketch>,
    /// Total absolute update mass seen (the `n` of the worst-case
    /// threshold).
    l1_mass: u64,
}

impl SkimmedSketch {
    /// An empty sketch under `schema`.
    pub fn new(schema: Arc<SkimmedSchema>) -> Self {
        let (scan, dyadic) = match schema.strategy {
            ExtractionStrategy::NaiveScan => (Some(HashSketch::new(schema.base.clone())), None),
            ExtractionStrategy::Dyadic => (
                None,
                Some(DyadicHashSketch::new(
                    // ss-analyze: allow(a10-reachable-panic) -- Dyadic strategy implies a dyadic schema: SkimmedSchema constructors populate it
                    schema.dyadic.as_ref().expect("dyadic schema").clone(),
                )),
            ),
        };
        Self {
            schema,
            scan,
            dyadic,
            l1_mass: 0,
        }
    }

    /// The schema.
    pub fn schema(&self) -> &Arc<SkimmedSchema> {
        &self.schema
    }

    /// The level-0 hash sketch.
    pub fn base(&self) -> &HashSketch {
        match (&self.scan, &self.dyadic) {
            (Some(s), _) => s,
            (None, Some(d)) => d.base(),
            // ss-analyze: allow(a10-reachable-panic) -- new() sets exactly one of scan/dyadic; the (None, None) shape is unconstructible
            _ => unreachable!("one representation always present"),
        }
    }

    /// Total absolute mass `Σ|w|` ingested.
    pub fn l1_mass(&self) -> u64 {
        self.l1_mass
    }

    /// Synopsis size in words.
    pub fn words(&self) -> usize {
        self.schema.words()
    }

    /// Adds `w` copies of value `v`.
    #[inline]
    pub fn add_weighted(&mut self, v: u64, w: i64) {
        debug_assert!(self.schema.domain.contains(v));
        self.l1_mass = self.l1_mass.saturating_add(w.unsigned_abs());
        match (&mut self.scan, &mut self.dyadic) {
            (Some(s), _) => s.add_weighted(v, w),
            (None, Some(d)) => d.add_weighted(v, w),
            // ss-analyze: allow(a10-reachable-panic) -- new() sets exactly one of scan/dyadic; the (None, None) shape is unconstructible
            _ => unreachable!(),
        }
    }

    /// Applies a batch of updates through the inner sketch's batch kernel,
    /// accumulating the tracked L1 mass exactly as the per-update path does.
    pub fn add_batch(&mut self, batch: &[Update]) {
        for u in batch {
            debug_assert!(self.schema.domain.contains(u.value));
            self.l1_mass = self.l1_mass.saturating_add(u.weight.unsigned_abs());
        }
        match (&mut self.scan, &mut self.dyadic) {
            (Some(s), _) => s.add_batch(batch),
            (None, Some(d)) => d.add_batch(batch),
            _ => unreachable!(),
        }
    }

    /// Bulk construction from a frequency vector (identical to replay).
    pub fn from_frequencies<I>(schema: Arc<SkimmedSchema>, frequencies: I) -> Self
    where
        I: IntoIterator<Item = (u64, i64)>,
    {
        let mut sk = Self::new(schema);
        for (v, f) in frequencies {
            if f != 0 {
                sk.add_weighted(v, f);
            }
        }
        sk
    }

    /// Counter image of every maintained level: one slice when scanning,
    /// `log2(N)+1` when dyadic (codec support).
    pub fn level_counters(&self) -> Vec<&[i64]> {
        match (&self.scan, &self.dyadic) {
            (Some(s), _) => vec![s.counters()],
            (None, Some(d)) => d.level_counters(),
            // ss-analyze: allow(a10-reachable-panic) -- new() sets exactly one of scan/dyadic; the (None, None) shape is unconstructible
            _ => unreachable!(),
        }
    }

    /// Restores counter images and the tracked L1 mass (codec support).
    ///
    /// # Panics
    /// If the level count or shapes do not match this sketch's schema.
    pub fn restore(&mut self, levels: Vec<Vec<i64>>, l1_mass: u64) {
        self.l1_mass = l1_mass;
        match (&mut self.scan, &mut self.dyadic) {
            (Some(s), _) => {
                assert_eq!(levels.len(), 1, "scanning sketch has one level");
                s.overwrite_counters(&levels[0]);
            }
            (None, Some(d)) => d.restore_levels(&levels),
            // ss-analyze: allow(a10-reachable-panic) -- new() sets exactly one of scan/dyadic; the (None, None) shape is unconstructible
            _ => unreachable!(),
        }
    }

    /// Subtracts `other`'s contents (stream retraction): counters are
    /// subtracted and the tracked L1 mass decreases accordingly. This is
    /// the eviction primitive of the windowed estimator — unlike the
    /// generic `subtract_from` (which models *concatenating* an inverted
    /// stream and therefore adds mass), retraction removes updates that
    /// were previously counted.
    pub fn retract(&mut self, other: &Self) {
        assert!(self.compatible(other), "incompatible skimmed sketches");
        self.l1_mass = self.l1_mass.saturating_sub(other.l1_mass);
        match (&mut self.scan, &other.scan, &mut self.dyadic, &other.dyadic) {
            (Some(a), Some(b), _, _) => a.subtract_from(b),
            (None, None, Some(a), Some(b)) => a.subtract_from(b),
            _ => unreachable!("compatible sketches share representation"),
        }
    }

    /// Runs SKIMDENSE in place: extracts and removes the dense vector,
    /// returning it. Mostly used through [`estimate_join`], which operates
    /// on clones and leaves the synopsis untouched.
    pub fn skim(&mut self, threshold: i64, max_candidates: usize) -> ExtractedDense {
        match (&mut self.scan, &mut self.dyadic) {
            (Some(s), _) => skim_dense_scan(s, self.schema.domain, threshold),
            (None, Some(d)) => d.skim_dense(threshold, max_candidates),
            // ss-analyze: allow(a10-reachable-panic) -- new() sets exactly one of scan/dyadic; the (None, None) shape is unconstructible
            _ => unreachable!(),
        }
    }
}

impl StreamSink for SkimmedSketch {
    #[inline]
    fn update(&mut self, u: Update) {
        self.add_weighted(u.value, u.weight);
    }

    fn update_batch(&mut self, batch: &[Update]) {
        self.add_batch(batch);
    }
}

impl LinearSynopsis for SkimmedSketch {
    fn compatible(&self, other: &Self) -> bool {
        Arc::ptr_eq(&self.schema, &other.schema)
            || (self.schema.domain == other.schema.domain
                && self.schema.strategy == other.schema.strategy
                && self.schema.base.seed() == other.schema.base.seed()
                && self.schema.base.tables() == other.schema.base.tables()
                && self.schema.base.buckets() == other.schema.base.buckets())
    }

    fn merge_from(&mut self, other: &Self) {
        assert!(self.compatible(other), "incompatible skimmed sketches");
        self.l1_mass = self.l1_mass.saturating_add(other.l1_mass);
        match (&mut self.scan, &other.scan, &mut self.dyadic, &other.dyadic) {
            (Some(a), Some(b), _, _) => a.merge_from(b),
            (None, None, Some(a), Some(b)) => a.merge_from(b),
            _ => unreachable!("compatible sketches share representation"),
        }
    }

    fn negate(&mut self) {
        if let Some(s) = &mut self.scan {
            s.negate();
        }
        if let Some(d) = &mut self.dyadic {
            d.negate();
        }
    }

    fn clear(&mut self) {
        self.l1_mass = 0;
        if let Some(s) = &mut self.scan {
            s.clear();
        }
        if let Some(d) = &mut self.dyadic {
            d.clear();
        }
    }
}

/// Estimation-time knobs.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct EstimatorConfig {
    /// Dense/sparse threshold selection.
    pub policy: ThresholdPolicy,
    /// Frontier cap for the dyadic descent.
    pub max_candidates: usize,
}

impl Default for EstimatorConfig {
    fn default() -> Self {
        Self {
            policy: ThresholdPolicy::default(),
            max_candidates: 1 << 16,
        }
    }
}

/// The result of ESTSKIMJOINSIZE, with its full sub-join anatomy.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct JoinEstimate {
    /// The join-size estimate (sum of the four sub-joins).
    pub estimate: f64,
    /// `f̂·ĝ`, computed exactly.
    pub dense_dense: f64,
    /// Estimated `f̂·gₛ`.
    pub dense_sparse: f64,
    /// Estimated `fₛ·ĝ`.
    pub sparse_dense: f64,
    /// Estimated `fₛ·gₛ`.
    pub sparse_sparse: f64,
    /// Number of dense values skimmed from `F`.
    pub dense_f: usize,
    /// Number of dense values skimmed from `G`.
    pub dense_g: usize,
    /// Threshold used for `F`.
    pub threshold_f: i64,
    /// Threshold used for `G`.
    pub threshold_g: i64,
}

/// ESTSUBJOINSIZE (Fig. 4): estimates `Σ_v f̂(v)·g_res(v)` from the dense
/// vector of one stream and the *skimmed* hash sketch of the other. Per
/// table `i` the estimate is `Σ_v f̂(v)·ξᵢ(v)·C[i][hᵢ(v)]`; the median over
/// tables boosts confidence.
pub fn est_subjoin(dense: &ExtractedDense, skimmed: &HashSketch) -> f64 {
    if dense.is_empty() {
        return 0.0;
    }
    let tables = skimmed.schema().tables();
    let mut per_table: Vec<f64> = (0..tables)
        .map(|i| est_subjoin_in_table(dense, skimmed, i))
        .collect();
    median_f64(&mut per_table)
}

/// The single-table term of [`est_subjoin`]:
/// `Σ_v f̂(v)·ξᵢ(v)·C[i][hᵢ(v)]` for table `i` — exposed so the
/// confidence-interval estimator can form per-table totals.
pub fn est_subjoin_in_table(dense: &ExtractedDense, skimmed: &HashSketch, table: usize) -> f64 {
    dense
        .iter()
        .map(|(v, fh)| fh as i128 * skimmed.point_estimate_in_table(table, v) as i128)
        .sum::<i128>() as f64
}

/// ESTSKIMJOINSIZE (Fig. 4): estimates `COUNT(F ⋈ G)` from two skimmed
/// sketches built under the same schema. Non-destructive: operates on
/// clones, so the synopses keep streaming afterwards.
///
/// # Panics
/// If the sketches were built under different schemas.
pub fn estimate_join(f: &SkimmedSketch, g: &SkimmedSketch, cfg: &EstimatorConfig) -> JoinEstimate {
    assert!(
        f.compatible(g),
        "join estimation requires sketches under the same schema"
    );
    // Telemetry handles (None when compiled out; every span below is a
    // no-op then and the gauge updates fold away).
    let telem = stream_telemetry::ENABLED.then(crate::telem::skim_metrics);
    let mut f = f.clone();
    let mut g = g.clone();
    // Step 1: skim both sketches.
    let tf = cfg.policy.threshold(f.base(), f.l1_mass);
    let tg = cfg.policy.threshold(g.base(), g.l1_mass);
    let dense_f = {
        let _span = telem.map(|m| m.skim_f.start_span());
        f.skim(tf, cfg.max_candidates)
    };
    let dense_g = {
        let _span = telem.map(|m| m.skim_g.start_span());
        g.skim(tg, cfg.max_candidates)
    };
    // Step 2: the four sub-joins.
    let dd = {
        let _span = telem.map(|m| m.dense_dense.start_span());
        dense_f.dot(&dense_g) as f64
    };
    let ds = {
        let _span = telem.map(|m| m.dense_sparse.start_span());
        est_subjoin(&dense_f, g.base())
    };
    let sd = {
        let _span = telem.map(|m| m.sparse_dense.start_span());
        est_subjoin(&dense_g, f.base())
    };
    let ss = {
        let _span = telem.map(|m| m.sparse_sparse.start_span());
        f.base().join_estimate(g.base())
    };
    if let Some(m) = telem {
        m.estimates.inc();
        // ss-analyze: allow(a5-numeric-narrowing) -- dense-value counts are bounded by the skim threshold, far below i64::MAX
        m.dense_f.set(dense_f.len() as i64);
        // ss-analyze: allow(a5-numeric-narrowing) -- same bound as `dense_f`
        m.dense_g.set(dense_g.len() as i64);
        // Residual L2 norm of the *skimmed* sketches — how much sparse
        // mass the sub-join estimators had to contend with (Thm 3's
        // error scales with it).
        m.residual_f
            .set(f.base().self_join_estimate().max(0.0).sqrt());
        m.residual_g
            .set(g.base().self_join_estimate().max(0.0).sqrt());
    }
    JoinEstimate {
        estimate: dd + ds + sd + ss,
        dense_dense: dd,
        dense_sparse: ds,
        sparse_dense: sd,
        sparse_sparse: ss,
        dense_f: dense_f.len(),
        dense_g: dense_g.len(),
        threshold_f: tf,
        threshold_g: tg,
    }
}

/// Skimmed self-join (second-moment) estimation:
/// `F₂ ≈ f̂·f̂ (exact) + 2·f̂·fₛ (estimated) + fₛ·fₛ (estimated)`.
pub fn estimate_self_join(f: &SkimmedSketch, cfg: &EstimatorConfig) -> f64 {
    let mut f = f.clone();
    let t = cfg.policy.threshold(f.base(), f.l1_mass);
    let dense = f.skim(t, cfg.max_candidates);
    let dd = dense.self_join() as f64;
    let ds = est_subjoin(&dense, f.base());
    let ss = f.base().self_join_estimate();
    dd + 2.0 * ds + ss
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::StdRng;
    use rand::SeedableRng;
    use stream_model::gen::ZipfGenerator;
    use stream_model::metrics::ratio_error;
    use stream_model::FrequencyVector;

    fn zipf_pair(
        log2: u32,
        z: f64,
        shift: u64,
        n: usize,
        seed: u64,
    ) -> (FrequencyVector, FrequencyVector, Vec<Update>, Vec<Update>) {
        let d = Domain::with_log2(log2);
        let mut rng = StdRng::seed_from_u64(seed);
        let uf = ZipfGenerator::new(d, z, 0).generate(&mut rng, n);
        let ug = ZipfGenerator::new(d, z, shift).generate(&mut rng, n);
        let f = FrequencyVector::from_updates(d, uf.iter().copied());
        let g = FrequencyVector::from_updates(d, ug.iter().copied());
        (f, g, uf, ug)
    }

    fn build_pair(
        schema: &Arc<SkimmedSchema>,
        uf: &[Update],
        ug: &[Update],
    ) -> (SkimmedSketch, SkimmedSketch) {
        let mut sf = SkimmedSketch::new(schema.clone());
        let mut sg = SkimmedSketch::new(schema.clone());
        for &u in uf {
            sf.update(u);
        }
        for &u in ug {
            sg.update(u);
        }
        (sf, sg)
    }

    #[test]
    fn estimate_matches_truth_on_skewed_join() {
        let (f, g, uf, ug) = zipf_pair(14, 1.2, 100, 100_000, 1);
        let actual = f.join(&g) as f64;
        assert!(actual > 0.0);
        let schema = SkimmedSchema::scanning(Domain::with_log2(14), 7, 512, 7);
        let (sf, sg) = build_pair(&schema, &uf, &ug);
        let est = estimate_join(&sf, &sg, &EstimatorConfig::default());
        let err = ratio_error(est.estimate, actual);
        assert!(err < 0.15, "err={err} est={est:?} actual={actual}");
    }

    #[test]
    fn dyadic_strategy_matches_truth_too() {
        let (f, g, uf, ug) = zipf_pair(14, 1.2, 100, 100_000, 2);
        let actual = f.join(&g) as f64;
        let schema = SkimmedSchema::dyadic(Domain::with_log2(14), 7, 512, 9);
        let (sf, sg) = build_pair(&schema, &uf, &ug);
        let est = estimate_join(&sf, &sg, &EstimatorConfig::default());
        let err = ratio_error(est.estimate, actual);
        assert!(err < 0.15, "err={err} est={est:?}");
    }

    #[test]
    fn estimation_is_non_destructive() {
        let (_, _, uf, ug) = zipf_pair(10, 1.0, 10, 5_000, 3);
        let schema = SkimmedSchema::scanning(Domain::with_log2(10), 5, 128, 11);
        let (sf, sg) = build_pair(&schema, &uf, &ug);
        let before = sf.base().counters().to_vec();
        let e1 = estimate_join(&sf, &sg, &EstimatorConfig::default());
        assert_eq!(sf.base().counters(), &before[..]);
        let e2 = estimate_join(&sf, &sg, &EstimatorConfig::default());
        assert_eq!(e1, e2, "estimation must be deterministic and repeatable");
    }

    #[test]
    fn self_join_skim_estimate_tracks_f2() {
        let (f, _, uf, _) = zipf_pair(12, 1.5, 0, 50_000, 4);
        let actual = f.self_join() as f64;
        let schema = SkimmedSchema::scanning(Domain::with_log2(12), 7, 256, 13);
        let mut sf = SkimmedSketch::new(schema);
        for &u in &uf {
            sf.update(u);
        }
        let est = estimate_self_join(&sf, &EstimatorConfig::default());
        let err = ratio_error(est, actual);
        assert!(err < 0.1, "err={err} est={est} actual={actual}");
    }

    #[test]
    fn dense_dense_dominates_on_self_join_shaped_data() {
        // With shift 0 and high skew the join is driven by the two heads:
        // the exact dense⋈dense term should carry most of the estimate.
        let (_, _, uf, ug) = zipf_pair(12, 1.5, 0, 50_000, 5);
        let schema = SkimmedSchema::scanning(Domain::with_log2(12), 7, 256, 17);
        let (sf, sg) = build_pair(&schema, &uf, &ug);
        let est = estimate_join(&sf, &sg, &EstimatorConfig::default());
        assert!(
            est.dense_dense > 0.8 * est.estimate,
            "dd={} total={}",
            est.dense_dense,
            est.estimate
        );
        assert!(est.dense_f > 0 && est.dense_g > 0);
    }

    #[test]
    fn zero_mass_streams_estimate_zero() {
        let schema = SkimmedSchema::scanning(Domain::with_log2(8), 5, 64, 19);
        let sf = SkimmedSketch::new(schema.clone());
        let sg = SkimmedSketch::new(schema);
        let est = estimate_join(&sf, &sg, &EstimatorConfig::default());
        assert_eq!(est.estimate, 0.0);
        assert_eq!(est.dense_f, 0);
    }

    #[test]
    fn disjoint_streams_estimate_near_zero() {
        let d = Domain::with_log2(12);
        let schema = SkimmedSchema::scanning(d, 7, 256, 23);
        let mut sf = SkimmedSketch::new(schema.clone());
        let mut sg = SkimmedSketch::new(schema);
        // F lives on evens, G on odds: true join = 0.
        let mut rng = StdRng::seed_from_u64(6);
        let zipf = ZipfGenerator::new(d, 1.0, 0);
        for _ in 0..20_000 {
            sf.add_weighted(zipf.sample(&mut rng) & !1, 1);
            sg.add_weighted(zipf.sample(&mut rng) | 1, 1);
        }
        let est = estimate_join(&sf, &sg, &EstimatorConfig::default());
        // Additive error scale: n²/(b·…) ≈ comfortably below n.
        assert!(est.estimate.abs() < 100_000.0, "est={}", est.estimate);
    }

    #[test]
    fn deletes_are_handled() {
        // Stream F, then delete half of it; the estimate must track the
        // *post-delete* join.
        let d = Domain::with_log2(10);
        let (f0, g0, uf, ug) = zipf_pair(10, 1.3, 20, 40_000, 7);
        let schema = SkimmedSchema::scanning(d, 7, 256, 29);
        let (mut sf, sg) = build_pair(&schema, &uf, &ug);
        let mut f_after = f0.clone();
        for &u in uf.iter().take(uf.len() / 2) {
            sf.update(u.inverse());
            f_after.update(u.inverse());
        }
        let actual = f_after.join(&g0) as f64;
        let est = estimate_join(&sf, &sg, &EstimatorConfig::default());
        let err = ratio_error(est.estimate, actual);
        assert!(err < 0.25, "err={err} est={} actual={actual}", est.estimate);
    }

    #[test]
    #[should_panic(expected = "same schema")]
    fn cross_schema_estimation_panics() {
        let d = Domain::with_log2(6);
        let a = SkimmedSketch::new(SkimmedSchema::scanning(d, 3, 32, 1));
        let b = SkimmedSketch::new(SkimmedSchema::scanning(d, 3, 32, 2));
        let _ = estimate_join(&a, &b, &EstimatorConfig::default());
    }

    #[test]
    fn merge_then_estimate_equals_single_builder() {
        // Sharded ingestion: two halves merged must estimate identically
        // to one sketch fed everything.
        let (_, _, uf, ug) = zipf_pair(10, 1.0, 30, 10_000, 8);
        let schema = SkimmedSchema::scanning(Domain::with_log2(10), 5, 128, 31);
        let (mut sf_a, sg) = build_pair(&schema, &uf[..5_000], &ug);
        let mut sf_b = SkimmedSketch::new(schema.clone());
        for &u in &uf[5_000..] {
            sf_b.update(u);
        }
        sf_a.merge_from(&sf_b);
        let (sf_full, _) = build_pair(&schema, &uf, &[]);
        assert_eq!(sf_a.base().counters(), sf_full.base().counters());
        let cfg = EstimatorConfig::default();
        let merged = estimate_join(&sf_a, &sg, &cfg);
        let single = estimate_join(&sf_full, &sg, &cfg);
        assert_eq!(merged.estimate, single.estimate);
    }
}
