//! Analytical error accounting — the arithmetic of §3 and Example 1.
//!
//! These helpers compute, from *exact* frequency vectors, the worst-case
//! additive error bounds the paper derives for basic AGMS sketching versus
//! skimmed sketches at equal space, plus the space each method needs for a
//! target relative error. They power the `example1` harness/test (which
//! replays the paper's worked example) and give downstream users a
//! planning tool ("how many buckets do I need for 10% error on this
//! workload shape?").

use stream_model::FrequencyVector;

/// Maximum additive error of basic AGMS join estimation with `s2`
/// averaging columns (Theorem 2's deviation term):
/// `≈ √(2·SJ(F)·SJ(G)/s2)`.
pub fn agms_additive_error(sj_f: f64, sj_g: f64, s2: usize) -> f64 {
    assert!(s2 > 0, "s2 must be positive");
    (2.0 * sj_f * sj_g / s2 as f64).sqrt()
}

/// Space (in words) basic AGMS needs per row for additive error `ε·J`:
/// `s2 = 2·SJ(F)·SJ(G)/(ε·J)²`.
pub fn agms_words_for_error(sj_f: f64, sj_g: f64, join: f64, eps: f64) -> f64 {
    assert!(
        eps > 0.0 && join > 0.0,
        "need positive target error and join"
    );
    2.0 * sj_f * sj_g / (eps * join).powi(2)
}

/// The decomposition of a join into the paper's four sub-joins, given both
/// exact frequency vectors and a dense threshold `T`. Everything here is
/// exact arithmetic on the true vectors — it is the quantity the skimmed
/// estimator approximates, and the basis of Example 1.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct SkimDecomposition {
    /// The dense/sparse cut-off used.
    pub threshold: i64,
    /// Exact `f̂·ĝ`.
    pub dense_dense: i64,
    /// Exact `f̂·gₛ`.
    pub dense_sparse: i64,
    /// Exact `fₛ·ĝ`.
    pub sparse_dense: i64,
    /// Exact `fₛ·gₛ`.
    pub sparse_sparse: i64,
    /// Residual self-join of `F` after removing dense values.
    pub sj_f_sparse: i64,
    /// Residual self-join of `G` after removing dense values.
    pub sj_g_sparse: i64,
    /// Self-join of the dense part of `F`.
    pub sj_f_dense: i64,
    /// Self-join of the dense part of `G`.
    pub sj_g_dense: i64,
}

impl SkimDecomposition {
    /// Splits `f` and `g` at `threshold` and computes all sub-join sizes
    /// and residual self-joins exactly.
    pub fn compute(f: &FrequencyVector, g: &FrequencyVector, threshold: i64) -> Self {
        let (fd, fs) = f.split_at(threshold);
        let (gd, gs) = g.split_at(threshold);
        Self {
            threshold,
            dense_dense: fd.join(&gd),
            dense_sparse: fd.join(&gs),
            sparse_dense: fs.join(&gd),
            sparse_sparse: fs.join(&gs),
            sj_f_sparse: fs.self_join(),
            sj_g_sparse: gs.self_join(),
            sj_f_dense: fd.self_join(),
            sj_g_dense: gd.self_join(),
        }
    }

    /// Sum of the four sub-joins — must equal `f·g` exactly.
    pub fn total(&self) -> i64 {
        self.dense_dense + self.dense_sparse + self.sparse_dense + self.sparse_sparse
    }

    /// Worst-case additive error of the *skimmed* estimator at `s2`
    /// effective averaging width: the dense⋈dense term contributes zero,
    /// and each of the three estimated terms contributes its own AGMS-type
    /// deviation (§3's error budget).
    pub fn skimmed_additive_error(&self, s2: usize) -> f64 {
        let e_ds = agms_additive_error(self.sj_f_dense as f64, self.sj_g_sparse as f64, s2);
        let e_sd = agms_additive_error(self.sj_f_sparse as f64, self.sj_g_dense as f64, s2);
        let e_ss = agms_additive_error(self.sj_f_sparse as f64, self.sj_g_sparse as f64, s2);
        e_ds + e_sd + e_ss
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use stream_model::Domain;

    /// The worked example of §3 (Example 1): n = 100, two frequencies of
    /// 50 in each stream's head, ones elsewhere, threshold 10.
    fn example1() -> (FrequencyVector, FrequencyVector) {
        // f = (50, 50, 1, 1, ..., 1) on the first 2 values plus 50 ones;
        // g = (1, ..., 1, 50, 50) — heads on different values, overlapping
        // unit tails, domain 64.
        let d = Domain::with_log2(6);
        let mut fc = vec![0i64; 64];
        let mut gc = vec![0i64; 64];
        fc[0] = 50;
        fc[1] = 50;
        gc[62] = 50;
        gc[63] = 50;
        fc[2..52].fill(1);
        gc[12..62].fill(1);
        (
            FrequencyVector::from_counts(d, fc),
            FrequencyVector::from_counts(d, gc),
        )
    }

    #[test]
    fn decomposition_sums_to_join() {
        let (f, g) = example1();
        for t in [1, 2, 10, 50, 100] {
            let dec = SkimDecomposition::compute(&f, &g, t);
            assert_eq!(dec.total(), f.join(&g), "t={t}");
        }
    }

    #[test]
    fn example1_skimming_shrinks_the_error_bound_severalfold() {
        let (f, g) = example1();
        let s2 = 64;
        let basic = agms_additive_error(f.self_join() as f64, g.self_join() as f64, s2);
        let dec = SkimDecomposition::compute(&f, &g, 10);
        let skim = dec.skimmed_additive_error(s2);
        // The paper's example finds a >4× reduction; our variant of the
        // numbers lands in the same regime.
        assert!(
            skim * 3.0 < basic,
            "skim bound {skim} not well below basic bound {basic}"
        );
        // Dense heads fully captured at T = 10.
        assert_eq!(dec.sj_f_dense, 2 * 50 * 50);
        assert_eq!(dec.sj_f_sparse, 50);
    }

    #[test]
    fn space_for_error_matches_error_for_space() {
        // agms_words_for_error and agms_additive_error are inverses.
        let (sj_f, sj_g, join) = (1e6, 2e6, 5e4);
        let eps = 0.1;
        let words = agms_words_for_error(sj_f, sj_g, join, eps);
        let err = agms_additive_error(sj_f, sj_g, words.ceil() as usize);
        assert!(err <= eps * join * 1.01, "err={err} target={}", eps * join);
    }

    #[test]
    fn threshold_one_puts_everything_dense() {
        let (f, g) = example1();
        let dec = SkimDecomposition::compute(&f, &g, 1);
        assert_eq!(dec.dense_dense, f.join(&g));
        assert_eq!(dec.sparse_sparse, 0);
        assert_eq!(dec.skimmed_additive_error(64), 0.0);
    }

    #[test]
    fn huge_threshold_puts_everything_sparse() {
        let (f, g) = example1();
        let dec = SkimDecomposition::compute(&f, &g, 1000);
        assert_eq!(dec.sparse_sparse, f.join(&g));
        assert_eq!(dec.sj_f_dense, 0);
    }
}
