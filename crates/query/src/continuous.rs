//! Continuous queries: periodic re-estimation over live streams.
//!
//! The architecture of the paper's Fig. 1 answers a query *at any point in
//! time* from the maintained synopses. This module packages the common
//! deployment around that: a registered join query re-evaluated every
//! `period` processed records (estimation is non-destructive, so this is
//! just a scheduled call), producing a time series of estimates, with an
//! optional change detector that flags when consecutive estimates move by
//! more than a configured factor — the "interesting trends / anomalies"
//! use case the paper's introduction motivates.

use crate::engine::{Aggregate, JoinQueryEngine, Side};
use crate::record::{Op, Record};
use skimmed_sketch::{EstimatorConfig, SkimmedSchema};
use std::sync::Arc;

/// One point of the continuous-estimate time series.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct SeriesPoint {
    /// Records processed (both sides) when the estimate was taken.
    pub records_processed: u64,
    /// The aggregate estimate at that point.
    pub estimate: f64,
    /// Relative change from the previous point (0 for the first).
    pub relative_change: f64,
    /// Whether the change detector fired.
    pub alarm: bool,
}

/// A continuously evaluated join aggregate.
#[derive(Debug)]
pub struct ContinuousQuery {
    engine: JoinQueryEngine,
    aggregate: Aggregate,
    period: u64,
    /// Relative change that raises an alarm (`None` disables detection).
    alarm_threshold: Option<f64>,
    processed: u64,
    series: Vec<SeriesPoint>,
}

impl ContinuousQuery {
    /// Registers a continuous `aggregate` over streams sketched under
    /// `schema`, re-evaluated every `period` processed records.
    pub fn new(
        schema: Arc<SkimmedSchema>,
        config: EstimatorConfig,
        aggregate: Aggregate,
        period: u64,
    ) -> Self {
        assert!(period > 0, "period must be positive");
        Self {
            engine: JoinQueryEngine::new(schema, config),
            aggregate,
            period,
            alarm_threshold: None,
            processed: 0,
            series: Vec::new(),
        }
    }

    /// Enables the change detector at `threshold` relative movement
    /// between consecutive estimates (e.g. `0.5` = ±50%).
    pub fn with_alarm(mut self, threshold: f64) -> Self {
        assert!(threshold > 0.0, "alarm threshold must be positive");
        self.alarm_threshold = Some(threshold);
        self
    }

    /// Mutable access to the underlying engine (predicates etc.).
    pub fn engine_mut(&mut self) -> &mut JoinQueryEngine {
        &mut self.engine
    }

    /// Processes one record; returns the new series point if this record
    /// completed a period.
    pub fn process(&mut self, side: Side, op: Op, record: Record) -> Option<SeriesPoint> {
        self.engine.process(side, op, record);
        self.processed += 1;
        if self.processed.is_multiple_of(self.period) {
            Some(self.evaluate_now())
        } else {
            None
        }
    }

    /// Forces an evaluation outside the schedule and appends it to the
    /// series.
    pub fn evaluate_now(&mut self) -> SeriesPoint {
        let estimate = self.engine.answer(self.aggregate).value;
        let prev = self.series.last().map(|p| p.estimate);
        let relative_change = match prev {
            Some(p) if p.abs() > f64::EPSILON => (estimate - p) / p.abs(),
            _ => 0.0,
        };
        let alarm = self
            .alarm_threshold
            .map(|t| relative_change.abs() >= t && !self.series.is_empty())
            .unwrap_or(false);
        let point = SeriesPoint {
            records_processed: self.processed,
            estimate,
            relative_change,
            alarm,
        };
        self.series.push(point);
        point
    }

    /// The estimate time series so far.
    pub fn series(&self) -> &[SeriesPoint] {
        &self.series
    }

    /// Total records processed.
    pub fn processed(&self) -> u64 {
        self.processed
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::StdRng;
    use rand::{Rng, SeedableRng};
    use stream_model::Domain;

    fn query(period: u64) -> ContinuousQuery {
        let schema = SkimmedSchema::scanning(Domain::with_log2(10), 5, 128, 3);
        ContinuousQuery::new(schema, EstimatorConfig::default(), Aggregate::Count, period)
    }

    #[test]
    fn evaluates_on_schedule() {
        let mut q = query(100);
        let mut points = 0;
        let mut rng = StdRng::seed_from_u64(1);
        for i in 0..550u64 {
            let side = if i % 2 == 0 { Side::Left } else { Side::Right };
            let r = Record::new(rng.gen_range(0..1024));
            if q.process(side, Op::Insert, r).is_some() {
                points += 1;
            }
        }
        assert_eq!(points, 5);
        assert_eq!(q.series().len(), 5);
        assert_eq!(q.processed(), 550);
        let marks: Vec<u64> = q.series().iter().map(|p| p.records_processed).collect();
        assert_eq!(marks, vec![100, 200, 300, 400, 500]);
    }

    #[test]
    fn estimates_grow_with_overlapping_mass() {
        let mut q = query(500);
        let mut rng = StdRng::seed_from_u64(2);
        for _ in 0..2000u64 {
            let v = rng.gen_range(0..64);
            q.process(Side::Left, Op::Insert, Record::new(v));
            q.process(Side::Right, Op::Insert, Record::new(v));
        }
        let s = q.series();
        assert!(s.len() >= 4);
        // Join of two growing co-located streams grows quadratically; each
        // point should exceed the previous.
        for w in s.windows(2) {
            assert!(w[1].estimate > w[0].estimate, "series={s:?}");
        }
    }

    #[test]
    fn alarm_fires_on_regime_change() {
        let schema = SkimmedSchema::scanning(Domain::with_log2(10), 5, 128, 4);
        let mut q =
            ContinuousQuery::new(schema, EstimatorConfig::default(), Aggregate::Count, 1000)
                .with_alarm(1.0);
        // Phase 1: disjoint streams (join ≈ 0 — two quiet periods).
        for i in 0..2000u64 {
            let side = if i % 2 == 0 { Side::Left } else { Side::Right };
            let v = if i % 2 == 0 { i % 100 } else { 512 + (i % 100) };
            q.process(side, Op::Insert, Record::new(v));
        }
        // Phase 2: both streams slam the same hot value.
        for _ in 0..1000u64 {
            q.process(Side::Left, Op::Insert, Record::new(7));
            q.process(Side::Right, Op::Insert, Record::new(7));
        }
        assert!(
            q.series().iter().any(|p| p.alarm),
            "series={:?}",
            q.series()
        );
    }

    #[test]
    fn first_point_never_alarms() {
        let mut q = query(10).with_alarm(0.01);
        for _ in 0..10 {
            q.process(Side::Left, Op::Insert, Record::new(1));
        }
        assert!(!q.series()[0].alarm);
        assert_eq!(q.series()[0].relative_change, 0.0);
    }

    #[test]
    #[should_panic(expected = "period must be positive")]
    fn zero_period_rejected() {
        let _ = query(0);
    }
}
