//! The stream query-processing engine of the paper's Fig. 1.
//!
//! Maintains skimmed-sketch synopses for two update streams `F` and `G` and
//! answers `AGG(F ⋈ G)` for `AGG ∈ {COUNT, SUM, AVERAGE}` at any point, in
//! one pass, with selection predicates applied before the synopses are
//! touched.
//!
//! For COUNT a single synopsis pair suffices. SUM over `G`'s measure needs
//! a second `G` synopsis fed with measure-weighted updates (the paper's
//! `G'` stream that repeats each element `m` times); AVERAGE is SUM/COUNT.

use crate::predicate::Predicate;
use crate::record::{Op, Record};
use skimmed_sketch::{estimate_join, EstimatorConfig, JoinEstimate, SkimmedSchema, SkimmedSketch};
use std::sync::{Arc, OnceLock};
use stream_model::update::Update;
use stream_sketches::LinearSynopsis as _;
use stream_telemetry::{Counter, Histogram, Unit};

/// Engine-wide telemetry handles, shared by every [`JoinQueryEngine`].
struct EngineMetrics {
    answers: Arc<Histogram>,
    accepted: Arc<Counter>,
    filtered: Arc<Counter>,
}

fn engine_metrics() -> &'static EngineMetrics {
    static METRICS: OnceLock<EngineMetrics> = OnceLock::new();
    METRICS.get_or_init(|| {
        let r = stream_telemetry::global();
        EngineMetrics {
            answers: r.histogram("query_answer_seconds", Unit::Nanos),
            accepted: r.counter("query_records_accepted_total"),
            filtered: r.counter("query_records_filtered_total"),
        }
    })
}

/// Which side of the join a record belongs to.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Side {
    /// The left stream `F`.
    Left,
    /// The right stream `G`.
    Right,
}

/// Aggregates the engine can answer over the join.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Aggregate {
    /// `COUNT(F ⋈ G)` — the join size.
    Count,
    /// `SUM(F ⋈ G)` over the *right* stream's measure attribute.
    SumRightMeasure,
    /// `AVERAGE(F ⋈ G)` of the right stream's measure attribute.
    AvgRightMeasure,
}

/// An answered aggregate with its estimation anatomy.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct QueryAnswer {
    /// The aggregate estimate.
    pub value: f64,
    /// The COUNT estimate that backed it.
    pub count: JoinEstimate,
    /// The SUM estimate when the aggregate needed one.
    pub sum: Option<JoinEstimate>,
}

/// One-pass query processor for `AGG(σ(F) ⋈ σ(G))`.
///
/// # Examples
///
/// ```
/// use skimmed_sketch::SkimmedSchema;
/// use stream_model::Domain;
/// use stream_query::{Aggregate, JoinQueryEngine, Op, Record, Side};
///
/// let schema = SkimmedSchema::scanning(Domain::with_log2(10), 5, 64, 1);
/// let mut engine = JoinQueryEngine::new(schema, Default::default());
/// for v in 0..100u64 {
///     engine.process(Side::Left, Op::Insert, Record::new(v % 10));
///     engine.process(Side::Right, Op::Insert, Record::new(v % 20));
/// }
/// let answer = engine.answer(Aggregate::Count);
/// // 10 shared values × 10 × 5 = 500.
/// assert!((answer.value - 500.0).abs() < 250.0);
/// ```
#[derive(Debug)]
pub struct JoinQueryEngine {
    config: EstimatorConfig,
    predicate_left: Predicate,
    predicate_right: Predicate,
    /// Count synopses (unit weights).
    count_left: SkimmedSketch,
    count_right: SkimmedSketch,
    /// Measure-weighted synopsis of the right stream, for SUM/AVERAGE.
    sum_right: SkimmedSketch,
    /// Records accepted per side (diagnostics).
    accepted: [u64; 2],
    /// Records dropped by predicates per side.
    filtered: [u64; 2],
}

impl JoinQueryEngine {
    /// Creates an engine whose synopses share `schema`.
    pub fn new(schema: Arc<SkimmedSchema>, config: EstimatorConfig) -> Self {
        Self {
            config,
            predicate_left: Predicate::True,
            predicate_right: Predicate::True,
            count_left: SkimmedSketch::new(schema.clone()),
            count_right: SkimmedSketch::new(schema.clone()),
            sum_right: SkimmedSketch::new(schema),
            accepted: [0, 0],
            filtered: [0, 0],
        }
    }

    /// Installs a selection predicate on one side (applies to records
    /// processed *after* this call, matching streaming semantics).
    pub fn set_predicate(&mut self, side: Side, p: Predicate) {
        match side {
            Side::Left => self.predicate_left = p,
            Side::Right => self.predicate_right = p,
        }
    }

    /// Processes one record. Returns whether the record passed its side's
    /// predicate.
    pub fn process(&mut self, side: Side, op: Op, record: Record) -> bool {
        let (pred, idx) = match side {
            Side::Left => (&self.predicate_left, 0),
            Side::Right => (&self.predicate_right, 1),
        };
        if !pred.eval(&record) {
            self.filtered[idx] += 1;
            if stream_telemetry::ENABLED {
                engine_metrics().filtered.inc();
            }
            return false;
        }
        self.accepted[idx] += 1;
        if stream_telemetry::ENABLED {
            engine_metrics().accepted.inc();
        }
        let w = op.sign();
        match side {
            Side::Left => self.count_left.add_weighted(record.value, w),
            Side::Right => {
                self.count_right.add_weighted(record.value, w);
                self.sum_right
                    .add_weighted(record.value, w * record.measure);
            }
        }
        true
    }

    /// Processes a batch of records sharing one operation: predicates are
    /// applied record by record, the survivors are turned into update
    /// batches, and the synopses absorb them through their batch kernels.
    /// Synopsis counters and accept/filter statistics end up identical to
    /// calling [`JoinQueryEngine::process`] per record. Returns the number
    /// of records that passed the predicate.
    pub fn process_batch(&mut self, side: Side, op: Op, records: &[Record]) -> usize {
        let (pred, idx) = match side {
            Side::Left => (&self.predicate_left, 0),
            Side::Right => (&self.predicate_right, 1),
        };
        let w = op.sign();
        let mut count_updates: Vec<Update> = Vec::with_capacity(records.len());
        let mut sum_updates: Vec<Update> = match side {
            Side::Left => Vec::new(),
            Side::Right => Vec::with_capacity(records.len()),
        };
        for r in records {
            if !pred.eval(r) {
                continue;
            }
            count_updates.push(Update::with_measure(r.value, w));
            if side == Side::Right {
                sum_updates.push(Update::with_measure(r.value, w * r.measure));
            }
        }
        let accepted = count_updates.len();
        self.accepted[idx] += accepted as u64;
        self.filtered[idx] += (records.len() - accepted) as u64;
        if stream_telemetry::ENABLED {
            let m = engine_metrics();
            m.accepted.add(accepted as u64);
            m.filtered.add((records.len() - accepted) as u64);
        }
        match side {
            Side::Left => self.count_left.add_batch(&count_updates),
            Side::Right => {
                self.count_right.add_batch(&count_updates);
                self.sum_right.add_batch(&sum_updates);
            }
        }
        accepted
    }

    /// Convenience: process a batch of inserts (routed through
    /// [`JoinQueryEngine::process_batch`] and its batch kernels).
    pub fn insert_all<I: IntoIterator<Item = Record>>(&mut self, side: Side, records: I) {
        let records: Vec<Record> = records.into_iter().collect();
        self.process_batch(side, Op::Insert, &records);
    }

    /// Answers the aggregate from the current synopses (non-destructive —
    /// streaming can continue afterwards).
    pub fn answer(&self, agg: Aggregate) -> QueryAnswer {
        let _span = stream_telemetry::ENABLED.then(|| engine_metrics().answers.start_span());
        let count = estimate_join(&self.count_left, &self.count_right, &self.config);
        match agg {
            Aggregate::Count => QueryAnswer {
                value: count.estimate,
                count,
                sum: None,
            },
            Aggregate::SumRightMeasure => {
                let sum = estimate_join(&self.count_left, &self.sum_right, &self.config);
                QueryAnswer {
                    value: sum.estimate,
                    count,
                    sum: Some(sum),
                }
            }
            Aggregate::AvgRightMeasure => {
                let sum = estimate_join(&self.count_left, &self.sum_right, &self.config);
                let value = if count.estimate.abs() > f64::EPSILON {
                    sum.estimate / count.estimate
                } else {
                    0.0
                };
                QueryAnswer {
                    value,
                    count,
                    sum: Some(sum),
                }
            }
        }
    }

    /// `(accepted, filtered)` record counts for `side`.
    pub fn stats(&self, side: Side) -> (u64, u64) {
        let i = match side {
            Side::Left => 0,
            Side::Right => 1,
        };
        (self.accepted[i], self.filtered[i])
    }

    /// Total synopsis footprint in words (three synopses).
    pub fn words(&self) -> usize {
        self.count_left.words() + self.count_right.words() + self.sum_right.words()
    }

    /// Reports the heavy hitters of one side: SKIMDENSE run on a clone of
    /// that side's COUNT synopsis under the engine's threshold policy —
    /// the "interesting trends" companion query the paper's introduction
    /// motivates, answered from the same synopsis that serves the join.
    pub fn heavy_hitters(&self, side: Side) -> Vec<(u64, i64)> {
        let sketch = match side {
            Side::Left => &self.count_left,
            Side::Right => &self.count_right,
        };
        let mut clone = sketch.clone();
        let t = self.config.policy.threshold(clone.base(), clone.l1_mass());
        let dense = clone.skim(t, self.config.max_candidates);
        let mut out: Vec<(u64, i64)> = dense.iter().collect();
        out.sort_by_key(|&(v, c)| (std::cmp::Reverse(c.abs()), v));
        out
    }

    /// Resets all synopses (e.g. at a logical stream boundary).
    pub fn reset(&mut self) {
        self.count_left.clear();
        self.count_right.clear();
        self.sum_right.clear();
        self.accepted = [0, 0];
        self.filtered = [0, 0];
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::StdRng;
    use rand::{Rng, SeedableRng};
    use stream_model::metrics::ratio_error;
    use stream_model::Domain;

    fn engine(seed: u64) -> JoinQueryEngine {
        let schema = SkimmedSchema::scanning(Domain::with_log2(12), 7, 256, seed);
        JoinQueryEngine::new(schema, EstimatorConfig::default())
    }

    /// Deterministic skewed workload with known exact aggregates.
    fn workload(n: usize, seed: u64) -> (Vec<Record>, Vec<Record>) {
        let mut rng = StdRng::seed_from_u64(seed);
        let mut left = Vec::with_capacity(n);
        let mut right = Vec::with_capacity(n);
        for _ in 0..n {
            // Skewed values: small values much more likely.
            let v = (rng.gen_range(0.0f64..1.0).powi(3) * 4095.0) as u64;
            left.push(Record::new(v));
            let w = (rng.gen_range(0.0f64..1.0).powi(3) * 4095.0) as u64;
            right.push(Record::with_measure(w, rng.gen_range(1..20)));
        }
        (left, right)
    }

    fn exact_count(left: &[Record], right: &[Record]) -> i64 {
        let mut f = vec![0i64; 4096];
        let mut g = vec![0i64; 4096];
        for r in left {
            f[r.value as usize] += 1;
        }
        for r in right {
            g[r.value as usize] += 1;
        }
        f.iter().zip(&g).map(|(&a, &b)| a * b).sum()
    }

    fn exact_sum(left: &[Record], right: &[Record]) -> i64 {
        let mut f = vec![0i64; 4096];
        let mut gm = vec![0i64; 4096];
        for r in left {
            f[r.value as usize] += 1;
        }
        for r in right {
            gm[r.value as usize] += r.measure;
        }
        f.iter().zip(&gm).map(|(&a, &b)| a * b).sum()
    }

    #[test]
    fn count_tracks_exact_join_size() {
        let (l, r) = workload(60_000, 1);
        let mut e = engine(10);
        e.insert_all(Side::Left, l.iter().copied());
        e.insert_all(Side::Right, r.iter().copied());
        let ans = e.answer(Aggregate::Count);
        let actual = exact_count(&l, &r) as f64;
        let err = ratio_error(ans.value, actual);
        assert!(err < 0.2, "err={err} est={} actual={actual}", ans.value);
    }

    #[test]
    fn sum_tracks_exact_measure_sum() {
        let (l, r) = workload(60_000, 2);
        let mut e = engine(11);
        e.insert_all(Side::Left, l.iter().copied());
        e.insert_all(Side::Right, r.iter().copied());
        let ans = e.answer(Aggregate::SumRightMeasure);
        let actual = exact_sum(&l, &r) as f64;
        let err = ratio_error(ans.value, actual);
        assert!(err < 0.2, "err={err} est={} actual={actual}", ans.value);
        assert!(ans.sum.is_some());
    }

    #[test]
    fn average_is_sum_over_count() {
        let (l, r) = workload(40_000, 3);
        let mut e = engine(12);
        e.insert_all(Side::Left, l.iter().copied());
        e.insert_all(Side::Right, r.iter().copied());
        let avg = e.answer(Aggregate::AvgRightMeasure);
        let actual = exact_sum(&l, &r) as f64 / exact_count(&l, &r) as f64;
        assert!(
            (avg.value - actual).abs() / actual < 0.3,
            "avg={} actual={actual}",
            avg.value
        );
    }

    #[test]
    fn predicates_filter_before_synopses() {
        let mut e = engine(13);
        e.set_predicate(Side::Left, Predicate::ValueRange { lo: 0, hi: 100 });
        assert!(e.process(Side::Left, Op::Insert, Record::new(50)));
        assert!(!e.process(Side::Left, Op::Insert, Record::new(200)));
        let (acc, filt) = e.stats(Side::Left);
        assert_eq!((acc, filt), (1, 1));
        // The filtered record must not have reached the synopsis: a join
        // against a right stream of only value 200 estimates ~0.
        for _ in 0..100 {
            e.process(Side::Right, Op::Insert, Record::new(200));
        }
        let ans = e.answer(Aggregate::Count);
        assert!(ans.value.abs() < 50.0, "value={}", ans.value);
    }

    #[test]
    fn deletes_retract_records() {
        let mut e = engine(14);
        for _ in 0..500 {
            e.process(Side::Left, Op::Insert, Record::new(7));
            e.process(Side::Right, Op::Insert, Record::with_measure(7, 3));
        }
        // Retract all right records: join drops to ~0.
        for _ in 0..500 {
            e.process(Side::Right, Op::Delete, Record::with_measure(7, 3));
        }
        let ans = e.answer(Aggregate::Count);
        assert!(ans.value.abs() < 100.0, "value={}", ans.value);
        let sum = e.answer(Aggregate::SumRightMeasure);
        assert!(sum.value.abs() < 300.0, "sum={}", sum.value);
    }

    #[test]
    fn answer_is_repeatable_and_non_destructive() {
        let (l, r) = workload(5_000, 4);
        let mut e = engine(15);
        e.insert_all(Side::Left, l.iter().copied());
        e.insert_all(Side::Right, r.iter().copied());
        let a1 = e.answer(Aggregate::Count);
        let a2 = e.answer(Aggregate::Count);
        assert_eq!(a1, a2);
    }

    #[test]
    fn heavy_hitters_surface_the_head() {
        let mut e = engine(17);
        for _ in 0..5000 {
            e.process(Side::Left, Op::Insert, Record::new(42));
        }
        let mut rng = StdRng::seed_from_u64(18);
        for _ in 0..2000 {
            e.process(Side::Left, Op::Insert, Record::new(rng.gen_range(0..4096)));
        }
        let hh = e.heavy_hitters(Side::Left);
        assert!(!hh.is_empty());
        assert_eq!(hh[0].0, 42);
        assert!((hh[0].1 - 5000).abs() < 250, "est={}", hh[0].1);
        // The untouched right side has no heavy hitters.
        assert!(e.heavy_hitters(Side::Right).is_empty());
    }

    #[test]
    fn process_batch_matches_per_record_processing() {
        let (l, r) = workload(10_000, 5);
        let mut per_record = engine(20);
        let mut batched = engine(20);
        per_record.set_predicate(Side::Left, Predicate::ValueRange { lo: 0, hi: 2000 });
        batched.set_predicate(Side::Left, Predicate::ValueRange { lo: 0, hi: 2000 });
        for &rec in &l {
            per_record.process(Side::Left, Op::Insert, rec);
        }
        for &rec in &r {
            per_record.process(Side::Right, Op::Insert, rec);
        }
        batched.process_batch(Side::Left, Op::Insert, &l);
        batched.process_batch(Side::Right, Op::Insert, &r);
        assert_eq!(batched.stats(Side::Left), per_record.stats(Side::Left));
        assert_eq!(batched.stats(Side::Right), per_record.stats(Side::Right));
        let a = batched.answer(Aggregate::SumRightMeasure);
        let b = per_record.answer(Aggregate::SumRightMeasure);
        assert_eq!(a, b, "batched engine must answer identically");
    }

    #[test]
    fn process_batch_handles_deletes() {
        let mut e = engine(21);
        let recs: Vec<Record> = (0..500).map(|_| Record::with_measure(7, 3)).collect();
        e.process_batch(Side::Left, Op::Insert, &recs);
        e.process_batch(Side::Right, Op::Insert, &recs);
        e.process_batch(Side::Right, Op::Delete, &recs);
        let ans = e.answer(Aggregate::Count);
        assert!(ans.value.abs() < 100.0, "value={}", ans.value);
    }

    #[test]
    fn reset_clears_everything() {
        let mut e = engine(19);
        for _ in 0..100 {
            e.process(Side::Left, Op::Insert, Record::new(7));
            e.process(Side::Right, Op::Insert, Record::new(7));
        }
        e.reset();
        assert_eq!(e.answer(Aggregate::Count).value, 0.0);
        assert_eq!(e.stats(Side::Left), (0, 0));
    }

    #[test]
    fn words_accounts_for_three_synopses() {
        let e = engine(16);
        assert_eq!(e.words(), 3 * 7 * 256);
    }
}
