//! Grouped join aggregates: `COUNT(F ⋈ G) GROUP BY group(v)`.
//!
//! The engine of [`crate::engine`] answers one scalar per query; dashboards
//! usually want a breakdown — join size per customer tier, per port range,
//! per /8. Because the join decomposes over any partition of the *join
//! attribute* (`Σ_v f·g = Σ_p Σ_{v∈p} f·g`), a grouped COUNT is exactly
//! one skimmed-sketch pair per group, with updates routed by the group
//! function. Reuses [`crate::partitioned::DomainPartition`] as the group
//! map.

use crate::partitioned::DomainPartition;
use skimmed_sketch::{estimate_join, EstimatorConfig, JoinEstimate, SkimmedSchema, SkimmedSketch};
use std::sync::Arc;
use stream_model::update::Update;
use stream_model::Domain;

/// A grouped join-size estimator: one synopsis pair per group.
#[derive(Debug)]
pub struct GroupedJoin {
    groups: Arc<DomainPartition>,
    config: EstimatorConfig,
    left: Vec<SkimmedSketch>,
    right: Vec<SkimmedSketch>,
}

impl GroupedJoin {
    /// Creates the estimator. Each group gets `tables × buckets` counters
    /// per stream (groups are independent sub-problems, so per-group
    /// budgets follow the same planning rules as a scalar query on the
    /// group's substream).
    pub fn new(
        groups: Arc<DomainPartition>,
        tables: usize,
        buckets: usize,
        seed: u64,
        config: EstimatorConfig,
    ) -> Self {
        let domain = groups.domain();
        // Left and right synopses of the same group must share a schema
        // (identical hash functions); groups get independent seeds.
        let schemas: Vec<Arc<SkimmedSchema>> = (0..groups.parts())
            .map(|p| SkimmedSchema::scanning(domain, tables, buckets, seed ^ p as u64))
            .collect();
        Self {
            left: schemas
                .iter()
                .map(|s| SkimmedSketch::new(s.clone()))
                .collect(),
            right: schemas
                .iter()
                .map(|s| SkimmedSketch::new(s.clone()))
                .collect(),
            groups,
            config,
        }
    }

    /// The group map.
    pub fn groups(&self) -> &Arc<DomainPartition> {
        &self.groups
    }

    /// Number of groups.
    pub fn num_groups(&self) -> usize {
        self.groups.parts()
    }

    /// Routes a left-stream update to its group's synopsis.
    pub fn update_left(&mut self, u: Update) {
        let p = self.groups.part_of(u.value);
        self.left[p].add_weighted(u.value, u.weight);
    }

    /// Routes a right-stream update to its group's synopsis.
    pub fn update_right(&mut self, u: Update) {
        let p = self.groups.part_of(u.value);
        self.right[p].add_weighted(u.value, u.weight);
    }

    /// Estimates the join size of one group.
    pub fn estimate_group(&self, group: usize) -> JoinEstimate {
        estimate_join(&self.left[group], &self.right[group], &self.config)
    }

    /// Estimates every group, returning `(group, estimate)` pairs.
    pub fn estimate_all(&self) -> Vec<(usize, JoinEstimate)> {
        (0..self.num_groups())
            .map(|p| (p, self.estimate_group(p)))
            .collect()
    }

    /// The total join size (sum over groups) — must agree with an
    /// ungrouped estimate up to estimation noise; tested below.
    pub fn estimate_total(&self) -> f64 {
        self.estimate_all().iter().map(|(_, e)| e.estimate).sum()
    }

    /// Total synopsis footprint in words.
    pub fn words(&self) -> usize {
        self.left.iter().chain(&self.right).map(|s| s.words()).sum()
    }

    /// The domain.
    pub fn domain(&self) -> Domain {
        self.groups.domain()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::StdRng;
    use rand::SeedableRng;
    use stream_model::gen::ZipfGenerator;
    use stream_model::metrics::ratio_error;
    use stream_model::FrequencyVector;
    use stream_model::StreamSink;

    fn grouped(domain: Domain, parts: usize, seed: u64) -> GroupedJoin {
        let groups = Arc::new(DomainPartition::equi_width(domain, parts));
        GroupedJoin::new(groups, 7, 512, seed, EstimatorConfig::default())
    }

    #[test]
    fn per_group_estimates_match_per_group_truth() {
        let d = Domain::with_log2(12);
        let mut gj = grouped(d, 4, 1);
        let mut rng = StdRng::seed_from_u64(2);
        let zf = ZipfGenerator::new(d, 1.1, 0);
        let zg = ZipfGenerator::new(d, 1.1, 40);
        let mut f = FrequencyVector::new(d);
        let mut g = FrequencyVector::new(d);
        for _ in 0..60_000 {
            let a = zf.sample(&mut rng);
            let b = zg.sample(&mut rng);
            gj.update_left(Update::insert(a));
            gj.update_right(Update::insert(b));
            f.update(Update::insert(a));
            g.update(Update::insert(b));
        }
        // Exact per-group join sizes.
        let width = d.size() / 4;
        for p in 0..4usize {
            let (lo, hi) = (p as u64 * width, (p as u64 + 1) * width);
            let actual: i64 = (lo..hi).map(|v| f.get(v) * g.get(v)).sum();
            let est = gj.estimate_group(p).estimate;
            if actual > 10_000 {
                let err = ratio_error(est, actual as f64);
                assert!(err < 0.4, "group {p}: err={err} est={est} actual={actual}");
            }
        }
        // Group totals sum to the overall join.
        let err = ratio_error(gj.estimate_total(), f.join(&g) as f64);
        assert!(err < 0.2, "total err={err}");
    }

    #[test]
    fn groups_are_isolated() {
        let d = Domain::with_log2(8);
        let mut gj = grouped(d, 2, 3);
        // All traffic lands in group 0 (values < 128).
        for _ in 0..500 {
            gj.update_left(Update::insert(5));
            gj.update_right(Update::insert(5));
        }
        assert!(gj.estimate_group(0).estimate > 100_000.0);
        assert_eq!(gj.estimate_group(1).estimate, 0.0);
    }

    #[test]
    fn deletes_route_correctly() {
        let d = Domain::with_log2(8);
        let mut gj = grouped(d, 2, 4);
        for _ in 0..100 {
            gj.update_left(Update::insert(200)); // group 1
            gj.update_right(Update::insert(200));
        }
        for _ in 0..100 {
            gj.update_left(Update::delete(200));
        }
        assert!(gj.estimate_group(1).estimate.abs() < 100.0);
    }

    #[test]
    fn words_accounts_for_both_sides() {
        let d = Domain::with_log2(8);
        let gj = grouped(d, 3, 5);
        assert_eq!(gj.words(), 2 * 3 * 7 * 512);
        assert_eq!(gj.num_groups(), 3);
    }
}
