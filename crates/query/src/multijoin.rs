//! Multi-join (chain) COUNT estimation — the extension of §1/§6.
//!
//! The paper notes its techniques "readily extend to complex, multi-join
//! queries ... in a manner similar to that described in \[5\]" (Dobra,
//! Garofalakis, Gehrke & Rastogi, SIGMOD 2002). This module implements that
//! extension for chain joins
//! `COUNT(F1 ⋈_{a} F2 ⋈_{b} F3 ⋈_{c} …)`:
//!
//! each join attribute gets its own independent four-wise ±1 family; an
//! end relation contributes `Σ f(u)·ξ_a(u)`, an interior relation
//! `Σ f(u,v)·ξ_a(u)·ξ_b(v)`, and the product of all the relations' atomic
//! sketches is an unbiased estimator of the chain-join size. Averaging over
//! `s2` columns and a median over `s1` rows boost accuracy and confidence
//! exactly as in the binary case.

use std::sync::Arc;
use stream_hash::{SeedSequence, SignFamily};
use stream_model::metrics::median_f64;

/// Shared randomness for one chain-join query.
///
/// A chain of `k` relations has `k − 1` join attributes; attribute `j`
/// links relation `j` (right side) and relation `j + 1` (left side).
#[derive(Debug)]
pub struct ChainJoinSchema {
    relations: usize,
    rows: usize,
    cols: usize,
    seed: u64,
    /// `signs[attr][row·cols + col]`.
    signs: Vec<Vec<SignFamily>>,
}

impl ChainJoinSchema {
    /// Creates a schema for a chain of `relations ≥ 2` relations with an
    /// `rows × cols` sketch array.
    pub fn new(relations: usize, rows: usize, cols: usize, seed: u64) -> Arc<Self> {
        assert!(relations >= 2, "a chain join needs at least two relations");
        assert!(rows > 0 && cols > 0, "sketch array must be non-degenerate");
        let root = SeedSequence::new(seed).fork(0x4348414E /* "CHAN" */);
        let signs = (0..relations - 1)
            .map(|attr| {
                let aroot = root.fork(attr as u64);
                (0..rows * cols)
                    .map(|i| SignFamily::from_seed(aroot.fork(i as u64)))
                    .collect()
            })
            .collect();
        Arc::new(Self {
            relations,
            rows,
            cols,
            seed,
            signs,
        })
    }

    /// Number of relations in the chain.
    pub fn relations(&self) -> usize {
        self.relations
    }

    /// Number of join attributes (`relations − 1`).
    pub fn attributes(&self) -> usize {
        self.relations - 1
    }

    /// Sketch rows (`s1`).
    pub fn rows(&self) -> usize {
        self.rows
    }

    /// Sketch columns (`s2`).
    pub fn cols(&self) -> usize {
        self.cols
    }

    /// Root seed.
    pub fn seed(&self) -> u64 {
        self.seed
    }

    #[inline]
    fn sign(&self, attr: usize, cell: usize, v: u64) -> i64 {
        self.signs[attr][cell].sign(v)
    }
}

/// The sketch of one relation in the chain.
#[derive(Debug, Clone)]
pub struct ChainRelationSketch {
    schema: Arc<ChainJoinSchema>,
    /// Position of this relation in the chain, `0 ..= relations-1`.
    position: usize,
    counters: Vec<i64>,
}

impl ChainRelationSketch {
    /// An empty sketch for the relation at `position` in the chain.
    pub fn new(schema: Arc<ChainJoinSchema>, position: usize) -> Self {
        assert!(
            position < schema.relations,
            "position {position} out of range for {}-relation chain",
            schema.relations
        );
        let n = schema.rows * schema.cols;
        Self {
            schema,
            position,
            counters: vec![0; n],
        }
    }

    /// This relation's position in the chain.
    pub fn position(&self) -> usize {
        self.position
    }

    /// Whether this relation is an endpoint (one join attribute) or
    /// interior (two).
    pub fn is_endpoint(&self) -> bool {
        self.position == 0 || self.position + 1 == self.schema.relations
    }

    /// Updates an **endpoint** relation with `w` copies of join value `v`.
    ///
    /// # Panics
    /// If called on an interior relation.
    pub fn update_endpoint(&mut self, v: u64, w: i64) {
        assert!(
            self.is_endpoint(),
            "interior relations carry two attributes"
        );
        let attr = if self.position == 0 {
            0
        } else {
            self.schema.attributes() - 1
        };
        for (cell, c) in self.counters.iter_mut().enumerate() {
            *c += w * self.schema.sign(attr, cell, v);
        }
    }

    /// Updates an **interior** relation with `w` copies of the tuple
    /// `(left_value, right_value)` — its values on the two adjacent join
    /// attributes.
    ///
    /// # Panics
    /// If called on an endpoint relation.
    pub fn update_interior(&mut self, left_value: u64, right_value: u64, w: i64) {
        assert!(
            !self.is_endpoint(),
            "endpoint relations carry one attribute"
        );
        let left_attr = self.position - 1;
        let right_attr = self.position;
        for (cell, c) in self.counters.iter_mut().enumerate() {
            *c += w
                * self.schema.sign(left_attr, cell, left_value)
                * self.schema.sign(right_attr, cell, right_value);
        }
    }

    /// Raw counters (row-major), for tests.
    pub fn counters(&self) -> &[i64] {
        &self.counters
    }
}

/// Estimates the chain-join COUNT from one sketch per relation, in chain
/// order. Median over rows of the per-row average of the product of all
/// relations' atomic sketches.
///
/// # Panics
/// If the sketches don't cover positions `0..relations` exactly once, or
/// were built under different schemas.
pub fn estimate_chain_join(sketches: &[&ChainRelationSketch]) -> f64 {
    assert!(!sketches.is_empty(), "no sketches supplied");
    let schema = &sketches[0].schema;
    assert_eq!(
        sketches.len(),
        schema.relations,
        "need one sketch per relation"
    );
    for (i, sk) in sketches.iter().enumerate() {
        assert!(
            Arc::ptr_eq(&sk.schema, schema) || sk.schema.seed == schema.seed,
            "sketch {i} built under a different schema"
        );
        assert_eq!(sk.position, i, "sketches must be in chain order");
    }
    let (rows, cols) = (schema.rows, schema.cols);
    let mut row_means = Vec::with_capacity(rows);
    for r in 0..rows {
        let mut acc = 0.0f64;
        for k in 0..cols {
            let cell = r * cols + k;
            let mut prod = 1.0f64;
            for sk in sketches {
                prod *= sk.counters[cell] as f64;
            }
            acc += prod;
        }
        row_means.push(acc / cols as f64);
    }
    median_f64(&mut row_means)
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::StdRng;
    use rand::{Rng, SeedableRng};

    /// Tiny exact three-way chain join for ground truth.
    fn exact_chain3(f1: &[i64], f2: &[Vec<i64>], f3: &[i64]) -> i64 {
        let mut total = 0i64;
        for (u, &a) in f1.iter().enumerate() {
            if a == 0 {
                continue;
            }
            for (v, &c) in f3.iter().enumerate() {
                if c == 0 {
                    continue;
                }
                total += a * f2[u][v] * c;
            }
        }
        total
    }

    fn random_chain(seed: u64, dom: usize) -> (Vec<i64>, Vec<Vec<i64>>, Vec<i64>) {
        let mut rng = StdRng::seed_from_u64(seed);
        let f1: Vec<i64> = (0..dom).map(|_| rng.gen_range(0..4)).collect();
        let f3: Vec<i64> = (0..dom).map(|_| rng.gen_range(0..4)).collect();
        let f2: Vec<Vec<i64>> = (0..dom)
            .map(|_| {
                (0..dom)
                    .map(|_| i64::from(rng.gen_range(0u8..10) == 0))
                    .collect()
            })
            .collect();
        (f1, f2, f3)
    }

    fn build3(
        schema: &Arc<ChainJoinSchema>,
        f1: &[i64],
        f2: &[Vec<i64>],
        f3: &[i64],
    ) -> (
        ChainRelationSketch,
        ChainRelationSketch,
        ChainRelationSketch,
    ) {
        let mut s1 = ChainRelationSketch::new(schema.clone(), 0);
        let mut s2 = ChainRelationSketch::new(schema.clone(), 1);
        let mut s3 = ChainRelationSketch::new(schema.clone(), 2);
        for (u, &w) in f1.iter().enumerate() {
            if w != 0 {
                s1.update_endpoint(u as u64, w);
            }
        }
        for (u, row) in f2.iter().enumerate() {
            for (v, &w) in row.iter().enumerate() {
                if w != 0 {
                    s2.update_interior(u as u64, v as u64, w);
                }
            }
        }
        for (v, &w) in f3.iter().enumerate() {
            if w != 0 {
                s3.update_endpoint(v as u64, w);
            }
        }
        (s1, s2, s3)
    }

    #[test]
    fn three_way_chain_estimate_is_unbiased() {
        let (f1, f2, f3) = random_chain(1, 32);
        let actual = exact_chain3(&f1, &f2, &f3) as f64;
        assert!(actual > 0.0);
        // Average single-row estimators over independent seeds.
        let trials = 400;
        let mut sum = 0.0;
        for t in 0..trials {
            let schema = ChainJoinSchema::new(3, 1, 8, 5000 + t);
            let (s1, s2, s3) = build3(&schema, &f1, &f2, &f3);
            sum += estimate_chain_join(&[&s1, &s2, &s3]);
        }
        let mean = sum / trials as f64;
        let rel = (mean - actual).abs() / actual;
        assert!(rel < 0.25, "mean={mean} actual={actual}");
    }

    #[test]
    fn three_way_chain_single_schema_is_accurate_with_width() {
        let (f1, f2, f3) = random_chain(2, 32);
        let actual = exact_chain3(&f1, &f2, &f3) as f64;
        let schema = ChainJoinSchema::new(3, 9, 2048, 77);
        let (s1, s2, s3) = build3(&schema, &f1, &f2, &f3);
        let est = estimate_chain_join(&[&s1, &s2, &s3]);
        let rel = (est - actual).abs() / actual;
        assert!(rel < 0.5, "est={est} actual={actual}");
    }

    #[test]
    fn endpoint_interior_roles_enforced() {
        let schema = ChainJoinSchema::new(3, 2, 2, 1);
        let mut s0 = ChainRelationSketch::new(schema.clone(), 0);
        let mut s1 = ChainRelationSketch::new(schema, 1);
        assert!(s0.is_endpoint());
        assert!(!s1.is_endpoint());
        s0.update_endpoint(1, 1);
        s1.update_interior(1, 2, 1);
    }

    #[test]
    #[should_panic(expected = "two attributes")]
    fn interior_update_on_endpoint_panics() {
        let schema = ChainJoinSchema::new(3, 2, 2, 1);
        let mut s1 = ChainRelationSketch::new(schema, 1);
        s1.update_endpoint(1, 1);
    }

    #[test]
    #[should_panic(expected = "chain order")]
    fn out_of_order_sketches_panic() {
        let schema = ChainJoinSchema::new(2, 2, 2, 1);
        let a = ChainRelationSketch::new(schema.clone(), 0);
        let b = ChainRelationSketch::new(schema, 1);
        let _ = estimate_chain_join(&[&b, &a]);
    }

    #[test]
    fn two_relation_chain_matches_binary_agms() {
        // With k = 2 the chain estimator degenerates to binary AGMS; cross
        // check against exact on dense small vectors.
        let mut rng = StdRng::seed_from_u64(3);
        let f: Vec<i64> = (0..64).map(|_| rng.gen_range(0..5)).collect();
        let g: Vec<i64> = (0..64).map(|_| rng.gen_range(0..5)).collect();
        let actual: i64 = f.iter().zip(&g).map(|(&a, &b)| a * b).sum();
        let schema = ChainJoinSchema::new(2, 9, 1024, 9);
        let mut sf = ChainRelationSketch::new(schema.clone(), 0);
        let mut sg = ChainRelationSketch::new(schema, 1);
        for (v, &w) in f.iter().enumerate() {
            if w != 0 {
                sf.update_endpoint(v as u64, w);
            }
        }
        for (v, &w) in g.iter().enumerate() {
            if w != 0 {
                sg.update_endpoint(v as u64, w);
            }
        }
        let est = estimate_chain_join(&[&sf, &sg]);
        let rel = (est - actual as f64).abs() / actual as f64;
        assert!(rel < 0.3, "est={est} actual={actual}");
    }
}
