//! Parallel and shared ingestion.
//!
//! Sketch linearity makes distribution trivial and *exact*: shard the
//! stream across workers, let each build a private synopsis under the
//! shared schema, and add the results — the merged synopsis is bit-for-bit
//! the one a single ingester would have built. [`ingest_sharded`] does this
//! with crossbeam scoped threads; [`SharedSketch`] is the lock-based
//! alternative for callers that need one synopsis visible to concurrent
//! writers and readers.

use parking_lot::Mutex;
use skimmed_sketch::{SkimmedSchema, SkimmedSketch};
use std::sync::Arc;
use stream_model::update::Update;
use stream_sketches::LinearSynopsis;

/// Builds a skimmed sketch of `updates` using `workers` threads: each
/// worker sketches a contiguous shard, and the shards are merged.
///
/// Exactness (not approximation) of the merge is guaranteed by linearity
/// and asserted by the tests.
pub fn ingest_sharded(
    schema: &Arc<SkimmedSchema>,
    updates: &[Update],
    workers: usize,
) -> SkimmedSketch {
    assert!(workers > 0, "need at least one worker");
    let workers = workers.min(updates.len().max(1));
    let chunk = updates.len().div_ceil(workers);
    let mut partials: Vec<SkimmedSketch> = crossbeam::thread::scope(|scope| {
        let handles: Vec<_> = updates
            .chunks(chunk.max(1))
            .map(|shard| {
                let schema = schema.clone();
                scope.spawn(move |_| {
                    let mut sk = SkimmedSketch::new(schema);
                    sk.add_batch(shard);
                    sk
                })
            })
            .collect();
        handles
            .into_iter()
            .map(|h| h.join().expect("ingest worker panicked"))
            .collect()
    })
    .expect("ingest scope panicked");
    let mut merged = partials
        .pop()
        .unwrap_or_else(|| SkimmedSketch::new(schema.clone()));
    for p in &partials {
        merged.merge_from(p);
    }
    merged
}

/// A skimmed sketch behind a mutex, for concurrent writers.
///
/// The lock is held only for the `O(s1·log N)` counter updates, so
/// contention stays modest; for heavy parallel loads prefer
/// [`ingest_sharded`], which shares nothing.
#[derive(Debug)]
pub struct SharedSketch {
    inner: Mutex<SkimmedSketch>,
}

impl SharedSketch {
    /// An empty shared sketch under `schema`.
    pub fn new(schema: Arc<SkimmedSchema>) -> Self {
        Self {
            inner: Mutex::new(SkimmedSketch::new(schema)),
        }
    }

    /// Adds `w` copies of `v`.
    pub fn add_weighted(&self, v: u64, w: i64) {
        self.inner.lock().add_weighted(v, w);
    }

    /// Adds a whole batch under a single lock acquisition, amortising both
    /// the lock and the hash-constant loads (batch kernels).
    pub fn add_batch(&self, batch: &[Update]) {
        if batch.is_empty() {
            return;
        }
        self.inner.lock().add_batch(batch);
    }

    /// Snapshots the current synopsis (cheap: counters only).
    pub fn snapshot(&self) -> SkimmedSketch {
        self.inner.lock().clone()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::StdRng;
    use rand::SeedableRng;
    use stream_model::gen::ZipfGenerator;
    use stream_model::update::StreamSink;
    use stream_model::Domain;

    fn updates(n: usize, seed: u64) -> Vec<Update> {
        let d = Domain::with_log2(12);
        let mut rng = StdRng::seed_from_u64(seed);
        ZipfGenerator::new(d, 1.0, 0).generate(&mut rng, n)
    }

    #[test]
    fn sharded_ingest_is_exact() {
        let schema = SkimmedSchema::scanning(Domain::with_log2(12), 5, 128, 1);
        let us = updates(20_000, 2);
        let mut serial = SkimmedSketch::new(schema.clone());
        for &u in &us {
            serial.update(u);
        }
        for workers in [1, 2, 4, 7] {
            let parallel = ingest_sharded(&schema, &us, workers);
            assert_eq!(
                parallel.base().counters(),
                serial.base().counters(),
                "workers={workers}"
            );
            assert_eq!(parallel.l1_mass(), serial.l1_mass());
        }
    }

    #[test]
    fn sharded_ingest_handles_tiny_inputs() {
        let schema = SkimmedSchema::scanning(Domain::with_log2(4), 3, 16, 3);
        let empty = ingest_sharded(&schema, &[], 4);
        assert!(empty.base().counters().iter().all(|&c| c == 0));
        let one = ingest_sharded(&schema, &[Update::insert(3)], 8);
        assert_eq!(one.l1_mass(), 1);
    }

    #[test]
    fn shared_sketch_concurrent_writers_sum_exactly() {
        let schema = SkimmedSchema::scanning(Domain::with_log2(12), 3, 64, 4);
        let shared = SharedSketch::new(schema.clone());
        let us = updates(8_000, 5);
        crossbeam::thread::scope(|scope| {
            for (i, shard) in us.chunks(2_000).enumerate() {
                let shared = &shared;
                scope.spawn(move |_| {
                    // Mix both write paths: they must be interchangeable.
                    if i % 2 == 0 {
                        shared.add_batch(shard);
                    } else {
                        for &u in shard {
                            shared.add_weighted(u.value, u.weight);
                        }
                    }
                });
            }
        })
        .unwrap();
        let mut serial = SkimmedSketch::new(schema);
        for &u in &us {
            serial.update(u);
        }
        assert_eq!(
            shared.snapshot().base().counters(),
            serial.base().counters()
        );
    }
}
