//! Star multi-join COUNT estimation.
//!
//! Completes the multi-join picture next to [`crate::multijoin`]'s chains:
//! a *star* join has one center relation carrying `k` join attributes and
//! `k` edge relations, one per attribute —
//! `COUNT(E1 ⋈_{a1} C ⋈_{a2} E2 ⋈ … )`. Per Dobra et al. \[5\] (the
//! construction the paper's §1/§6 extension pointer references), every
//! attribute gets an independent four-wise ±1 family; the center's atomic
//! sketch multiplies the signs of all its attribute values, each edge uses
//! its own attribute's family, and the product of all `k + 1` atomic
//! sketches is an unbiased estimator of the star-join size.

use std::sync::Arc;
use stream_hash::{SeedSequence, SignFamily};
use stream_model::metrics::median_f64;

/// Shared randomness for one star join of `attributes` edges.
#[derive(Debug)]
pub struct StarJoinSchema {
    attributes: usize,
    rows: usize,
    cols: usize,
    seed: u64,
    /// `signs[attr][row·cols + col]`.
    signs: Vec<Vec<SignFamily>>,
}

impl StarJoinSchema {
    /// Creates a schema for a star with `attributes ≥ 1` edge relations
    /// and an `rows × cols` sketch array.
    pub fn new(attributes: usize, rows: usize, cols: usize, seed: u64) -> Arc<Self> {
        assert!(attributes >= 1, "a star join needs at least one edge");
        assert!(rows > 0 && cols > 0, "sketch array must be non-degenerate");
        let root = SeedSequence::new(seed).fork(0x57A8);
        let signs = (0..attributes)
            .map(|attr| {
                let aroot = root.fork(attr as u64);
                (0..rows * cols)
                    .map(|i| SignFamily::from_seed(aroot.fork(i as u64)))
                    .collect()
            })
            .collect();
        Arc::new(Self {
            attributes,
            rows,
            cols,
            seed,
            signs,
        })
    }

    /// Number of edge relations / join attributes.
    pub fn attributes(&self) -> usize {
        self.attributes
    }

    /// Sketch rows (`s1`).
    pub fn rows(&self) -> usize {
        self.rows
    }

    /// Sketch columns (`s2`).
    pub fn cols(&self) -> usize {
        self.cols
    }

    #[inline]
    fn sign(&self, attr: usize, cell: usize, v: u64) -> i64 {
        self.signs[attr][cell].sign(v)
    }
}

/// The sketch of the star's center relation (tuples over all attributes).
#[derive(Debug, Clone)]
pub struct StarCenterSketch {
    schema: Arc<StarJoinSchema>,
    counters: Vec<i64>,
}

impl StarCenterSketch {
    /// An empty center sketch.
    pub fn new(schema: Arc<StarJoinSchema>) -> Self {
        let n = schema.rows * schema.cols;
        Self {
            schema,
            counters: vec![0; n],
        }
    }

    /// Adds `w` copies of a center tuple (one value per attribute, in
    /// attribute order).
    pub fn update(&mut self, tuple: &[u64], w: i64) {
        assert_eq!(
            tuple.len(),
            self.schema.attributes,
            "tuple arity must equal the attribute count"
        );
        for (cell, c) in self.counters.iter_mut().enumerate() {
            let mut sign = 1i64;
            for (attr, &v) in tuple.iter().enumerate() {
                sign *= self.schema.sign(attr, cell, v);
            }
            *c += w * sign;
        }
    }
}

/// The sketch of one edge relation (values of a single attribute).
#[derive(Debug, Clone)]
pub struct StarEdgeSketch {
    schema: Arc<StarJoinSchema>,
    attribute: usize,
    counters: Vec<i64>,
}

impl StarEdgeSketch {
    /// An empty sketch for the edge on `attribute`.
    pub fn new(schema: Arc<StarJoinSchema>, attribute: usize) -> Self {
        assert!(
            attribute < schema.attributes,
            "attribute {attribute} out of range"
        );
        let n = schema.rows * schema.cols;
        Self {
            schema,
            attribute,
            counters: vec![0; n],
        }
    }

    /// Adds `w` copies of join value `v`.
    pub fn update(&mut self, v: u64, w: i64) {
        for (cell, c) in self.counters.iter_mut().enumerate() {
            *c += w * self.schema.sign(self.attribute, cell, v);
        }
    }
}

/// Estimates the star-join COUNT: median over rows of the per-row average
/// of `X_center · Π_e X_e`.
///
/// # Panics
/// If edges don't cover attributes `0..k` in order or schemas differ.
pub fn estimate_star_join(center: &StarCenterSketch, edges: &[&StarEdgeSketch]) -> f64 {
    let schema = &center.schema;
    assert_eq!(
        edges.len(),
        schema.attributes,
        "need one edge per attribute"
    );
    for (i, e) in edges.iter().enumerate() {
        assert!(
            Arc::ptr_eq(&e.schema, schema) || e.schema.seed == schema.seed,
            "edge {i} built under a different schema"
        );
        assert_eq!(e.attribute, i, "edges must be in attribute order");
    }
    let (rows, cols) = (schema.rows, schema.cols);
    let mut row_means = Vec::with_capacity(rows);
    for r in 0..rows {
        let mut acc = 0.0f64;
        for k in 0..cols {
            let cell = r * cols + k;
            let mut prod = center.counters[cell] as f64;
            for e in edges {
                prod *= e.counters[cell] as f64;
            }
            acc += prod;
        }
        row_means.push(acc / cols as f64);
    }
    median_f64(&mut row_means)
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::StdRng;
    use rand::{Rng, SeedableRng};

    /// Tiny exact 2-edge star join for ground truth:
    /// Σ_{u,v} e1(u)·c(u,v)·e2(v).
    fn exact_star2(e1: &[i64], c: &[Vec<i64>], e2: &[i64]) -> i64 {
        let mut total = 0i64;
        for (u, &a) in e1.iter().enumerate() {
            for (v, &b) in e2.iter().enumerate() {
                total += a * c[u][v] * b;
            }
        }
        total
    }

    fn random_star(seed: u64, dom: usize) -> (Vec<i64>, Vec<Vec<i64>>, Vec<i64>) {
        let mut rng = StdRng::seed_from_u64(seed);
        let e1: Vec<i64> = (0..dom).map(|_| rng.gen_range(0..4)).collect();
        let e2: Vec<i64> = (0..dom).map(|_| rng.gen_range(0..4)).collect();
        let c: Vec<Vec<i64>> = (0..dom)
            .map(|_| {
                (0..dom)
                    .map(|_| i64::from(rng.gen_range(0u8..8) == 0))
                    .collect()
            })
            .collect();
        (e1, c, e2)
    }

    #[test]
    fn two_edge_star_estimate_is_unbiased() {
        let (e1, c, e2) = random_star(1, 24);
        let actual = exact_star2(&e1, &c, &e2) as f64;
        assert!(actual > 0.0);
        let trials = 300u64;
        let mut sum = 0.0;
        for t in 0..trials {
            let schema = StarJoinSchema::new(2, 1, 8, 9000 + t);
            let mut center = StarCenterSketch::new(schema.clone());
            let mut s1 = StarEdgeSketch::new(schema.clone(), 0);
            let mut s2 = StarEdgeSketch::new(schema, 1);
            for (u, &w) in e1.iter().enumerate() {
                if w != 0 {
                    s1.update(u as u64, w);
                }
            }
            for (v, &w) in e2.iter().enumerate() {
                if w != 0 {
                    s2.update(v as u64, w);
                }
            }
            for (u, row) in c.iter().enumerate() {
                for (v, &w) in row.iter().enumerate() {
                    if w != 0 {
                        center.update(&[u as u64, v as u64], w);
                    }
                }
            }
            sum += estimate_star_join(&center, &[&s1, &s2]);
        }
        let mean = sum / trials as f64;
        let rel = (mean - actual).abs() / actual;
        assert!(rel < 0.25, "mean={mean} actual={actual}");
    }

    #[test]
    fn single_edge_star_is_a_binary_join() {
        // k = 1: center(u) ⋈ edge(u) — cross-check against the exact dot.
        let mut rng = StdRng::seed_from_u64(2);
        let f: Vec<i64> = (0..64).map(|_| rng.gen_range(0..5)).collect();
        let g: Vec<i64> = (0..64).map(|_| rng.gen_range(0..5)).collect();
        let actual: i64 = f.iter().zip(&g).map(|(&a, &b)| a * b).sum();
        let schema = StarJoinSchema::new(1, 9, 1024, 5);
        let mut center = StarCenterSketch::new(schema.clone());
        let mut edge = StarEdgeSketch::new(schema, 0);
        for (v, &w) in f.iter().enumerate() {
            if w != 0 {
                center.update(&[v as u64], w);
            }
        }
        for (v, &w) in g.iter().enumerate() {
            if w != 0 {
                edge.update(v as u64, w);
            }
        }
        let est = estimate_star_join(&center, &[&edge]);
        let rel = (est - actual as f64).abs() / actual as f64;
        assert!(rel < 0.3, "est={est} actual={actual}");
    }

    #[test]
    #[should_panic(expected = "arity")]
    fn wrong_tuple_arity_panics() {
        let schema = StarJoinSchema::new(2, 2, 2, 1);
        let mut center = StarCenterSketch::new(schema);
        center.update(&[1], 1);
    }

    #[test]
    #[should_panic(expected = "attribute order")]
    fn out_of_order_edges_panic() {
        let schema = StarJoinSchema::new(2, 2, 2, 1);
        let center = StarCenterSketch::new(schema.clone());
        let a = StarEdgeSketch::new(schema.clone(), 0);
        let b = StarEdgeSketch::new(schema, 1);
        let _ = estimate_star_join(&center, &[&b, &a]);
    }
}
