//! Domain-partitioned sketching — the Dobra et al. \[5\] alternative the
//! paper argues against.
//!
//! \[5\] reduces basic-AGMS error by partitioning the value domain into `k`
//! parts, sketching each part separately, and summing per-part join
//! estimates: error then scales with `Σ_p √(SJ_p(F)·SJ_p(G))` instead of
//! `√(SJ(F)·SJ(G))`, which is a big win **if** the partitions isolate the
//! dense values. The catch — the paper's §1 critique — is that good
//! partitions require *a-priori frequency knowledge* (e.g. histograms),
//! which a pure streaming setting does not have.
//!
//! We implement the method faithfully so the critique can be measured: the
//! `partitioned` harness runs it with an **oracle** partitioning (computed
//! from the exact frequencies, the best case \[5\] could hope for) and with
//! an uninformed equi-width partitioning, against skimmed sketches that
//! get no prior knowledge at all.

use std::sync::Arc;
use stream_model::update::{StreamSink, Update};
use stream_model::{Domain, FrequencyVector};
use stream_sketches::{AgmsSchema, AgmsSketch, LinearSynopsis};

/// A partitioning of the domain into `k` parts: `part_of[v] ∈ [0, k)`.
#[derive(Debug, Clone)]
pub struct DomainPartition {
    domain: Domain,
    part_of: Vec<u32>,
    parts: usize,
}

impl DomainPartition {
    /// Builds from an explicit assignment vector.
    pub fn from_assignment(domain: Domain, part_of: Vec<u32>, parts: usize) -> Self {
        assert_eq!(
            part_of.len() as u64,
            domain.size(),
            "assignment must cover the domain"
        );
        assert!(parts > 0, "need at least one part");
        assert!(
            part_of.iter().all(|&p| (p as usize) < parts),
            "part index out of range"
        );
        Self {
            domain,
            part_of,
            parts,
        }
    }

    /// Uninformed equi-width partitioning into `parts` contiguous ranges.
    pub fn equi_width(domain: Domain, parts: usize) -> Self {
        assert!(parts > 0);
        let n = domain.size();
        let width = n.div_ceil(parts as u64).max(1);
        let part_of = (0..n).map(|v| (v / width) as u32).collect();
        Self::from_assignment(domain, part_of, parts)
    }

    /// Oracle partitioning in the spirit of \[5\]: isolate the `parts − 1`
    /// heaviest values (by `√(f(v)·g(v))`-style contribution; we use
    /// `|f| + |g|`) into singleton parts and lump the rest together — the
    /// histogram-guided best case.
    pub fn oracle(f: &FrequencyVector, g: &FrequencyVector, parts: usize) -> Self {
        assert!(parts >= 2, "oracle partitioning needs >= 2 parts");
        let domain = f.domain();
        let mut mass: Vec<(u64, i64)> = (0..domain.size())
            .map(|v| (v, f.get(v).abs() + g.get(v).abs()))
            .collect();
        mass.sort_by_key(|&(v, m)| (std::cmp::Reverse(m), v));
        let mut part_of = vec![(parts - 1) as u32; domain.size() as usize];
        for (slot, &(v, _)) in mass.iter().take(parts - 1).enumerate() {
            part_of[v as usize] = slot as u32;
        }
        Self::from_assignment(domain, part_of, parts)
    }

    /// Number of parts.
    pub fn parts(&self) -> usize {
        self.parts
    }

    /// The part containing `v`.
    #[inline]
    pub fn part_of(&self, v: u64) -> usize {
        self.part_of[v as usize] as usize
    }

    /// The underlying domain.
    pub fn domain(&self) -> Domain {
        self.domain
    }
}

/// A partitioned AGMS sketch: one `s1 × s2_p` sketch per part, sharing a
/// total budget of `s1 × s2_total` counters split evenly across parts
/// (as \[5\] does absent better information).
#[derive(Debug, Clone)]
pub struct PartitionedAgmsSketch {
    partition: Arc<DomainPartition>,
    per_part: Vec<AgmsSketch>,
}

/// Shared construction parameters for a compatible pair.
#[derive(Debug)]
pub struct PartitionedSchema {
    partition: Arc<DomainPartition>,
    schemas: Vec<Arc<AgmsSchema>>,
}

impl PartitionedSchema {
    /// Splits a total budget of `rows × cols_total` counters evenly over
    /// the parts (at least 2 columns each).
    pub fn new(
        partition: Arc<DomainPartition>,
        rows: usize,
        cols_total: usize,
        seed: u64,
    ) -> Arc<Self> {
        let parts = partition.parts();
        let cols_each = (cols_total / parts).max(2);
        let schemas = (0..parts)
            .map(|p| AgmsSchema::new(rows, cols_each, seed ^ (0x9A27 + p as u64)))
            .collect();
        Arc::new(Self { partition, schemas })
    }

    /// Total words across all parts.
    pub fn words(&self) -> usize {
        self.schemas.iter().map(|s| s.words()).sum()
    }

    /// The partition in use.
    pub fn partition(&self) -> &Arc<DomainPartition> {
        &self.partition
    }
}

impl PartitionedAgmsSketch {
    /// An empty partitioned sketch under `schema`.
    pub fn new(schema: &Arc<PartitionedSchema>) -> Self {
        Self {
            partition: schema.partition.clone(),
            per_part: schema
                .schemas
                .iter()
                .map(|s| AgmsSketch::new(s.clone()))
                .collect(),
        }
    }

    /// Adds `w` copies of `v` to the sketch of `v`'s part.
    #[inline]
    pub fn add_weighted(&mut self, v: u64, w: i64) {
        let p = self.partition.part_of(v);
        self.per_part[p].add_weighted(v, w);
    }

    /// Estimates `f·g` as the sum of per-part ESTJOINSIZE estimates.
    pub fn estimate_join(&self, other: &PartitionedAgmsSketch) -> f64 {
        assert!(
            Arc::ptr_eq(&self.partition, &other.partition),
            "sketches must share the partition"
        );
        self.per_part
            .iter()
            .zip(&other.per_part)
            .map(|(a, b)| a.estimate_join(b))
            .sum()
    }

    /// Total words.
    pub fn words(&self) -> usize {
        self.per_part.iter().map(|s| s.words()).sum()
    }
}

impl StreamSink for PartitionedAgmsSketch {
    #[inline]
    fn update(&mut self, u: Update) {
        self.add_weighted(u.value, u.weight);
    }
}

impl LinearSynopsis for PartitionedAgmsSketch {
    fn compatible(&self, other: &Self) -> bool {
        Arc::ptr_eq(&self.partition, &other.partition)
            && self
                .per_part
                .iter()
                .zip(&other.per_part)
                .all(|(a, b)| a.compatible(b))
    }

    fn merge_from(&mut self, other: &Self) {
        assert!(self.compatible(other), "incompatible partitioned sketches");
        for (a, b) in self.per_part.iter_mut().zip(&other.per_part) {
            a.merge_from(b);
        }
    }

    fn negate(&mut self) {
        for s in &mut self.per_part {
            s.negate();
        }
    }

    fn clear(&mut self) {
        for s in &mut self.per_part {
            s.clear();
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::StdRng;
    use rand::SeedableRng;
    use stream_model::gen::ZipfGenerator;
    use stream_model::metrics::ratio_error;

    fn zipf_pair(seed: u64) -> (FrequencyVector, FrequencyVector) {
        let d = Domain::with_log2(10);
        let mut rng = StdRng::seed_from_u64(seed);
        let f = FrequencyVector::from_updates(
            d,
            ZipfGenerator::new(d, 1.3, 0).generate(&mut rng, 30_000),
        );
        let g = FrequencyVector::from_updates(
            d,
            ZipfGenerator::new(d, 1.3, 16).generate(&mut rng, 30_000),
        );
        (f, g)
    }

    fn build(
        schema: &Arc<PartitionedSchema>,
        f: &FrequencyVector,
        g: &FrequencyVector,
    ) -> (PartitionedAgmsSketch, PartitionedAgmsSketch) {
        let mut sf = PartitionedAgmsSketch::new(schema);
        let mut sg = PartitionedAgmsSketch::new(schema);
        for (v, c) in f.nonzero() {
            sf.add_weighted(v, c);
        }
        for (v, c) in g.nonzero() {
            sg.add_weighted(v, c);
        }
        (sf, sg)
    }

    #[test]
    fn equi_width_covers_domain() {
        let d = Domain::with_log2(8);
        let p = DomainPartition::equi_width(d, 7);
        let mut seen = [false; 7];
        for v in 0..d.size() {
            seen[p.part_of(v)] = true;
        }
        assert!(seen.iter().all(|&s| s));
    }

    #[test]
    fn oracle_isolates_the_heaviest_values() {
        let (f, g) = zipf_pair(1);
        let p = DomainPartition::oracle(&f, &g, 9);
        // The top-8 values by combined mass must sit in singleton parts.
        let mut mass: Vec<(u64, i64)> = (0..f.domain().size())
            .map(|v| (v, f.get(v).abs() + g.get(v).abs()))
            .collect();
        mass.sort_by_key(|&(v, m)| (std::cmp::Reverse(m), v));
        let mut parts_seen = std::collections::HashSet::new();
        for &(v, _) in mass.iter().take(8) {
            let part = p.part_of(v);
            assert!(part < 8, "heavy value {v} not isolated");
            assert!(parts_seen.insert(part), "two heavy values share a part");
        }
    }

    #[test]
    fn oracle_partitioning_beats_unpartitioned_on_skew() {
        let (f, g) = zipf_pair(2);
        let actual = f.join(&g) as f64;
        let rows = 5;
        let cols_total = 512;
        let mut plain_errs = Vec::new();
        let mut oracle_errs = Vec::new();
        for seed in 0..5u64 {
            let plain_schema = AgmsSchema::new(rows, cols_total, seed);
            let pf = AgmsSketch::from_frequencies(plain_schema.clone(), f.nonzero());
            let pg = AgmsSketch::from_frequencies(plain_schema, g.nonzero());
            plain_errs.push(ratio_error(pf.estimate_join(&pg), actual));

            let part = Arc::new(DomainPartition::oracle(&f, &g, 16));
            let schema = PartitionedSchema::new(part, rows, cols_total, seed);
            let (sf, sg) = build(&schema, &f, &g);
            oracle_errs.push(ratio_error(sf.estimate_join(&sg), actual));
        }
        let plain: f64 = plain_errs.iter().sum::<f64>() / 5.0;
        let oracle: f64 = oracle_errs.iter().sum::<f64>() / 5.0;
        assert!(
            oracle < plain,
            "oracle partitioning {oracle} should beat plain {plain}"
        );
    }

    #[test]
    fn merge_and_linearity() {
        let d = Domain::with_log2(6);
        let part = Arc::new(DomainPartition::equi_width(d, 4));
        let schema = PartitionedSchema::new(part, 3, 32, 7);
        let mut a = PartitionedAgmsSketch::new(&schema);
        let mut b = PartitionedAgmsSketch::new(&schema);
        for v in 0..64 {
            a.update(Update::insert(v));
            b.update(Update::with_measure(v, 2));
        }
        let mut merged = a.clone();
        merged.merge_from(&b);
        let mut direct = PartitionedAgmsSketch::new(&schema);
        for v in 0..64 {
            direct.update(Update::with_measure(v, 3));
        }
        for (x, y) in merged.per_part.iter().zip(&direct.per_part) {
            assert_eq!(x.counters(), y.counters());
        }
        merged.clear();
        assert!(merged
            .per_part
            .iter()
            .all(|s| s.counters().iter().all(|&c| c == 0)));
    }

    #[test]
    #[should_panic(expected = "share the partition")]
    fn cross_partition_estimation_panics() {
        let d = Domain::with_log2(4);
        let p1 = Arc::new(DomainPartition::equi_width(d, 2));
        let p2 = Arc::new(DomainPartition::equi_width(d, 2));
        let s1 = PartitionedSchema::new(p1, 2, 8, 1);
        let s2 = PartitionedSchema::new(p2, 2, 8, 1);
        let a = PartitionedAgmsSketch::new(&s1);
        let b = PartitionedAgmsSketch::new(&s2);
        let _ = a.estimate_join(&b);
    }
}
