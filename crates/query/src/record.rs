//! Stream records: the query engine's input unit.
//!
//! A record carries the join-attribute value plus an optional measure. The
//! paper reduces `SUM_m(F ⋈ G)` to `COUNT` over a stream where each element
//! is repeated `m` times — concretely, a measure-weighted update — so one
//! record feeds the COUNT synopsis with weight ±1 and the SUM synopsis with
//! weight ±m.

/// One stream record: join value + measure attribute.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Record {
    /// The join-attribute value.
    pub value: u64,
    /// The measure attribute (1 when the query is a pure COUNT).
    pub measure: i64,
}

impl Record {
    /// A record with unit measure.
    pub fn new(value: u64) -> Self {
        Self { value, measure: 1 }
    }

    /// A record with an explicit measure.
    pub fn with_measure(value: u64, measure: i64) -> Self {
        Self { value, measure }
    }
}

/// Whether a record is being added to or retracted from its stream.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Op {
    /// Record arrival.
    Insert,
    /// Record retraction (the delete case of the update model).
    Delete,
}

impl Op {
    /// The sign this operation applies to update weights.
    #[inline]
    pub fn sign(self) -> i64 {
        match self {
            Op::Insert => 1,
            Op::Delete => -1,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn constructors() {
        assert_eq!(Record::new(5).measure, 1);
        assert_eq!(Record::with_measure(5, -3).measure, -3);
    }

    #[test]
    fn op_signs() {
        assert_eq!(Op::Insert.sign(), 1);
        assert_eq!(Op::Delete.sign(), -1);
    }
}
