//! # stream-query
//!
//! The stream query-processing engine of the paper's Fig. 1, built on
//! skimmed sketches: one-pass `COUNT` / `SUM` / `AVERAGE` over the join of
//! two update streams, with selection predicates applied before the
//! synopses, exact sharded parallel ingestion (by sketch linearity), and
//! the chain multi-join extension of Dobra et al. that §1/§6 of the paper
//! point to.

#![forbid(unsafe_code)]
#![deny(missing_docs)]
#![warn(clippy::all)]

pub mod continuous;
pub mod engine;
pub mod groupby;
pub mod multijoin;
pub mod partitioned;
pub mod predicate;
pub mod record;
pub mod sharded;
pub mod star;

pub use continuous::{ContinuousQuery, SeriesPoint};
pub use engine::{Aggregate, JoinQueryEngine, QueryAnswer, Side};
pub use groupby::GroupedJoin;
pub use multijoin::{estimate_chain_join, ChainJoinSchema, ChainRelationSketch};
pub use partitioned::{DomainPartition, PartitionedAgmsSketch, PartitionedSchema};
pub use predicate::Predicate;
pub use record::{Op, Record};
pub use sharded::{ingest_sharded, SharedSketch};
pub use star::{estimate_star_join, StarCenterSketch, StarEdgeSketch, StarJoinSchema};
