//! Selection predicates.
//!
//! §2.1 of the paper: "selection predicates can easily be incorporated into
//! our stream processing model — we simply drop from the streams, elements
//! that do not satisfy the predicates (prior to updating the synopses)."
//! This module is that filter: a small combinator language over stream
//! records, evaluated before any synopsis sees the element.

use crate::record::Record;

/// A predicate over stream records.
#[derive(Debug, Clone)]
pub enum Predicate {
    /// Accepts everything.
    True,
    /// Rejects everything.
    False,
    /// `lo ≤ value < hi`.
    ValueRange {
        /// Inclusive lower bound on the join value.
        lo: u64,
        /// Exclusive upper bound on the join value.
        hi: u64,
    },
    /// Value is one of an explicit (sorted) set.
    ValueIn(Vec<u64>),
    /// `value ≡ residue (mod modulus)`.
    ValueMod {
        /// The modulus (> 0).
        modulus: u64,
        /// The required residue.
        residue: u64,
    },
    /// `lo ≤ measure < hi` on the record's measure attribute.
    MeasureRange {
        /// Inclusive lower bound on the measure.
        lo: i64,
        /// Exclusive upper bound on the measure.
        hi: i64,
    },
    /// Both sub-predicates hold.
    And(Box<Predicate>, Box<Predicate>),
    /// Either sub-predicate holds.
    Or(Box<Predicate>, Box<Predicate>),
    /// The sub-predicate does not hold.
    Not(Box<Predicate>),
}

impl Predicate {
    /// Builds a sorted `ValueIn` from arbitrary order.
    pub fn value_in<I: IntoIterator<Item = u64>>(values: I) -> Self {
        let mut v: Vec<u64> = values.into_iter().collect();
        v.sort_unstable();
        v.dedup();
        Predicate::ValueIn(v)
    }

    /// Conjunction helper.
    pub fn and(self, other: Predicate) -> Self {
        Predicate::And(Box::new(self), Box::new(other))
    }

    /// Disjunction helper.
    pub fn or(self, other: Predicate) -> Self {
        Predicate::Or(Box::new(self), Box::new(other))
    }

    /// Negation helper.
    #[allow(clippy::should_implement_trait)]
    pub fn not(self) -> Self {
        Predicate::Not(Box::new(self))
    }

    /// Evaluates the predicate on a record.
    pub fn eval(&self, r: &Record) -> bool {
        match self {
            Predicate::True => true,
            Predicate::False => false,
            Predicate::ValueRange { lo, hi } => *lo <= r.value && r.value < *hi,
            Predicate::ValueIn(set) => set.binary_search(&r.value).is_ok(),
            Predicate::ValueMod { modulus, residue } => {
                assert!(*modulus > 0, "modulus must be positive");
                r.value % modulus == *residue
            }
            Predicate::MeasureRange { lo, hi } => *lo <= r.measure && r.measure < *hi,
            Predicate::And(a, b) => a.eval(r) && b.eval(r),
            Predicate::Or(a, b) => a.eval(r) || b.eval(r),
            Predicate::Not(a) => !a.eval(r),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn rec(value: u64, measure: i64) -> Record {
        Record { value, measure }
    }

    #[test]
    fn constants() {
        assert!(Predicate::True.eval(&rec(0, 0)));
        assert!(!Predicate::False.eval(&rec(0, 0)));
    }

    #[test]
    fn value_range_half_open() {
        let p = Predicate::ValueRange { lo: 10, hi: 20 };
        assert!(!p.eval(&rec(9, 0)));
        assert!(p.eval(&rec(10, 0)));
        assert!(p.eval(&rec(19, 0)));
        assert!(!p.eval(&rec(20, 0)));
    }

    #[test]
    fn value_in_sorted_lookup() {
        let p = Predicate::value_in([30, 10, 20, 10]);
        assert!(p.eval(&rec(10, 0)) && p.eval(&rec(20, 0)) && p.eval(&rec(30, 0)));
        assert!(!p.eval(&rec(15, 0)));
    }

    #[test]
    fn modulo() {
        let p = Predicate::ValueMod {
            modulus: 4,
            residue: 3,
        };
        assert!(p.eval(&rec(7, 0)));
        assert!(!p.eval(&rec(8, 0)));
    }

    #[test]
    fn measure_range() {
        let p = Predicate::MeasureRange { lo: -5, hi: 5 };
        assert!(p.eval(&rec(0, -5)));
        assert!(p.eval(&rec(0, 4)));
        assert!(!p.eval(&rec(0, 5)));
    }

    #[test]
    fn combinators() {
        let p = Predicate::ValueRange { lo: 0, hi: 100 }
            .and(Predicate::ValueMod {
                modulus: 2,
                residue: 0,
            })
            .or(Predicate::value_in([777]));
        assert!(p.eval(&rec(42, 0)));
        assert!(!p.eval(&rec(43, 0)));
        assert!(p.eval(&rec(777, 0)));
        assert!(!p.clone().not().eval(&rec(42, 0)));
    }
}
