//! Primary-side WAL shipping: serving replication chunks out of a live
//! WAL directory.
//!
//! [`WalTailer`] reads the same `wal-%016x.seg` / `snap-%016x.ss` files
//! that [`crate::Wal`] writes and answers one question: *given a
//! position `(segment, offset)` in the primary's WAL byte stream, what
//! should a follower receive next?* Three answers are possible:
//!
//! * [`TailChunk::Records`] — the next run of **complete** WAL records
//!   from that position, cut at a frame boundary. Records are verbatim
//!   `Frame::encode` bytes, so the cut only needs the 20-byte header's
//!   declared payload length; a record the primary is still writing
//!   (its bytes only partially visible) is simply excluded and shipped
//!   by a later poll.
//! * [`TailChunk::Snapshot`] — the requested position was pruned by a
//!   snapshot install; the follower must re-base onto the snapshot
//!   (see [`crate::Wal::adopt_snapshot`]) and resume at
//!   `(snap_id, 0)`, which is exactly where the primary's stream
//!   continues after its prune.
//! * [`TailChunk::CaughtUp`] — nothing new past the position.
//!
//! The tailer is stateless between calls (every poll re-lists the
//! directory), which is what makes it safe to run against a WAL that is
//! concurrently appending, rotating, and pruning under the server's
//! persist lock: the worst a race can produce is a smaller chunk or a
//! one-poll-late snapshot redirect, never a torn record.

use std::fs;
use std::io;
use std::path::{Path, PathBuf};

use crate::wal::list_family;
use stream_wire::HEADER_LEN;

/// Default cap on one [`TailChunk::Records`] payload (256 KiB): small
/// enough to keep poll replies prompt, large enough that a catching-up
/// follower drains whole segments in a few round trips.
pub const DEFAULT_CHUNK_BYTES: usize = 256 << 10;

/// What a replication poll at some position should carry back.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum TailChunk {
    /// Complete WAL records starting at `(segment, offset)` — which may
    /// be *ahead* of the polled position when the poll landed at the
    /// end of a sealed segment (the follower must rotate to `segment`
    /// before appending).
    Records {
        /// Segment the chunk starts in.
        segment: u64,
        /// Byte offset within `segment` the chunk starts at.
        offset: u64,
        /// Verbatim record bytes, ending on a frame boundary.
        bytes: Vec<u8>,
    },
    /// The polled position was pruned; re-base onto this snapshot and
    /// resume the stream at `(snap_id, 0)`.
    Snapshot {
        /// The snapshot's id — the first segment it does not cover.
        snap_id: u64,
        /// The encoded [`crate::SnapshotBlob`] file bytes.
        bytes: Vec<u8>,
    },
    /// Nothing new at or past the polled position.
    CaughtUp,
}

/// A stateless reader of a (possibly live) WAL directory that serves
/// replication chunks. See the module docs for the contract.
#[derive(Debug, Clone)]
pub struct WalTailer {
    dir: PathBuf,
    chunk_bytes: usize,
}

impl WalTailer {
    /// A tailer over `dir` with the default chunk cap.
    pub fn new(dir: impl Into<PathBuf>) -> Self {
        WalTailer {
            dir: dir.into(),
            chunk_bytes: DEFAULT_CHUNK_BYTES,
        }
    }

    /// A tailer with an explicit chunk cap (tests use tiny caps to
    /// force multi-chunk catch-up).
    pub fn with_chunk_bytes(dir: impl Into<PathBuf>, chunk_bytes: usize) -> Self {
        WalTailer {
            dir: dir.into(),
            chunk_bytes: chunk_bytes.max(HEADER_LEN),
        }
    }

    /// The directory being tailed.
    pub fn dir(&self) -> &Path {
        &self.dir
    }

    /// Answers a replication poll at `(segment, offset)`.
    ///
    /// Errors are real I/O trouble or a structurally impossible
    /// position (an offset beyond a sealed segment's length, a pruned
    /// position with no snapshot to re-base on) — a poll loop should
    /// surface them, not retry blindly.
    pub fn read_from(&self, segment: u64, offset: u64) -> io::Result<TailChunk> {
        let segments = list_family(&self.dir, "wal-", ".seg")?;
        let Some((&lowest, _)) = segments.iter().next() else {
            // No segments at all: a WAL that has never been written (or
            // a directory race during adoption). Nothing to ship.
            return Ok(TailChunk::CaughtUp);
        };
        if segment < lowest {
            return self.snapshot_chunk(lowest);
        }
        let mut seg = segment;
        let mut off = offset;
        loop {
            let Some(path) = segments.get(&seg) else {
                // Past the highest segment: caught up (the id can only
                // be one the follower previously saw, so it is the
                // frontier, not garbage).
                return Ok(TailChunk::CaughtUp);
            };
            let bytes = fs::read(path)?;
            if off > bytes.len() as u64 {
                return Err(io::Error::new(
                    io::ErrorKind::InvalidInput,
                    "replication offset beyond segment length",
                ));
            }
            let rest = bytes.get(off as usize..).unwrap_or_default();
            let take = complete_frames_prefix(rest, self.chunk_bytes);
            if take > 0 {
                let chunk = rest.get(..take).unwrap_or_default().to_vec();
                return Ok(TailChunk::Records {
                    segment: seg,
                    offset: off,
                    bytes: chunk,
                });
            }
            // Nothing complete here. If a later segment exists, this one
            // is sealed (rotation creates the successor before the first
            // append to it) and the stream continues at the next id.
            match segments.range(seg + 1..).next() {
                Some((&next, _)) => {
                    seg = next;
                    off = 0;
                }
                None => return Ok(TailChunk::CaughtUp),
            }
        }
    }

    /// Builds the snapshot re-base chunk for a pruned position: the
    /// newest snapshot whose cut the surviving segments start at.
    fn snapshot_chunk(&self, lowest_segment: u64) -> io::Result<TailChunk> {
        let snapshots = list_family(&self.dir, "snap-", ".ss")?;
        let Some((&snap_id, path)) = snapshots.range(..=lowest_segment).next_back() else {
            return Err(io::Error::new(
                io::ErrorKind::NotFound,
                "replication position pruned and no snapshot covers it",
            ));
        };
        let bytes = fs::read(path)?;
        Ok(TailChunk::Snapshot { snap_id, bytes })
    }
}

/// Length of the longest prefix of `buf` made of complete frames, at
/// most `cap` bytes — except that the first frame is always taken whole
/// (a single record larger than the cap must still ship). Walks the
/// 20-byte headers' declared payload lengths; a partially-visible tail
/// record is excluded.
fn complete_frames_prefix(buf: &[u8], cap: usize) -> usize {
    let mut at = 0usize;
    loop {
        let Some(header) = buf.get(at..at + HEADER_LEN) else {
            return at;
        };
        let Some(len_bytes) = header.get(8..12) else {
            return at;
        };
        let Ok(len_arr) = <[u8; 4]>::try_from(len_bytes) else {
            return at;
        };
        let payload_len = u32::from_le_bytes(len_arr) as usize;
        let Some(end) = at
            .checked_add(HEADER_LEN)
            .and_then(|x| x.checked_add(payload_len))
        else {
            return at;
        };
        if end > buf.len() {
            return at; // tail record not fully visible yet
        }
        if at > 0 && end > cap {
            return at; // chunk full; the next poll picks this frame up
        }
        at = end;
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::wal::{segment_path, DedupEntry, SnapshotBlob, Wal, WalConfig};
    use std::io::Write;
    use std::path::Path;
    use std::sync::atomic::{AtomicU64, Ordering};
    use stream_model::update::Update;
    use stream_wire::{Frame, StreamId};

    fn scratch_dir(tag: &str) -> PathBuf {
        static NEXT: AtomicU64 = AtomicU64::new(0);
        let n = NEXT.fetch_add(1, Ordering::Relaxed);
        let dir =
            std::env::temp_dir().join(format!("ss-tailer-{}-{}-{}", tag, std::process::id(), n));
        let _ = fs::remove_dir_all(&dir);
        dir
    }

    fn batch_frame(seq: u64, base: u64) -> Vec<u8> {
        Frame::UpdateBatch {
            stream: StreamId::F,
            client_id: 3,
            seq,
            updates: (0..4).map(|i| Update::insert(base + i)).collect(),
        }
        .encode()
    }

    fn config(dir: &Path) -> WalConfig {
        WalConfig {
            dir: dir.to_path_buf(),
            segment_bytes: 64 << 20,
            snapshot_every: 0,
            fsync: false,
        }
    }

    /// Drains the tailer from `(0, 0)` into a flat byte vector the way
    /// a follower would, returning the bytes and the final position.
    fn drain(tailer: &WalTailer) -> (Vec<u8>, u64, u64) {
        let (mut seg, mut off) = (0u64, 0u64);
        let mut out = Vec::new();
        loop {
            match tailer.read_from(seg, off).unwrap() {
                TailChunk::Records {
                    segment,
                    offset,
                    bytes,
                } => {
                    assert!(
                        segment > seg || (segment == seg && offset == off),
                        "chunk position {segment}/{offset} must continue {seg}/{off}"
                    );
                    seg = segment;
                    off = offset + bytes.len() as u64;
                    out.extend_from_slice(&bytes);
                }
                TailChunk::Snapshot { .. } => panic!("unexpected snapshot chunk"),
                TailChunk::CaughtUp => return (out, seg, off),
            }
        }
    }

    #[test]
    fn tails_records_and_reports_caught_up() {
        let dir = scratch_dir("basic");
        let (mut wal, _) = Wal::open(config(&dir)).unwrap();
        let mut expect = Vec::new();
        for seq in 1..=5u64 {
            let f = batch_frame(seq, seq * 10);
            wal.append_encoded(&f).unwrap();
            expect.extend_from_slice(&f);
        }
        let tailer = WalTailer::new(&dir);
        let (got, seg, off) = drain(&tailer);
        assert_eq!(got, expect, "the shipped stream is the WAL byte stream");
        // At the frontier the tailer reports caught up, and stays there.
        assert_eq!(tailer.read_from(seg, off).unwrap(), TailChunk::CaughtUp);
        // New appends become visible to the same position.
        let f = batch_frame(6, 60);
        wal.append_encoded(&f).unwrap();
        match tailer.read_from(seg, off).unwrap() {
            TailChunk::Records { bytes, .. } => assert_eq!(bytes, f),
            other => panic!("expected records, got {other:?}"),
        }
        fs::remove_dir_all(&dir).unwrap();
    }

    #[test]
    fn chunk_cap_cuts_at_frame_boundaries() {
        let dir = scratch_dir("cap");
        let (mut wal, _) = Wal::open(config(&dir)).unwrap();
        let record = batch_frame(1, 1);
        let mut expect = Vec::new();
        for seq in 1..=6u64 {
            let f = batch_frame(seq, seq);
            wal.append_encoded(&f).unwrap();
            expect.extend_from_slice(&f);
        }
        // Cap of ~1.5 records: every chunk must still be whole frames.
        let tailer = WalTailer::with_chunk_bytes(&dir, record.len() * 3 / 2);
        let mut polls = 0;
        let (mut seg, mut off) = (0u64, 0u64);
        let mut out = Vec::new();
        loop {
            match tailer.read_from(seg, off).unwrap() {
                TailChunk::Records {
                    segment,
                    offset,
                    bytes,
                } => {
                    polls += 1;
                    assert_eq!(bytes.len() % record.len(), 0, "cut on a frame boundary");
                    seg = segment;
                    off = offset + bytes.len() as u64;
                    out.extend_from_slice(&bytes);
                }
                TailChunk::Snapshot { .. } => panic!("unexpected snapshot"),
                TailChunk::CaughtUp => break,
            }
        }
        assert_eq!(out, expect);
        assert!(polls >= 6, "the cap forced multiple polls, got {polls}");
        fs::remove_dir_all(&dir).unwrap();
    }

    #[test]
    fn follows_rotation_across_segments() {
        let dir = scratch_dir("rotation");
        let record = batch_frame(1, 1);
        let mut cfg = config(&dir);
        cfg.segment_bytes = 2 * record.len() as u64; // two records per segment
        let (mut wal, _) = Wal::open(cfg).unwrap();
        let mut expect = Vec::new();
        for seq in 1..=5u64 {
            let f = batch_frame(seq, seq);
            wal.append_encoded(&f).unwrap();
            expect.extend_from_slice(&f);
        }
        assert!(wal.active_segment_id() >= 2, "rotation actually happened");
        let tailer = WalTailer::new(&dir);
        let (got, seg, _) = drain(&tailer);
        assert_eq!(got, expect, "rotation is invisible in the byte stream");
        assert_eq!(seg, wal.active_segment_id());
        fs::remove_dir_all(&dir).unwrap();
    }

    #[test]
    fn partial_tail_record_is_excluded_until_complete() {
        let dir = scratch_dir("partial");
        let (mut wal, _) = Wal::open(config(&dir)).unwrap();
        let f1 = batch_frame(1, 1);
        wal.append_encoded(&f1).unwrap();
        // Simulate a record the primary is still writing: append only a
        // prefix of the next frame directly to the segment file.
        let f2 = batch_frame(2, 2);
        let seg_path = segment_path(&dir, wal.active_segment_id());
        fs::OpenOptions::new()
            .append(true)
            .open(&seg_path)
            .unwrap()
            .write_all(&f2[..f2.len() - 5])
            .unwrap();

        let tailer = WalTailer::new(&dir);
        match tailer.read_from(0, 0).unwrap() {
            TailChunk::Records { bytes, .. } => {
                assert_eq!(bytes, f1, "only the complete record ships");
            }
            other => panic!("expected records, got {other:?}"),
        }
        // Once the rest lands, the record ships whole.
        fs::OpenOptions::new()
            .append(true)
            .open(&seg_path)
            .unwrap()
            .write_all(&f2[f2.len() - 5..])
            .unwrap();
        match tailer.read_from(0, f1.len() as u64).unwrap() {
            TailChunk::Records { bytes, .. } => assert_eq!(bytes, f2),
            other => panic!("expected records, got {other:?}"),
        }
        fs::remove_dir_all(&dir).unwrap();
    }

    #[test]
    fn pruned_position_redirects_to_snapshot_bootstrap() {
        let dir = scratch_dir("pruned");
        let (mut wal, _) = Wal::open(config(&dir)).unwrap();
        for seq in 1..=3u64 {
            wal.append_encoded(&batch_frame(seq, seq)).unwrap();
        }
        let snap = SnapshotBlob {
            blobs: [vec![1, 2, 3], vec![4]],
            dedup: vec![DedupEntry {
                client_id: 3,
                last_seq: [3, 0],
            }],
        };
        wal.install_snapshot(&snap).unwrap();
        let snap_id = wal.active_segment_id();
        let post = batch_frame(4, 40);
        wal.append_encoded(&post).unwrap();

        // A follower still at the pruned position gets the snapshot…
        let tailer = WalTailer::new(&dir);
        let chunk = tailer.read_from(0, 0).unwrap();
        let TailChunk::Snapshot {
            snap_id: got,
            bytes,
        } = chunk
        else {
            panic!("expected snapshot chunk, got {chunk:?}");
        };
        assert_eq!(got, snap_id);
        assert_eq!(SnapshotBlob::decode(&bytes).unwrap(), snap);

        // …adopts it into its own WAL, and resumes the byte stream at
        // (snap_id, 0) — picking up the post-snapshot record.
        let follower_dir = scratch_dir("pruned-follower");
        let (mut follower, _) = Wal::open(config(&follower_dir)).unwrap();
        follower.adopt_snapshot(got, &bytes).unwrap();
        match tailer.read_from(got, 0).unwrap() {
            TailChunk::Records {
                segment,
                offset,
                bytes,
            } => {
                assert_eq!((segment, offset), (snap_id, 0));
                assert_eq!(bytes, post);
                follower.append_encoded(&bytes).unwrap();
            }
            other => panic!("expected records, got {other:?}"),
        }
        assert_eq!(follower.active_segment_id(), wal.active_segment_id());
        assert_eq!(follower.active_segment_len(), wal.active_segment_len());
        fs::remove_dir_all(&dir).unwrap();
        fs::remove_dir_all(&follower_dir).unwrap();
    }

    #[test]
    fn bad_positions_are_typed_errors() {
        let dir = scratch_dir("badpos");
        let (mut wal, _) = Wal::open(config(&dir)).unwrap();
        wal.append_encoded(&batch_frame(1, 1)).unwrap();
        let tailer = WalTailer::new(&dir);
        // Offset beyond the segment is an error, not an empty chunk.
        let err = tailer.read_from(0, 1 << 30).unwrap_err();
        assert_eq!(err.kind(), io::ErrorKind::InvalidInput);
        // An empty directory is just "caught up".
        let empty = scratch_dir("badpos-empty");
        fs::create_dir_all(&empty).unwrap();
        assert_eq!(
            WalTailer::new(&empty).read_from(0, 0).unwrap(),
            TailChunk::CaughtUp
        );
        fs::remove_dir_all(&dir).unwrap();
        fs::remove_dir_all(&empty).unwrap();
    }
}
