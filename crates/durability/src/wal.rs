//! Checksummed, segment-rotating write-ahead log of wire frames.
//!
//! ## On-disk layout
//!
//! A WAL directory holds two kinds of files:
//!
//! ```text
//! wal-%016x.seg    segment: a concatenation of encoded UPDATE_BATCH frames
//! snap-%016x.ss    snapshot: encoded sketch blobs + the idempotency table
//! ```
//!
//! Segment records are **verbatim [`Frame::encode`] bytes** — the same
//! 20-byte dual-CRC header that protects every byte on the wire protects
//! every byte on disk, and recovery is just [`Frame::read_from`] in a
//! loop. A torn tail (partial final record after a crash mid-write)
//! surfaces as the first decode error; recovery truncates the segment at
//! the last cleanly-decoded record and discards any later segments.
//!
//! The number in a snapshot's file name is the id of the first segment
//! **not** covered by it: recovery loads the newest valid snapshot and
//! replays only segments with id ≥ that number. [`Wal::install_snapshot`]
//! first rotates to a fresh segment so the boundary is exact, writes the
//! snapshot through a temp-file + rename (atomic on POSIX), then prunes
//! every segment and snapshot the new one supersedes.
//!
//! ## Write-ahead contract
//!
//! The server appends a batch's frame bytes **after** the ingest pool has
//! accepted it and **before** acknowledging the client, so the log holds
//! exactly the acknowledged batches. Because sketch ingestion is linear
//! (`sketch(f+g) = sketch(f) + sketch(g)`), replaying those batches into
//! the recovered snapshot reproduces the pre-crash sketch bit-for-bit, in
//! any order.

use std::collections::BTreeMap;
use std::fs::{self, File, OpenOptions};
use std::io::{self, Write};
use std::path::{Path, PathBuf};

use stream_wire::{crc32, Frame, StreamId, WireError, DEFAULT_MAX_PAYLOAD};

/// Snapshot-file magic: "Skimmed-Sketch Snapshot".
const SNAP_MAGIC: &[u8; 4] = b"SSNP";
/// Snapshot-file format version.
const SNAP_VERSION: u16 = 1;

/// Configuration for [`Wal::open`].
#[derive(Debug, Clone)]
pub struct WalConfig {
    /// Directory holding segments and snapshots (created if missing).
    pub dir: PathBuf,
    /// Rotate to a new segment once the active one reaches this size.
    pub segment_bytes: u64,
    /// Suggest a snapshot every this many appended batches
    /// (see [`Wal::wants_snapshot`]); `0` disables the suggestion.
    pub snapshot_every: u64,
    /// `fsync` after every append (durable against power loss) rather
    /// than only on rotation and snapshot install (durable against
    /// process crash).
    pub fsync: bool,
}

impl WalConfig {
    /// A config with production-ish defaults rooted at `dir`:
    /// 64 MiB segments, a snapshot suggestion every 4096 batches, no
    /// per-append fsync.
    pub fn new(dir: impl Into<PathBuf>) -> Self {
        WalConfig {
            dir: dir.into(),
            segment_bytes: 64 << 20,
            snapshot_every: 4096,
            fsync: false,
        }
    }
}

/// One logged batch, decoded during recovery.
#[derive(Debug, Clone, PartialEq)]
pub struct ReplayBatch {
    /// The join input the batch targets.
    pub stream: StreamId,
    /// Producer identity (`0` = unsequenced).
    pub client_id: u64,
    /// Producer sequence number.
    pub seq: u64,
    /// The batch's updates, in stream order.
    pub updates: Vec<stream_model::update::Update>,
}

/// Idempotency-table entry persisted inside a snapshot: the highest
/// applied sequence number per stream for one producer.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct DedupEntry {
    /// The producer identity.
    pub client_id: u64,
    /// Highest applied `seq`, indexed by `StreamId as usize`.
    pub last_seq: [u64; 2],
}

/// A point-in-time image of the server's durable state: one opaque
/// encoded-sketch blob per stream plus the idempotency table.
///
/// The blobs are whatever the caller's codec produced (the server stores
/// `stream_sketches::codec::encode_skimmed` output); this crate only
/// checksums and stores them.
#[derive(Debug, Clone, PartialEq, Default)]
pub struct SnapshotBlob {
    /// Encoded sketch per stream, indexed by `StreamId as usize`.
    pub blobs: [Vec<u8>; 2],
    /// The idempotency table at the moment of the snapshot.
    pub dedup: Vec<DedupEntry>,
}

impl SnapshotBlob {
    /// Serialises to the snapshot-file body + envelope:
    ///
    /// ```text
    /// magic "SSNP" | version u16-le | body_crc u32-le | body_len u64-le | body
    /// body := f_len u64-le | f blob | g_len u64-le | g blob
    ///       | n u32-le | n × (client_id u64-le, seq_f u64-le, seq_g u64-le)
    /// ```
    pub fn encode(&self) -> Vec<u8> {
        let mut body = Vec::new();
        for blob in &self.blobs {
            body.extend_from_slice(&(blob.len() as u64).to_le_bytes());
            body.extend_from_slice(blob);
        }
        // Deterministic bytes: entries sorted by producer identity.
        let mut entries = self.dedup.clone();
        entries.sort_by_key(|e| e.client_id);
        body.extend_from_slice(&(entries.len() as u32).to_le_bytes());
        for e in &entries {
            let [seq_f, seq_g] = e.last_seq;
            body.extend_from_slice(&e.client_id.to_le_bytes());
            body.extend_from_slice(&seq_f.to_le_bytes());
            body.extend_from_slice(&seq_g.to_le_bytes());
        }
        let mut out = Vec::with_capacity(18 + body.len());
        out.extend_from_slice(SNAP_MAGIC);
        out.extend_from_slice(&SNAP_VERSION.to_le_bytes());
        out.extend_from_slice(&crc32(&body).to_le_bytes());
        out.extend_from_slice(&(body.len() as u64).to_le_bytes());
        out.extend_from_slice(&body);
        out
    }

    /// Parses [`SnapshotBlob::encode`] bytes, verifying magic, version,
    /// length, and CRC. Any mismatch is `InvalidData`.
    pub fn decode(bytes: &[u8]) -> io::Result<Self> {
        let mut env = SnapCursor { buf: bytes };
        if env.take(4, "snapshot shorter than its envelope")? != SNAP_MAGIC {
            return Err(bad_snapshot("bad snapshot magic"));
        }
        let version = u16::from_le_bytes(env.array("snapshot shorter than its envelope")?);
        if version != SNAP_VERSION {
            return Err(bad_snapshot("unsupported snapshot version"));
        }
        let stored_crc = u32::from_le_bytes(env.array("snapshot shorter than its envelope")?);
        let body_len =
            u64::from_le_bytes(env.array("snapshot shorter than its envelope")?) as usize;
        let body = env.take(body_len, "snapshot body truncated")?;
        if !env.buf.is_empty() {
            return Err(bad_snapshot("snapshot has trailing bytes"));
        }
        if crc32(body) != stored_crc {
            return Err(bad_snapshot("snapshot body crc mismatch"));
        }
        let mut cur = SnapCursor { buf: body };
        let mut blobs: [Vec<u8>; 2] = [Vec::new(), Vec::new()];
        for blob in &mut blobs {
            let len = u64::from_le_bytes(cur.array("snapshot body short")?) as usize;
            *blob = cur.take(len, "snapshot body short")?.to_vec();
        }
        let n = u32::from_le_bytes(cur.array("snapshot body short")?) as usize;
        let mut dedup = Vec::with_capacity(n.min(1 << 16));
        for _ in 0..n {
            let client_id = u64::from_le_bytes(cur.array("snapshot body short")?);
            let seq_f = u64::from_le_bytes(cur.array("snapshot body short")?);
            let seq_g = u64::from_le_bytes(cur.array("snapshot body short")?);
            dedup.push(DedupEntry {
                client_id,
                last_seq: [seq_f, seq_g],
            });
        }
        if !cur.buf.is_empty() {
            return Err(bad_snapshot("snapshot body has trailing bytes"));
        }
        Ok(SnapshotBlob { blobs, dedup })
    }
}

/// `InvalidData` with a static description — every snapshot-decode
/// failure funnels through here.
fn bad_snapshot(what: &str) -> io::Error {
    io::Error::new(io::ErrorKind::InvalidData, what.to_string())
}

/// Panic-free little-endian cursor over snapshot bytes: every read is a
/// checked `split_at`, so a truncated or corrupt file surfaces as
/// `InvalidData` instead of an index panic.
struct SnapCursor<'a> {
    buf: &'a [u8],
}

impl<'a> SnapCursor<'a> {
    /// Consumes `n` bytes, or fails with `what`.
    fn take(&mut self, n: usize, what: &str) -> io::Result<&'a [u8]> {
        if self.buf.len() < n {
            return Err(bad_snapshot(what));
        }
        let (head, rest) = self.buf.split_at(n);
        self.buf = rest;
        Ok(head)
    }

    /// Consumes exactly `N` bytes as a fixed array, or fails with `what`.
    fn array<const N: usize>(&mut self, what: &str) -> io::Result<[u8; N]> {
        self.take(N, what)?
            .try_into()
            .map_err(|_| bad_snapshot(what))
    }
}

/// What [`Wal::open`] found on disk.
#[derive(Debug, Default)]
pub struct Recovered {
    /// The newest valid snapshot, if any.
    pub snapshot: Option<SnapshotBlob>,
    /// Every cleanly-logged batch after the snapshot cut, in log order.
    pub batches: Vec<ReplayBatch>,
    /// Segments scanned during replay.
    pub segments_replayed: u64,
    /// Bytes discarded from a torn tail (0 on a clean shutdown).
    pub torn_bytes: u64,
    /// Torn-tail truncation events this recovery performed (a segment
    /// cut at its last clean record counts once, whatever it dragged
    /// down with it). Kept as a count rather than a flag so the serving
    /// layer can feed it straight into a monotonic counter — silent
    /// truncation hides exactly the disk trouble that replication lag
    /// would otherwise surface first.
    pub torn_tail_truncations: u64,
    /// Corrupt snapshot files that were skipped.
    pub snapshots_skipped: u64,
}

impl Recovered {
    /// Total updates across all replayed batches.
    pub fn replayed_updates(&self) -> u64 {
        self.batches.iter().map(|b| b.updates.len() as u64).sum()
    }
}

/// A segment-rotating write-ahead log of encoded wire frames.
///
/// See the module docs for the on-disk layout and the write-ahead
/// contract. All methods take `&mut self`; the server serialises access
/// through its persist lock, which is also what makes the snapshot cut
/// exact.
pub struct Wal {
    config: WalConfig,
    /// Open handle to the active (highest-id) segment.
    active: File,
    active_id: u64,
    active_len: u64,
    appends_since_snapshot: u64,
}

impl std::fmt::Debug for Wal {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("Wal")
            .field("dir", &self.config.dir)
            .field("active_id", &self.active_id)
            .field("active_len", &self.active_len)
            .finish()
    }
}

pub(crate) fn segment_path(dir: &Path, id: u64) -> PathBuf {
    dir.join(format!("wal-{id:016x}.seg"))
}

pub(crate) fn snapshot_path(dir: &Path, id: u64) -> PathBuf {
    dir.join(format!("snap-{id:016x}.ss"))
}

/// Parses `prefix-%016x.suffix` file names; returns the hex id.
fn parse_id(name: &str, prefix: &str, suffix: &str) -> Option<u64> {
    let rest = name.strip_prefix(prefix)?.strip_suffix(suffix)?;
    if rest.len() != 16 {
        return None;
    }
    u64::from_str_radix(rest, 16).ok()
}

/// Lists `(id, path)` pairs for one file family, sorted by id.
pub(crate) fn list_family(
    dir: &Path,
    prefix: &str,
    suffix: &str,
) -> io::Result<BTreeMap<u64, PathBuf>> {
    let mut out = BTreeMap::new();
    for entry in fs::read_dir(dir)? {
        let entry = entry?;
        if let Some(name) = entry.file_name().to_str() {
            if let Some(id) = parse_id(name, prefix, suffix) {
                out.insert(id, entry.path());
            }
        }
    }
    Ok(out)
}

impl Wal {
    /// Opens (or creates) the log at `config.dir`, running recovery:
    /// load the newest valid snapshot, replay every later segment,
    /// truncate a torn tail at the first bad record, and discard any
    /// segments after the tear.
    pub fn open(config: WalConfig) -> io::Result<(Wal, Recovered)> {
        fs::create_dir_all(&config.dir)?;
        let mut recovered = Recovered::default();

        // Newest snapshot that actually decodes wins; corrupt ones are
        // skipped (never deleted — they may be evidence worth keeping).
        let snapshots = list_family(&config.dir, "snap-", ".ss")?;
        let mut base_id = 0u64;
        for (&id, path) in snapshots.iter().rev() {
            match fs::read(path).and_then(|bytes| SnapshotBlob::decode(&bytes)) {
                Ok(snap) => {
                    recovered.snapshot = Some(snap);
                    base_id = id;
                    break;
                }
                Err(_) => recovered.snapshots_skipped += 1,
            }
        }

        // Replay segments the snapshot does not cover, in id order.
        let segments = list_family(&config.dir, "wal-", ".seg")?;
        let mut torn_at: Option<u64> = None; // segment id of the tear
        let mut active_id = base_id;
        for (&id, path) in segments.range(base_id..) {
            if let Some(tear) = torn_at {
                // Everything after a tear was never acknowledged as
                // recovered state; drop it so appends restart cleanly.
                debug_assert!(id > tear);
                recovered.torn_bytes += fs::metadata(path)?.len();
                fs::remove_file(path)?;
                continue;
            }
            active_id = id;
            recovered.segments_replayed += 1;
            let bytes = fs::read(path)?;
            let mut at = 0usize;
            loop {
                // `at` only advances by decoded-frame lengths, so it never
                // passes `bytes.len()`; `.get(..)` keeps that invariant
                // panic-free even if a decoder bug broke it.
                match Frame::decode(bytes.get(at..).unwrap_or_default(), DEFAULT_MAX_PAYLOAD) {
                    Ok((
                        Frame::UpdateBatch {
                            stream,
                            client_id,
                            seq,
                            updates,
                        },
                        n,
                    )) => {
                        at += n;
                        recovered.batches.push(ReplayBatch {
                            stream,
                            client_id,
                            seq,
                            updates,
                        });
                    }
                    Err(WireError::Closed) => break, // clean end of segment
                    // Any other outcome — truncated record, CRC mismatch,
                    // or a frame kind that has no business in the log —
                    // is a torn tail: keep the clean prefix, cut the rest.
                    Ok((_, _)) | Err(_) => {
                        recovered.torn_bytes += (bytes.len() - at) as u64;
                        recovered.torn_tail_truncations += 1;
                        let file = OpenOptions::new().write(true).open(path)?;
                        file.set_len(at as u64)?;
                        file.sync_all()?;
                        torn_at = Some(id);
                        break;
                    }
                }
            }
        }

        let path = segment_path(&config.dir, active_id);
        let active = OpenOptions::new().create(true).append(true).open(&path)?;
        let active_len = active.metadata()?.len();
        let wal = Wal {
            config,
            active,
            active_id,
            active_len,
            appends_since_snapshot: recovered.batches.len() as u64,
        };
        Ok((wal, recovered))
    }

    /// Appends one already-encoded frame (the caller passes the exact
    /// bytes it sent or received on the wire), rotating first if the
    /// active segment is full.
    pub fn append_encoded(&mut self, frame_bytes: &[u8]) -> io::Result<()> {
        if self.active_len >= self.config.segment_bytes && self.active_len > 0 {
            self.rotate()?;
        }
        self.active.write_all(frame_bytes)?;
        self.active_len += frame_bytes.len() as u64;
        self.appends_since_snapshot += 1;
        if self.config.fsync {
            self.active.sync_data()?;
        }
        Ok(())
    }

    /// `true` once `snapshot_every` batches have been appended since the
    /// last snapshot (always `false` when the policy is disabled).
    pub fn wants_snapshot(&self) -> bool {
        self.config.snapshot_every > 0 && self.appends_since_snapshot >= self.config.snapshot_every
    }

    /// Atomically installs a snapshot and prunes everything it covers.
    ///
    /// Rotates to a fresh segment first, so the snapshot's id — the
    /// first segment it does *not* cover — is exact: replay after this
    /// call starts from an empty segment. The snapshot is written to a
    /// temp file, synced, then renamed into place; a crash at any point
    /// leaves either the old recovery state or the new one, never a
    /// half-written snapshot that recovery would trust.
    pub fn install_snapshot(&mut self, snap: &SnapshotBlob) -> io::Result<()> {
        self.rotate()?;
        let snap_id = self.active_id;
        let final_path = snapshot_path(&self.config.dir, snap_id);
        let tmp_path = final_path.with_extension("ss.tmp");
        {
            let mut tmp = File::create(&tmp_path)?;
            tmp.write_all(&snap.encode())?;
            tmp.sync_all()?;
        }
        fs::rename(&tmp_path, &final_path)?;
        self.appends_since_snapshot = 0;
        // Prune superseded files; failures here are cosmetic (recovery
        // ignores covered segments and older snapshots), so best-effort.
        for (id, path) in list_family(&self.config.dir, "wal-", ".seg")? {
            if id < snap_id {
                let _ = fs::remove_file(path);
            }
        }
        for (id, path) in list_family(&self.config.dir, "snap-", ".ss")? {
            if id < snap_id {
                let _ = fs::remove_file(path);
            }
        }
        Ok(())
    }

    /// Flushes the active segment to disk (used on graceful shutdown
    /// when per-append fsync is off).
    pub fn sync(&mut self) -> io::Result<()> {
        self.active.sync_data()
    }

    /// The id of the segment currently receiving appends.
    pub fn active_segment_id(&self) -> u64 {
        self.active_id
    }

    /// Bytes written to the active segment so far.
    pub fn active_segment_len(&self) -> u64 {
        self.active_len
    }

    /// Batches appended since the last snapshot install (or open).
    pub fn appends_since_snapshot(&self) -> u64 {
        self.appends_since_snapshot
    }

    /// The directory this log lives in.
    pub fn dir(&self) -> &Path {
        &self.config.dir
    }

    /// The configured segment-rotation threshold in bytes.
    ///
    /// Replication relies on rotation being a pure function of the
    /// appended byte stream and this threshold: a follower configured
    /// with the same value rotates at exactly the same records as its
    /// primary, which is what makes the follower's own
    /// `(active_segment_id, active_segment_len)` double as its offset
    /// into the primary's stream.
    pub fn segment_bytes(&self) -> u64 {
        self.config.segment_bytes
    }

    /// Seals the active segment and starts a fresh one: syncs, then
    /// rotates. Promotion uses this so a newly-promoted primary never
    /// appends into a segment that replicated bytes also landed in —
    /// the replicated prefix stays byte-identical to the dead primary's
    /// stream, frozen in its sealed segments.
    pub fn seal(&mut self) -> io::Result<()> {
        self.rotate()
    }

    /// Rotates directly to segment `id`: the replication apply path
    /// calls this when the primary's byte stream moved to a new segment
    /// (an early rotation from `install_snapshot`, invisible to the
    /// pure length rule), so the follower's log cuts its own segment at
    /// exactly the same record. No-op when `id` is already active;
    /// moving backwards is `InvalidInput`.
    pub fn rotate_to(&mut self, id: u64) -> io::Result<()> {
        if id == self.active_id {
            return Ok(());
        }
        if id < self.active_id {
            return Err(io::Error::new(
                io::ErrorKind::InvalidInput,
                "rotate_to would move the log backwards",
            ));
        }
        self.active.sync_data()?;
        self.active_id = id;
        let path = segment_path(&self.config.dir, id);
        self.active = OpenOptions::new().create(true).append(true).open(&path)?;
        self.active_len = self.active.metadata()?.len();
        Ok(())
    }

    /// Adopts a snapshot received from a replication primary, re-basing
    /// this log onto it. Every local segment and snapshot is removed
    /// (state not reachable through the adopted snapshot must never
    /// replay on top of it), the encoded blob is written as snapshot
    /// `snap_id` through the usual temp-file + rename, and an empty
    /// active segment `snap_id` is opened — so the next replicated byte
    /// lands at exactly `(snap_id, 0)`, the position the primary's
    /// stream resumes from after its prune. Returns the decoded blob
    /// for the caller to load into its live state.
    pub fn adopt_snapshot(&mut self, snap_id: u64, encoded: &[u8]) -> io::Result<SnapshotBlob> {
        let snap = SnapshotBlob::decode(encoded)?;
        for (_, path) in list_family(&self.config.dir, "wal-", ".seg")? {
            fs::remove_file(path)?;
        }
        for (_, path) in list_family(&self.config.dir, "snap-", ".ss")? {
            fs::remove_file(path)?;
        }
        let final_path = snapshot_path(&self.config.dir, snap_id);
        let tmp_path = final_path.with_extension("ss.tmp");
        {
            let mut tmp = File::create(&tmp_path)?;
            tmp.write_all(encoded)?;
            tmp.sync_all()?;
        }
        fs::rename(&tmp_path, &final_path)?;
        let path = segment_path(&self.config.dir, snap_id);
        self.active = OpenOptions::new().create(true).append(true).open(&path)?;
        self.active_id = snap_id;
        self.active_len = 0;
        self.appends_since_snapshot = 0;
        Ok(snap)
    }

    fn rotate(&mut self) -> io::Result<()> {
        self.active.sync_data()?;
        self.active_id += 1;
        let path = segment_path(&self.config.dir, self.active_id);
        self.active = OpenOptions::new().create(true).append(true).open(&path)?;
        self.active_len = 0;
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::atomic::{AtomicU64, Ordering};
    use stream_model::update::Update;

    /// Process-unique temp dir under the target-adjacent tmp root; no
    /// external tempfile crate in the offline environment.
    fn scratch_dir(tag: &str) -> PathBuf {
        static NEXT: AtomicU64 = AtomicU64::new(0);
        let n = NEXT.fetch_add(1, Ordering::Relaxed);
        let dir = std::env::temp_dir().join(format!("ss-wal-{}-{}-{}", tag, std::process::id(), n));
        let _ = fs::remove_dir_all(&dir);
        dir
    }

    fn batch_frame(stream: StreamId, client_id: u64, seq: u64, base: u64) -> Vec<u8> {
        Frame::UpdateBatch {
            stream,
            client_id,
            seq,
            updates: (0..4).map(|i| Update::insert(base + i)).collect(),
        }
        .encode()
    }

    fn small_config(dir: &Path) -> WalConfig {
        WalConfig {
            dir: dir.to_path_buf(),
            segment_bytes: 64 << 20,
            snapshot_every: 0,
            fsync: false,
        }
    }

    #[test]
    fn append_then_reopen_replays_in_order() {
        let dir = scratch_dir("replay");
        let (mut wal, rec) = Wal::open(small_config(&dir)).unwrap();
        assert!(rec.snapshot.is_none());
        assert!(rec.batches.is_empty());
        for seq in 1..=5u64 {
            wal.append_encoded(&batch_frame(StreamId::F, 7, seq, seq * 100))
                .unwrap();
        }
        wal.append_encoded(&batch_frame(StreamId::G, 7, 1, 9000))
            .unwrap();
        drop(wal);

        let (_, rec) = Wal::open(small_config(&dir)).unwrap();
        assert_eq!(rec.batches.len(), 6);
        assert_eq!(rec.torn_bytes, 0);
        assert_eq!(rec.replayed_updates(), 24);
        let seqs: Vec<(StreamId, u64)> = rec.batches.iter().map(|b| (b.stream, b.seq)).collect();
        assert_eq!(
            seqs,
            vec![
                (StreamId::F, 1),
                (StreamId::F, 2),
                (StreamId::F, 3),
                (StreamId::F, 4),
                (StreamId::F, 5),
                (StreamId::G, 1),
            ]
        );
        assert_eq!(rec.batches[0].updates[0], Update::insert(100));
        fs::remove_dir_all(&dir).unwrap();
    }

    #[test]
    fn torn_tail_is_truncated_and_log_stays_usable() {
        let dir = scratch_dir("torn");
        let (mut wal, _) = Wal::open(small_config(&dir)).unwrap();
        for seq in 1..=3u64 {
            wal.append_encoded(&batch_frame(StreamId::F, 1, seq, seq))
                .unwrap();
        }
        let seg = segment_path(&dir, wal.active_segment_id());
        drop(wal);

        // Crash mid-write: the last record stops partway through.
        let partial = &batch_frame(StreamId::F, 1, 4, 4)[..11];
        OpenOptions::new()
            .append(true)
            .open(&seg)
            .unwrap()
            .write_all(partial)
            .unwrap();

        let (mut wal, rec) = Wal::open(small_config(&dir)).unwrap();
        assert_eq!(rec.batches.len(), 3, "clean prefix survives");
        assert_eq!(rec.torn_bytes, 11, "partial record measured and cut");
        assert_eq!(rec.torn_tail_truncations, 1, "the cut is counted");

        // The log keeps working after the cut, and the next recovery is
        // clean: the tear never resurfaces.
        wal.append_encoded(&batch_frame(StreamId::F, 1, 4, 44))
            .unwrap();
        drop(wal);
        let (_, rec) = Wal::open(small_config(&dir)).unwrap();
        assert_eq!(rec.torn_bytes, 0);
        assert_eq!(rec.torn_tail_truncations, 0);
        assert_eq!(rec.batches.len(), 4);
        assert_eq!(rec.batches[3].updates[0], Update::insert(44));
        fs::remove_dir_all(&dir).unwrap();
    }

    #[test]
    fn corrupted_record_cuts_everything_after_it() {
        let dir = scratch_dir("corrupt");
        let (mut wal, _) = Wal::open(small_config(&dir)).unwrap();
        let frames: Vec<Vec<u8>> = (1..=4u64)
            .map(|seq| batch_frame(StreamId::G, 2, seq, seq))
            .collect();
        for f in &frames {
            wal.append_encoded(f).unwrap();
        }
        let seg = segment_path(&dir, wal.active_segment_id());
        drop(wal);

        // Flip one payload byte inside record 3 (offset = two whole
        // frames + header + a bit).
        let mut bytes = fs::read(&seg).unwrap();
        let offset = frames[0].len() + frames[1].len() + 22;
        bytes[offset] ^= 0x40;
        fs::write(&seg, &bytes).unwrap();

        let (_, rec) = Wal::open(small_config(&dir)).unwrap();
        // Records 3 *and* 4 are gone: after a bad CRC the reader cannot
        // trust it is at a frame boundary.
        assert_eq!(rec.batches.len(), 2);
        assert_eq!(rec.torn_bytes, (frames[2].len() + frames[3].len()) as u64);
        fs::remove_dir_all(&dir).unwrap();
    }

    #[test]
    fn rotation_spreads_records_across_segments() {
        let dir = scratch_dir("rotate");
        let mut config = small_config(&dir);
        config.segment_bytes = 1; // rotate after every record
        let (mut wal, _) = Wal::open(config.clone()).unwrap();
        for seq in 1..=4u64 {
            wal.append_encoded(&batch_frame(StreamId::F, 3, seq, seq))
                .unwrap();
        }
        drop(wal);

        let segments = list_family(&dir, "wal-", ".seg").unwrap();
        assert!(
            segments.len() >= 4,
            "expected ≥4 segments, found {}",
            segments.len()
        );
        let (_, rec) = Wal::open(config).unwrap();
        assert_eq!(rec.batches.len(), 4);
        assert_eq!(
            rec.batches.iter().map(|b| b.seq).collect::<Vec<_>>(),
            vec![1, 2, 3, 4]
        );
        fs::remove_dir_all(&dir).unwrap();
    }

    #[test]
    fn snapshot_install_prunes_and_bounds_replay() {
        let dir = scratch_dir("snap");
        let (mut wal, _) = Wal::open(small_config(&dir)).unwrap();
        for seq in 1..=3u64 {
            wal.append_encoded(&batch_frame(StreamId::F, 9, seq, seq))
                .unwrap();
        }
        let snap = SnapshotBlob {
            blobs: [vec![1, 2, 3], vec![4, 5]],
            dedup: vec![DedupEntry {
                client_id: 9,
                last_seq: [3, 0],
            }],
        };
        wal.install_snapshot(&snap).unwrap();
        assert_eq!(wal.appends_since_snapshot(), 0);
        // Post-snapshot traffic.
        wal.append_encoded(&batch_frame(StreamId::F, 9, 4, 400))
            .unwrap();
        drop(wal);

        // Pre-snapshot segments are gone.
        let segments = list_family(&dir, "wal-", ".seg").unwrap();
        assert!(segments.keys().all(|&id| id >= 1));

        let (_, rec) = Wal::open(small_config(&dir)).unwrap();
        assert_eq!(rec.snapshot.as_ref().unwrap(), &snap);
        assert_eq!(rec.batches.len(), 1, "only post-snapshot batches replay");
        assert_eq!(rec.batches[0].seq, 4);
        fs::remove_dir_all(&dir).unwrap();
    }

    #[test]
    fn newer_corrupt_snapshot_is_skipped_for_older_valid_one() {
        let dir = scratch_dir("snapskip");
        let (mut wal, _) = Wal::open(small_config(&dir)).unwrap();
        wal.append_encoded(&batch_frame(StreamId::F, 5, 1, 10))
            .unwrap();
        let good = SnapshotBlob {
            blobs: [vec![0xAA; 16], vec![]],
            dedup: vec![],
        };
        wal.install_snapshot(&good).unwrap();
        wal.append_encoded(&batch_frame(StreamId::F, 5, 2, 20))
            .unwrap();
        drop(wal);

        // A later snapshot that never finished correctly: valid prefix,
        // corrupt body.
        let mut bad = good.encode();
        let last = bad.len() - 1;
        bad[last] ^= 0xFF;
        fs::write(snapshot_path(&dir, 99), &bad).unwrap();

        let (_, rec) = Wal::open(small_config(&dir)).unwrap();
        assert_eq!(rec.snapshots_skipped, 1);
        assert_eq!(rec.snapshot.as_ref().unwrap(), &good);
        // Replay still starts from the *valid* snapshot's cut.
        assert_eq!(rec.batches.len(), 1);
        assert_eq!(rec.batches[0].seq, 2);
        fs::remove_dir_all(&dir).unwrap();
    }

    #[test]
    fn rotation_landing_on_snapshot_cut_boundary() {
        // A segment rotation that lands exactly where a snapshot cuts:
        // fill segments to their rotation point, install a snapshot (its
        // own rotation makes the cut), keep appending, and check that
        // prune + recovery agree on the boundary — rotation, prune, and
        // replay in one test instead of incidentally via the chaos
        // suite.
        let dir = scratch_dir("cutboundary");
        let record = batch_frame(StreamId::F, 6, 1, 1);
        let mut config = small_config(&dir);
        // Exactly two records per segment: the third append rotates.
        config.segment_bytes = 2 * record.len() as u64;
        let (mut wal, _) = Wal::open(config.clone()).unwrap();
        for seq in 1..=4u64 {
            wal.append_encoded(&batch_frame(StreamId::F, 6, seq, seq))
                .unwrap();
        }
        // Segment 0 holds seqs 1-2 (full), segment 1 holds seqs 3-4
        // (full): the next append would rotate anyway, so the snapshot's
        // rotation lands exactly on the length-rule boundary.
        assert_eq!(wal.active_segment_id(), 1);
        assert_eq!(wal.active_segment_len(), config.segment_bytes);
        let snap = SnapshotBlob {
            blobs: [vec![0xCC; 8], vec![]],
            dedup: vec![DedupEntry {
                client_id: 6,
                last_seq: [4, 0],
            }],
        };
        wal.install_snapshot(&snap).unwrap();
        assert_eq!(wal.active_segment_id(), 2, "cut opened a fresh segment");
        assert_eq!(wal.active_segment_len(), 0);
        // Post-cut traffic lands in segment 2.
        for seq in 5..=6u64 {
            wal.append_encoded(&batch_frame(StreamId::F, 6, seq, seq * 10))
                .unwrap();
        }
        drop(wal);

        // Prune removed exactly the covered segments…
        let segments = list_family(&dir, "wal-", ".seg").unwrap();
        assert_eq!(segments.keys().copied().collect::<Vec<_>>(), vec![2]);
        // …and recovery replays only from the cut.
        let (wal, rec) = Wal::open(config).unwrap();
        assert_eq!(rec.snapshot.as_ref().unwrap(), &snap);
        assert_eq!(
            rec.batches.iter().map(|b| b.seq).collect::<Vec<_>>(),
            vec![5, 6]
        );
        assert_eq!(rec.torn_bytes, 0);
        assert_eq!(wal.active_segment_id(), 2);
        fs::remove_dir_all(&dir).unwrap();
    }

    #[test]
    fn rotate_to_cuts_segments_at_the_callers_boundary() {
        let dir = scratch_dir("rotateto");
        let (mut wal, _) = Wal::open(small_config(&dir)).unwrap();
        wal.append_encoded(&batch_frame(StreamId::F, 2, 1, 1))
            .unwrap();
        // Jump to the primary's (non-adjacent) segment id.
        wal.rotate_to(5).unwrap();
        assert_eq!(wal.active_segment_id(), 5);
        assert_eq!(wal.active_segment_len(), 0);
        wal.append_encoded(&batch_frame(StreamId::F, 2, 2, 2))
            .unwrap();
        // Idempotent at the same id, refused backwards.
        wal.rotate_to(5).unwrap();
        assert!(wal.rotate_to(3).is_err());
        drop(wal);

        let (_, rec) = Wal::open(small_config(&dir)).unwrap();
        assert_eq!(
            rec.batches.iter().map(|b| b.seq).collect::<Vec<_>>(),
            vec![1, 2]
        );
        fs::remove_dir_all(&dir).unwrap();
    }

    #[test]
    fn adopt_snapshot_rebases_the_log() {
        let dir = scratch_dir("adopt");
        let (mut wal, _) = Wal::open(small_config(&dir)).unwrap();
        // Local state that the adopted snapshot must wipe out.
        wal.append_encoded(&batch_frame(StreamId::F, 8, 1, 1))
            .unwrap();

        let snap = SnapshotBlob {
            blobs: [vec![7; 32], vec![9; 16]],
            dedup: vec![DedupEntry {
                client_id: 8,
                last_seq: [12, 0],
            }],
        };
        let decoded = wal.adopt_snapshot(9, &snap.encode()).unwrap();
        assert_eq!(decoded, snap);
        assert_eq!(wal.active_segment_id(), 9);
        assert_eq!(wal.active_segment_len(), 0);
        // The stream resumes at (9, 0).
        wal.append_encoded(&batch_frame(StreamId::F, 8, 13, 13))
            .unwrap();
        drop(wal);

        let (_, rec) = Wal::open(small_config(&dir)).unwrap();
        assert_eq!(rec.snapshot.as_ref().unwrap(), &snap);
        assert_eq!(rec.batches.len(), 1, "pre-adoption record is gone");
        assert_eq!(rec.batches[0].seq, 13);

        // A corrupt blob is refused without touching the log.
        let (mut wal, _) = Wal::open(small_config(&dir)).unwrap();
        assert!(wal.adopt_snapshot(11, &[1, 2, 3]).is_err());
        assert_eq!(wal.active_segment_id(), 9);
        fs::remove_dir_all(&dir).unwrap();
    }

    #[test]
    fn seal_freezes_the_replicated_prefix() {
        let dir = scratch_dir("seal");
        let (mut wal, _) = Wal::open(small_config(&dir)).unwrap();
        wal.append_encoded(&batch_frame(StreamId::G, 4, 1, 1))
            .unwrap();
        let sealed = wal.active_segment_id();
        wal.seal().unwrap();
        assert_eq!(wal.active_segment_id(), sealed + 1);
        assert_eq!(wal.active_segment_len(), 0);
        // Post-seal appends never touch the sealed segment.
        let before = fs::metadata(segment_path(&dir, sealed)).unwrap().len();
        wal.append_encoded(&batch_frame(StreamId::G, 4, 2, 2))
            .unwrap();
        assert_eq!(
            fs::metadata(segment_path(&dir, sealed)).unwrap().len(),
            before
        );
        fs::remove_dir_all(&dir).unwrap();
    }

    #[test]
    fn snapshot_blob_round_trips() {
        let snap = SnapshotBlob {
            blobs: [vec![9; 100], vec![]],
            dedup: vec![
                DedupEntry {
                    client_id: 2,
                    last_seq: [0, 7],
                },
                DedupEntry {
                    client_id: 1,
                    last_seq: [u64::MAX, 1],
                },
            ],
        };
        let bytes = snap.encode();
        let back = SnapshotBlob::decode(&bytes).unwrap();
        assert_eq!(back.blobs, snap.blobs);
        // Entries come back sorted by client_id.
        assert_eq!(back.dedup[0].client_id, 1);
        assert_eq!(back.dedup[1].client_id, 2);
        // Every single-byte corruption is caught.
        for i in [0usize, 5, 9, 17, bytes.len() - 1] {
            let mut evil = bytes.clone();
            evil[i] ^= 0x01;
            assert!(SnapshotBlob::decode(&evil).is_err(), "byte {i} accepted");
        }
    }

    #[test]
    fn wants_snapshot_follows_policy() {
        let dir = scratch_dir("policy");
        let mut config = small_config(&dir);
        config.snapshot_every = 2;
        let (mut wal, _) = Wal::open(config).unwrap();
        assert!(!wal.wants_snapshot());
        wal.append_encoded(&batch_frame(StreamId::F, 1, 1, 1))
            .unwrap();
        assert!(!wal.wants_snapshot());
        wal.append_encoded(&batch_frame(StreamId::F, 1, 2, 2))
            .unwrap();
        assert!(wal.wants_snapshot());
        wal.install_snapshot(&SnapshotBlob::default()).unwrap();
        assert!(!wal.wants_snapshot());
        fs::remove_dir_all(&dir).unwrap();
    }
}
