//! # stream-durability
//!
//! The fault-tolerance layer under the skimmed-sketch serving stack.
//!
//! The estimator's guarantees (PAPER.md §5) are only worth deploying if
//! the sketch state survives the realities of a long-running server:
//! process crashes, torn writes, flaky links, poisoned batches. This
//! crate supplies the two durable halves of that story:
//!
//! * [`Wal`] — a checksummed, segment-rotating **write-ahead log** whose
//!   records are verbatim [`stream_wire::Frame`] encodings (UPDATE_BATCH
//!   frames), so every byte on disk is protected by the same dual
//!   CRC-32 framing as every byte on the wire. Periodic **snapshots**
//!   (opaque encoded-sketch blobs plus the idempotency table) bound
//!   replay time and let old segments be pruned. Recovery truncates a
//!   torn tail at the first bad record and replays the rest — a server
//!   restarted over the same directory answers queries **bit-identically**
//!   to one that never crashed, because sketch ingestion is linear and
//!   the log holds exactly the acknowledged batches.
//! * [`FaultyTransport`] — a deterministic fault-injection TCP proxy
//!   seeded from a `u64`, able to flip bits, truncate, stall, trickle
//!   partial writes, and disconnect at chosen byte offsets of either
//!   direction. The chaos suite drives every recovery path through it.
//!   [`ConnPlan::stalls`] builds asymmetric per-direction stall
//!   schedules for deterministic replication-lag and heartbeat-miss
//!   tests.
//!
//! Replication rides on the same records: [`WalTailer`] reads a live
//! WAL directory and serves the byte stream (or a snapshot re-base for
//! pruned positions) in frame-boundary chunks, so a follower's log is
//! byte-identical to its primary's and the follower's own
//! `(active_segment_id, active_segment_len)` doubles as its replication
//! offset.
//!
//! The WAL knows nothing about sketches: snapshot payloads are opaque
//! byte blobs (the server stores `encode_skimmed` output), which keeps
//! this crate dependency-light and the codec authority where it already
//! lives.

#![forbid(unsafe_code)]
#![deny(missing_docs)]
#![warn(clippy::all)]

mod fault;
mod tailer;
mod wal;

pub use fault::{ConnPlan, Fault, FaultKind, FaultPlan, FaultyTransport};
pub use tailer::{TailChunk, WalTailer, DEFAULT_CHUNK_BYTES};
pub use wal::{DedupEntry, Recovered, ReplayBatch, SnapshotBlob, Wal, WalConfig};
