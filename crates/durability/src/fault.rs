//! Deterministic fault injection for the serving path.
//!
//! [`FaultyTransport`] is a TCP proxy that sits between a client and a
//! server and applies a [`FaultPlan`] — a per-connection, per-direction
//! list of faults pinned to exact **byte offsets** of the forwarded
//! stream. Because the trigger is a byte offset rather than a timer,
//! the same plan against the same traffic always tears the stream at
//! the same place: chaos tests are reproducible from a single `u64`
//! seed, and a failure seed can be replayed under a debugger.
//!
//! Five fault kinds cover the failure modes the wire protocol and the
//! WAL claim to survive:
//!
//! | kind           | models                                     |
//! |----------------|--------------------------------------------|
//! | `BitFlip`      | in-flight corruption past TCP's checksum   |
//! | `Truncate`     | half-close mid-frame (crashed peer)        |
//! | `Stall`        | a long scheduling or network pause         |
//! | `PartialWrite` | pathological segmentation / tiny congestion windows |
//! | `Disconnect`   | hard connection loss (RST, pulled cable)   |
//!
//! The proxy accepts any number of sequential connections (reconnect
//! loops are part of what gets tested); connections beyond the plan's
//! list are forwarded clean.

use std::io::{self, Read, Write};
use std::net::{Shutdown, SocketAddr, TcpListener, TcpStream};
use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::sync::Arc;
use std::thread::{self, JoinHandle};
use std::time::Duration;

/// What happens to the stream when a fault triggers.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum FaultKind {
    /// Flip bit `bit` (0..8) of the byte at the fault's offset, then
    /// keep forwarding. The receiver's CRCs must catch this.
    BitFlip {
        /// Which bit of the target byte to flip.
        bit: u8,
    },
    /// Forward everything before the offset, then half-close this
    /// direction. The peer sees a mid-frame EOF.
    Truncate,
    /// Forward everything before the offset, then pause this direction.
    Stall {
        /// Pause length in milliseconds.
        millis: u64,
    },
    /// From the offset on, deliver this direction's current buffer in
    /// `trickle`-byte writes separated by pauses — bytes arrive, but
    /// never a whole frame at once.
    PartialWrite {
        /// Bytes per write.
        trickle: usize,
        /// Pause between writes in milliseconds.
        millis: u64,
    },
    /// Forward everything before the offset, then tear down both
    /// directions of the connection.
    Disconnect,
}

/// One fault, armed at a byte offset of one direction of one connection.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Fault {
    /// Fires when this many bytes of the direction have been forwarded.
    pub offset: u64,
    /// What to do at that point.
    pub kind: FaultKind,
}

/// The faults for one proxied connection, split by direction.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct ConnPlan {
    /// Client → server faults.
    pub c2s: Vec<Fault>,
    /// Server → client faults.
    pub s2c: Vec<Fault>,
}

impl ConnPlan {
    /// A connection that is forwarded untouched.
    pub fn clean() -> Self {
        Self::default()
    }

    /// An asymmetric per-direction stall schedule: each `(offset,
    /// millis)` pair pauses its direction once that many bytes of it
    /// have been forwarded. The directions are independent — a
    /// client→server stall never delays server→client bytes — which is
    /// what makes replication-lag and heartbeat-miss tests
    /// deterministic: stall only the direction under test (e.g. the
    /// primary's REPLICATE chunks) at exact byte offsets instead of
    /// calibrating sleeps against the unstalled traffic.
    pub fn stalls(c2s: &[(u64, u64)], s2c: &[(u64, u64)]) -> Self {
        fn schedule(pairs: &[(u64, u64)]) -> Vec<Fault> {
            pairs
                .iter()
                .map(|&(offset, millis)| Fault {
                    offset,
                    kind: FaultKind::Stall { millis },
                })
                .collect()
        }
        ConnPlan {
            c2s: schedule(c2s),
            s2c: schedule(s2c),
        }
    }
}

/// A full fault schedule: one [`ConnPlan`] per accepted connection, in
/// accept order. Connections beyond the list are forwarded clean.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct FaultPlan {
    /// Per-connection plans, indexed by accept order.
    pub conns: Vec<ConnPlan>,
}

/// `xorshift64*` — tiny, deterministic, and plenty for picking fault
/// shapes. Not a crypto or statistical PRNG and does not need to be.
struct XorShift64(u64);

impl XorShift64 {
    fn new(seed: u64) -> Self {
        // Zero is the one absorbing state; nudge away from it.
        XorShift64(seed | 1)
    }

    fn next(&mut self) -> u64 {
        let mut x = self.0;
        x ^= x << 13;
        x ^= x >> 7;
        x ^= x << 17;
        self.0 = x;
        x.wrapping_mul(0x2545_F491_4F6C_DD1D)
    }

    fn below(&mut self, n: u64) -> u64 {
        self.next() % n
    }
}

impl FaultPlan {
    /// Derives a plan for `conns` connections from a seed. The mapping
    /// is pure: the same `(seed, conns)` always yields the same plan,
    /// so a chaos matrix is just a list of integers.
    ///
    /// Each connection gets one fault in one direction: kind, direction,
    /// and offset (8..=2048 — inside the first few frames of a session)
    /// all drawn from the seed. Stalls are kept short (≤ 100 ms) so
    /// seeded suites stay fast.
    pub fn from_seed(seed: u64, conns: usize) -> Self {
        let mut rng = XorShift64::new(seed);
        let mut plan = FaultPlan::default();
        for _ in 0..conns {
            let offset = 8 + rng.below(2041);
            let kind = match rng.below(5) {
                0 => FaultKind::BitFlip {
                    bit: (rng.below(8)) as u8,
                },
                1 => FaultKind::Truncate,
                2 => FaultKind::Stall {
                    millis: 20 + rng.below(81),
                },
                3 => FaultKind::PartialWrite {
                    trickle: 1 + rng.below(7) as usize,
                    millis: 1 + rng.below(5),
                },
                _ => FaultKind::Disconnect,
            };
            let fault = Fault { offset, kind };
            let mut conn = ConnPlan::clean();
            if rng.below(2) == 0 {
                conn.c2s.push(fault);
            } else {
                conn.s2c.push(fault);
            }
            plan.conns.push(conn);
        }
        plan
    }

    /// The same per-connection plan for each of `conns` accepted
    /// connections — reconnect loops (a follower's capped-jitter
    /// redial, a router's retry) keep hitting the same schedule instead
    /// of falling off the end of the list into clean forwarding.
    pub fn repeated(conn: ConnPlan, conns: usize) -> Self {
        FaultPlan {
            conns: vec![conn; conns],
        }
    }
}

/// How often pump threads wake up to check the stop flag.
const POLL: Duration = Duration::from_millis(25);

/// A fault-injecting TCP proxy in front of one upstream address.
///
/// Listens on an ephemeral loopback port; point the client at
/// [`FaultyTransport::local_addr`] instead of the real server. Each
/// accepted connection is paired with a fresh upstream connection and
/// pumped in both directions by two threads that apply the plan's
/// faults at their byte offsets.
pub struct FaultyTransport {
    local_addr: SocketAddr,
    stop: Arc<AtomicBool>,
    accepted: Arc<AtomicU64>,
    acceptor: Option<JoinHandle<()>>,
}

impl FaultyTransport {
    /// Starts the proxy in front of `upstream` with the given plan.
    pub fn start(upstream: SocketAddr, plan: FaultPlan) -> io::Result<Self> {
        let listener = TcpListener::bind("127.0.0.1:0")?;
        let local_addr = listener.local_addr()?;
        listener.set_nonblocking(true)?;
        let stop = Arc::new(AtomicBool::new(false));
        let accepted = Arc::new(AtomicU64::new(0));
        let acceptor = {
            let stop = Arc::clone(&stop);
            let accepted = Arc::clone(&accepted);
            thread::Builder::new()
                .name("faulty-transport".into())
                .spawn(move || accept_loop(listener, upstream, plan, stop, accepted))
                // ss-analyze: allow(a2-panic-free) -- deterministic fault-injection test harness, not a serving path; failing to spawn the proxy thread should abort the test loudly
                .expect("spawn faulty-transport acceptor")
        };
        Ok(FaultyTransport {
            local_addr,
            stop,
            accepted,
            acceptor: Some(acceptor),
        })
    }

    /// The address clients should connect to.
    pub fn local_addr(&self) -> SocketAddr {
        self.local_addr
    }

    /// Connections accepted so far (reconnect tests assert on this).
    pub fn connections(&self) -> u64 {
        self.accepted.load(Ordering::Acquire)
    }

    /// Stops accepting and tears down all pump threads.
    pub fn stop(mut self) {
        self.shutdown();
    }

    fn shutdown(&mut self) {
        self.stop.store(true, Ordering::Release);
        if let Some(handle) = self.acceptor.take() {
            let _ = handle.join();
        }
    }
}

impl Drop for FaultyTransport {
    fn drop(&mut self) {
        self.shutdown();
    }
}

fn accept_loop(
    listener: TcpListener,
    upstream: SocketAddr,
    plan: FaultPlan,
    stop: Arc<AtomicBool>,
    accepted: Arc<AtomicU64>,
) {
    let mut pumps: Vec<JoinHandle<()>> = Vec::new();
    while !stop.load(Ordering::Acquire) {
        match listener.accept() {
            Ok((client, _)) => {
                let idx = accepted.fetch_add(1, Ordering::AcqRel) as usize;
                let conn_plan = plan.conns.get(idx).cloned().unwrap_or_default();
                match TcpStream::connect_timeout(&upstream, Duration::from_secs(5)) {
                    Ok(server) => {
                        pumps.extend(spawn_pumps(client, server, conn_plan, Arc::clone(&stop)))
                    }
                    Err(_) => drop(client), // upstream gone: refuse by closing
                }
            }
            Err(e) if e.kind() == io::ErrorKind::WouldBlock => thread::sleep(POLL),
            Err(_) => break,
        }
    }
    for pump in pumps {
        let _ = pump.join();
    }
}

/// Wires `client` and `server` together with two fault-applying pump
/// threads sharing a per-connection kill switch (for `Disconnect`).
fn spawn_pumps(
    client: TcpStream,
    server: TcpStream,
    plan: ConnPlan,
    stop: Arc<AtomicBool>,
) -> Vec<JoinHandle<()>> {
    let conn_dead = Arc::new(AtomicBool::new(false));
    let c2 = client.try_clone();
    let s2 = server.try_clone();
    let (Ok(client_rx), Ok(server_rx)) = (c2, s2) else {
        return Vec::new();
    };
    let up = {
        let stop = Arc::clone(&stop);
        let dead = Arc::clone(&conn_dead);
        thread::spawn(move || pump(client_rx, server, plan.c2s, stop, dead))
    };
    let down = {
        let stop = Arc::clone(&stop);
        let dead = Arc::clone(&conn_dead);
        thread::spawn(move || pump(server_rx, client, plan.s2c, stop, dead))
    };
    vec![up, down]
}

/// Forwards `src` → `dst`, applying `faults` at their byte offsets.
/// Exits on EOF, I/O error, proxy stop, or the connection kill switch.
fn pump(
    src: TcpStream,
    mut dst: TcpStream,
    mut faults: Vec<Fault>,
    stop: Arc<AtomicBool>,
    conn_dead: Arc<AtomicBool>,
) {
    faults.sort_by_key(|f| f.offset);
    let mut src = src;
    if src.set_read_timeout(Some(POLL)).is_err() {
        return;
    }
    let mut pos: u64 = 0; // bytes forwarded so far in this direction
    let mut buf = [0u8; 16 << 10];
    'outer: loop {
        if stop.load(Ordering::Acquire) || conn_dead.load(Ordering::Acquire) {
            break;
        }
        let n = match src.read(&mut buf) {
            Ok(0) => break, // peer closed: propagate EOF
            Ok(n) => n,
            Err(e)
                if e.kind() == io::ErrorKind::WouldBlock || e.kind() == io::ErrorKind::TimedOut =>
            {
                continue;
            }
            Err(_) => break,
        };
        // ss-analyze: allow(a2-panic-free) -- test-harness proxy; `read` contracts `n <= buf.len()`
        let mut chunk = &mut buf[..n];
        // Apply every fault that lands inside this chunk, in offset
        // order; `pos` tracks the stream offset of `chunk[0]`.
        while let Some(fault) = faults.first().copied() {
            if fault.offset >= pos + chunk.len() as u64 {
                break;
            }
            faults.remove(0);
            let split = (fault.offset.saturating_sub(pos)) as usize;
            match fault.kind {
                FaultKind::BitFlip { bit } => {
                    // ss-analyze: allow(a2-panic-free) -- `split < chunk.len()` by the `fault.offset >= pos + chunk.len()` guard above
                    chunk[split] ^= 1 << (bit & 7);
                    // A flip corrupts in place; forwarding continues.
                }
                FaultKind::Truncate => {
                    // ss-analyze: allow(a2-panic-free) -- `split < chunk.len()` by the same offset guard
                    let _ = dst.write_all(&chunk[..split]);
                    let _ = dst.flush();
                    let _ = dst.shutdown(Shutdown::Write);
                    let _ = src.shutdown(Shutdown::Read);
                    break 'outer;
                }
                FaultKind::Stall { millis } => {
                    let (head, rest) = chunk.split_at_mut(split);
                    if dst.write_all(head).is_err() {
                        break 'outer;
                    }
                    let _ = dst.flush();
                    sleep_unless(&stop, &conn_dead, millis);
                    pos += head.len() as u64;
                    chunk = rest;
                }
                FaultKind::PartialWrite { trickle, millis } => {
                    let (head, rest) = chunk.split_at_mut(split);
                    if dst.write_all(head).is_err() {
                        break 'outer;
                    }
                    pos += head.len() as u64;
                    let step = trickle.max(1);
                    for piece in rest.chunks(step) {
                        if dst.write_all(piece).is_err() {
                            break 'outer;
                        }
                        let _ = dst.flush();
                        pos += piece.len() as u64;
                        sleep_unless(&stop, &conn_dead, millis);
                    }
                    continue 'outer; // whole chunk already delivered
                }
                FaultKind::Disconnect => {
                    // ss-analyze: allow(a2-panic-free) -- `split < chunk.len()` by the same offset guard
                    let _ = dst.write_all(&chunk[..split]);
                    let _ = dst.flush();
                    conn_dead.store(true, Ordering::Release);
                    let _ = dst.shutdown(Shutdown::Both);
                    let _ = src.shutdown(Shutdown::Both);
                    break 'outer;
                }
            }
        }
        if dst.write_all(chunk).is_err() {
            break;
        }
        pos += chunk.len() as u64;
    }
    // Whatever ended this pump, let the peer observe the half-close
    // instead of hanging on a read.
    let _ = dst.shutdown(Shutdown::Write);
}

/// Sleeps up to `millis`, waking early if the proxy or connection dies.
fn sleep_unless(stop: &AtomicBool, conn_dead: &AtomicBool, millis: u64) {
    let mut remaining = Duration::from_millis(millis);
    while remaining > Duration::ZERO {
        if stop.load(Ordering::Acquire) || conn_dead.load(Ordering::Acquire) {
            return;
        }
        let step = remaining.min(POLL);
        thread::sleep(step);
        remaining -= step;
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::net::TcpListener;

    /// One-connection-at-a-time echo server; lives until dropped sockets
    /// end its accept loop (it is a daemon-ish test fixture).
    fn echo_server() -> (SocketAddr, Arc<AtomicBool>) {
        let listener = TcpListener::bind("127.0.0.1:0").unwrap();
        let addr = listener.local_addr().unwrap();
        let stop = Arc::new(AtomicBool::new(false));
        let flag = Arc::clone(&stop);
        listener.set_nonblocking(true).unwrap();
        thread::spawn(move || {
            while !flag.load(Ordering::Acquire) {
                match listener.accept() {
                    Ok((mut sock, _)) => {
                        let flag = Arc::clone(&flag);
                        thread::spawn(move || {
                            sock.set_read_timeout(Some(POLL)).unwrap();
                            let mut buf = [0u8; 4096];
                            while !flag.load(Ordering::Acquire) {
                                match sock.read(&mut buf) {
                                    Ok(0) => break,
                                    Ok(n) => {
                                        if sock.write_all(&buf[..n]).is_err() {
                                            break;
                                        }
                                    }
                                    Err(e)
                                        if e.kind() == io::ErrorKind::WouldBlock
                                            || e.kind() == io::ErrorKind::TimedOut =>
                                    {
                                        continue
                                    }
                                    Err(_) => break,
                                }
                            }
                        });
                    }
                    Err(e) if e.kind() == io::ErrorKind::WouldBlock => thread::sleep(POLL),
                    Err(_) => break,
                }
            }
        });
        (addr, stop)
    }

    fn talk(addr: SocketAddr, payload: &[u8]) -> io::Result<Vec<u8>> {
        let mut sock = TcpStream::connect(addr)?;
        sock.set_read_timeout(Some(Duration::from_secs(5)))?;
        sock.write_all(payload)?;
        sock.shutdown(Shutdown::Write)?;
        let mut back = Vec::new();
        sock.read_to_end(&mut back)?;
        Ok(back)
    }

    #[test]
    fn clean_plan_forwards_bytes_verbatim() {
        let (upstream, stop) = echo_server();
        let proxy = FaultyTransport::start(upstream, FaultPlan::default()).unwrap();
        let payload: Vec<u8> = (0..10_000u32).map(|i| (i % 251) as u8).collect();
        let back = talk(proxy.local_addr(), &payload).unwrap();
        assert_eq!(back, payload);
        assert_eq!(proxy.connections(), 1);
        proxy.stop();
        stop.store(true, Ordering::Release);
    }

    #[test]
    fn bit_flip_corrupts_exactly_one_bit() {
        let (upstream, stop) = echo_server();
        let plan = FaultPlan {
            conns: vec![ConnPlan {
                c2s: vec![Fault {
                    offset: 100,
                    kind: FaultKind::BitFlip { bit: 3 },
                }],
                s2c: vec![],
            }],
        };
        let proxy = FaultyTransport::start(upstream, plan).unwrap();
        let payload = vec![0u8; 1000];
        let back = talk(proxy.local_addr(), &payload).unwrap();
        assert_eq!(back.len(), 1000);
        assert_eq!(back[100], 1 << 3, "targeted byte flipped");
        let clean = back.iter().enumerate().all(|(i, &b)| i == 100 || b == 0);
        assert!(clean, "every other byte untouched");
        proxy.stop();
        stop.store(true, Ordering::Release);
    }

    #[test]
    fn truncate_delivers_exact_prefix() {
        let (upstream, stop) = echo_server();
        let plan = FaultPlan {
            conns: vec![ConnPlan {
                c2s: vec![],
                s2c: vec![Fault {
                    offset: 64,
                    kind: FaultKind::Truncate,
                }],
            }],
        };
        let proxy = FaultyTransport::start(upstream, plan).unwrap();
        let payload: Vec<u8> = (0..500u16).map(|i| i as u8).collect();
        let back = talk(proxy.local_addr(), &payload).unwrap();
        assert_eq!(back, &payload[..64], "reply cut mid-stream at offset 64");
        proxy.stop();
        stop.store(true, Ordering::Release);
    }

    #[test]
    fn disconnect_kills_the_connection_but_not_the_proxy() {
        let (upstream, stop) = echo_server();
        let mut plan = FaultPlan {
            conns: vec![ConnPlan {
                c2s: vec![Fault {
                    offset: 10,
                    kind: FaultKind::Disconnect,
                }],
                s2c: vec![],
            }],
        };
        plan.conns.push(ConnPlan::clean());
        let proxy = FaultyTransport::start(upstream, plan).unwrap();
        // First connection dies early…
        let back = talk(proxy.local_addr(), &vec![7u8; 256]);
        // A reset before any reply is also a valid outcome, hence no
        // assertion on the Err arm.
        if let Ok(bytes) = back {
            assert!(bytes.len() <= 10, "at most the pre-fault prefix echoes");
        }
        // …the next one sails through.
        let payload = vec![42u8; 256];
        let back = talk(proxy.local_addr(), &payload).unwrap();
        assert_eq!(back, payload);
        assert_eq!(proxy.connections(), 2);
        proxy.stop();
        stop.store(true, Ordering::Release);
    }

    #[test]
    fn partial_write_still_delivers_every_byte() {
        let (upstream, stop) = echo_server();
        let plan = FaultPlan {
            conns: vec![ConnPlan {
                c2s: vec![Fault {
                    offset: 32,
                    kind: FaultKind::PartialWrite {
                        trickle: 3,
                        millis: 1,
                    },
                }],
                s2c: vec![],
            }],
        };
        let proxy = FaultyTransport::start(upstream, plan).unwrap();
        let payload: Vec<u8> = (0..600u32).map(|i| (i * 7 % 256) as u8).collect();
        let back = talk(proxy.local_addr(), &payload).unwrap();
        assert_eq!(back, payload, "slow, but complete and uncorrupted");
        proxy.stop();
        stop.store(true, Ordering::Release);
    }

    #[test]
    fn stall_pauses_then_resumes() {
        let (upstream, stop) = echo_server();
        let plan = FaultPlan {
            conns: vec![ConnPlan {
                c2s: vec![],
                s2c: vec![Fault {
                    offset: 16,
                    kind: FaultKind::Stall { millis: 60 },
                }],
            }],
        };
        let proxy = FaultyTransport::start(upstream, plan).unwrap();
        let payload = vec![1u8; 128];
        let started = std::time::Instant::now();
        let back = talk(proxy.local_addr(), &payload).unwrap();
        assert_eq!(back, payload);
        assert!(
            started.elapsed() >= Duration::from_millis(50),
            "the stall was observable"
        );
        proxy.stop();
        stop.store(true, Ordering::Release);
    }

    #[test]
    fn stall_schedule_fires_every_entry_in_one_direction() {
        let (upstream, stop) = echo_server();
        // Three stalls on the request path only; the reply direction is
        // untouched.
        let plan = FaultPlan::repeated(ConnPlan::stalls(&[(8, 30), (16, 30), (24, 30)], &[]), 1);
        let proxy = FaultyTransport::start(upstream, plan).unwrap();
        let payload = vec![5u8; 64];
        let started = std::time::Instant::now();
        let back = talk(proxy.local_addr(), &payload).unwrap();
        assert_eq!(back, payload, "stalls delay, never drop or corrupt");
        assert!(
            started.elapsed() >= Duration::from_millis(80),
            "all three stalls were observable, got {:?}",
            started.elapsed()
        );
        proxy.stop();
        stop.store(true, Ordering::Release);
    }

    #[test]
    fn asymmetric_schedules_stall_each_direction_independently() {
        let (upstream, stop) = echo_server();
        // Different shapes per direction on the same connection: a
        // short early request stall, a long reply stall. Both fire, the
        // stream survives both.
        let plan = FaultPlan::repeated(ConnPlan::stalls(&[(4, 20)], &[(32, 60)]), 2);
        assert_eq!(plan.conns.len(), 2);
        assert_eq!(plan.conns[0], plan.conns[1], "repeated() clones the plan");
        let proxy = FaultyTransport::start(upstream, plan).unwrap();
        let payload: Vec<u8> = (0..200u8).collect();
        let started = std::time::Instant::now();
        let back = talk(proxy.local_addr(), &payload).unwrap();
        assert_eq!(back, payload);
        assert!(
            started.elapsed() >= Duration::from_millis(70),
            "both directions' stalls add up, got {:?}",
            started.elapsed()
        );
        // The second connection gets the same schedule (not clean
        // forwarding).
        let back = talk(proxy.local_addr(), &payload).unwrap();
        assert_eq!(back, payload);
        assert_eq!(proxy.connections(), 2);
        proxy.stop();
        stop.store(true, Ordering::Release);
    }

    #[test]
    fn seeded_plans_are_deterministic_and_seed_sensitive() {
        let a = FaultPlan::from_seed(0xDEAD_BEEF, 8);
        let b = FaultPlan::from_seed(0xDEAD_BEEF, 8);
        assert_eq!(a, b, "same seed, same plan");
        let c = FaultPlan::from_seed(0xDEAD_BEF0, 8);
        assert_ne!(a, c, "different seed, different plan");
        assert_eq!(a.conns.len(), 8);
        for conn in &a.conns {
            assert_eq!(
                conn.c2s.len() + conn.s2c.len(),
                1,
                "exactly one fault per connection"
            );
        }
    }
}
