//! Estimation-error metrics and small-sample statistics.
//!
//! The paper's §5.1 deliberately avoids the standard relative error
//! `|Ĵ − J| / J` because it is bounded by 1 for *any* underestimate (an
//! estimator that always answers 0 would look fine) while overestimates can
//! be penalized without bound. The symmetric **ratio error**
//! `max(Ĵ, J) / min(Ĵ, J) − 1` treats both sides alike; non-positive or
//! absurdly small estimates are clamped to a sanity constant (10, i.e.
//! "more than 10× off").

/// Sanity cap for the ratio error, per §5.1 of the paper: estimates that
/// are non-positive (or so small the ratio explodes) score exactly this.
pub const ERROR_SANITY_BOUND: f64 = 10.0;

/// The paper's symmetric ratio error between an estimate and the truth.
///
/// * Both zero → error 0 (the estimator nailed an empty join).
/// * Estimate ≤ 0 with positive truth (or vice versa) → sanity bound.
/// * Otherwise `max/min − 1`, clamped to the sanity bound.
pub fn ratio_error(estimate: f64, actual: f64) -> f64 {
    if actual == 0.0 && estimate == 0.0 {
        return 0.0;
    }
    if estimate <= 0.0 || actual <= 0.0 {
        return ERROR_SANITY_BOUND;
    }
    let (hi, lo) = if estimate >= actual {
        (estimate, actual)
    } else {
        (actual, estimate)
    };
    (hi / lo - 1.0).min(ERROR_SANITY_BOUND)
}

/// Plain relative error `|Ĵ − J| / J` (reported alongside the ratio error
/// for comparison). `None` when `actual == 0`, where the quotient is
/// undefined — an empty join has no meaningful relative scale.
pub fn relative_error(estimate: f64, actual: f64) -> Option<f64> {
    if actual == 0.0 {
        return None;
    }
    Some((estimate - actual).abs() / actual.abs())
}

/// Absolute (additive) error `|Ĵ − J|`.
pub fn absolute_error(estimate: f64, actual: f64) -> f64 {
    (estimate - actual).abs()
}

/// Summary statistics over repeated trials of one configuration.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct Summary {
    /// Number of samples aggregated.
    pub n: usize,
    /// Sample mean.
    pub mean: f64,
    /// Sample standard deviation (unbiased; 0 for n < 2).
    pub std_dev: f64,
    /// Smallest sample.
    pub min: f64,
    /// Median (midpoint convention for even n).
    pub median: f64,
    /// Largest sample.
    pub max: f64,
}

impl Summary {
    /// Computes a summary of `samples`; panics on an empty slice.
    pub fn of(samples: &[f64]) -> Self {
        assert!(!samples.is_empty(), "cannot summarize zero samples");
        let n = samples.len();
        let mean = samples.iter().sum::<f64>() / n as f64;
        let var = if n > 1 {
            samples.iter().map(|x| (x - mean).powi(2)).sum::<f64>() / (n - 1) as f64
        } else {
            0.0
        };
        let mut sorted = samples.to_vec();
        sorted.sort_by(|a, b| a.partial_cmp(b).expect("NaN sample"));
        let median = if n % 2 == 1 {
            sorted[n / 2]
        } else {
            0.5 * (sorted[n / 2 - 1] + sorted[n / 2])
        };
        Self {
            n,
            mean,
            std_dev: var.sqrt(),
            min: sorted[0],
            median,
            max: sorted[n - 1],
        }
    }
}

/// Median of a mutable f64 slice (consumes order). Panics if empty or NaN.
pub fn median_f64(xs: &mut [f64]) -> f64 {
    assert!(!xs.is_empty(), "median of empty slice");
    // ss-analyze: allow(a10-reachable-panic) -- inputs are finite timing measurements; a NaN is a caller bug this assert surfaces
    xs.sort_by(|a, b| a.partial_cmp(b).expect("NaN in median input"));
    let n = xs.len();
    if n % 2 == 1 {
        xs[n / 2]
    } else {
        0.5 * (xs[n / 2 - 1] + xs[n / 2])
    }
}

/// Median of an i64 slice (by value, exact; lower midpoint for even n —
/// matches the order-statistics convention the sketch estimators use).
pub fn median_i64(xs: &mut [i64]) -> i64 {
    assert!(!xs.is_empty(), "median of empty slice");
    let n = xs.len();
    let (_, m, _) = xs.select_nth_unstable(n / 2);
    *m
}

/// Median of an i128 slice, with the same convention as [`median_i64`].
///
/// The wide variant exists for per-table sums of counter products
/// (self-join / join estimates), where squaring i64 counters overflows
/// i64 long before the counters themselves overflow.
pub fn median_i128(xs: &mut [i128]) -> i128 {
    assert!(!xs.is_empty(), "median of empty slice");
    let n = xs.len();
    let (_, m, _) = xs.select_nth_unstable(n / 2);
    *m
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn ratio_error_is_symmetric() {
        assert!((ratio_error(200.0, 100.0) - 1.0).abs() < 1e-12);
        assert!((ratio_error(100.0, 200.0) - 1.0).abs() < 1e-12);
        assert_eq!(ratio_error(100.0, 100.0), 0.0);
    }

    #[test]
    fn ratio_error_clamps_nonpositive_estimates() {
        assert_eq!(ratio_error(0.0, 100.0), ERROR_SANITY_BOUND);
        assert_eq!(ratio_error(-5.0, 100.0), ERROR_SANITY_BOUND);
    }

    #[test]
    fn ratio_error_clamps_huge_ratios() {
        assert_eq!(ratio_error(1.0, 1e9), ERROR_SANITY_BOUND);
        assert_eq!(ratio_error(1e9, 1.0), ERROR_SANITY_BOUND);
    }

    #[test]
    fn ratio_error_zero_join() {
        assert_eq!(ratio_error(0.0, 0.0), 0.0);
        assert_eq!(ratio_error(3.0, 0.0), ERROR_SANITY_BOUND);
    }

    #[test]
    fn underestimates_are_not_favored() {
        // The motivating pathology: always answering ~0 must score the
        // sanity bound, not <= 1 like plain relative error would give.
        assert!(relative_error(1.0, 1000.0).unwrap() < 1.0);
        assert_eq!(ratio_error(1.0, 1000.0), ERROR_SANITY_BOUND);
    }

    #[test]
    fn relative_error_is_undefined_for_zero_actual() {
        assert_eq!(relative_error(3.0, 0.0), None);
        assert_eq!(relative_error(0.0, 0.0), None);
        assert!((relative_error(90.0, 100.0).unwrap() - 0.1).abs() < 1e-12);
    }

    #[test]
    fn summary_basics() {
        let s = Summary::of(&[1.0, 2.0, 3.0, 4.0]);
        assert_eq!(s.n, 4);
        assert!((s.mean - 2.5).abs() < 1e-12);
        assert!((s.median - 2.5).abs() < 1e-12);
        assert_eq!(s.min, 1.0);
        assert_eq!(s.max, 4.0);
        let expected_sd = (((1.5f64).powi(2) * 2.0 + (0.5f64).powi(2) * 2.0) / 3.0).sqrt();
        assert!((s.std_dev - expected_sd).abs() < 1e-12);
    }

    #[test]
    fn summary_single_sample() {
        let s = Summary::of(&[7.0]);
        assert_eq!(s.std_dev, 0.0);
        assert_eq!(s.median, 7.0);
    }

    #[test]
    fn medians() {
        assert_eq!(median_f64(&mut [3.0, 1.0, 2.0]), 2.0);
        assert_eq!(median_f64(&mut [4.0, 1.0, 2.0, 3.0]), 2.5);
        assert_eq!(median_i64(&mut [3, 1, 2]), 2);
        assert_eq!(median_i64(&mut [-10, 0, 10, 20]), 10); // upper midpoint
    }

    #[test]
    fn median_i128_matches_i64_convention_and_survives_wide_values() {
        assert_eq!(median_i128(&mut [3, 1, 2]), 2);
        assert_eq!(median_i128(&mut [-10, 0, 10, 20]), 10); // upper midpoint
        let big = (i64::MAX as i128) * (i64::MAX as i128);
        assert_eq!(median_i128(&mut [big, big - 1, big - 2]), big - 1);
    }
}
