//! Tabular output for the experiment harness.
//!
//! Each harness binary prints the rows/series of one paper figure or table,
//! both human-readable (aligned columns, like the paper's tables) and as
//! CSV for downstream plotting. No third-party CSV dependency is needed —
//! the values we emit are numeric or simple identifiers.

use std::fmt::Write as _;

/// A simple column-ordered table of string cells.
#[derive(Debug, Clone)]
pub struct Table {
    header: Vec<String>,
    rows: Vec<Vec<String>>,
}

impl Table {
    /// Creates a table with the given column names.
    pub fn new<S: Into<String>, I: IntoIterator<Item = S>>(header: I) -> Self {
        Self {
            header: header.into_iter().map(Into::into).collect(),
            rows: Vec::new(),
        }
    }

    /// Appends a row; its arity must match the header.
    pub fn push_row<S: Into<String>, I: IntoIterator<Item = S>>(&mut self, row: I) {
        let row: Vec<String> = row.into_iter().map(Into::into).collect();
        assert_eq!(
            row.len(),
            self.header.len(),
            "row arity {} != header arity {}",
            row.len(),
            self.header.len()
        );
        self.rows.push(row);
    }

    /// Number of data rows.
    pub fn len(&self) -> usize {
        self.rows.len()
    }

    /// Whether there are no data rows.
    pub fn is_empty(&self) -> bool {
        self.rows.is_empty()
    }

    /// Renders as CSV (header + rows). Cells containing commas, quotes or
    /// newlines are quoted per RFC 4180.
    pub fn to_csv(&self) -> String {
        fn cell(s: &str) -> String {
            if s.contains([',', '"', '\n']) {
                format!("\"{}\"", s.replace('"', "\"\""))
            } else {
                s.to_string()
            }
        }
        let mut out = String::new();
        let line = |cells: &[String], out: &mut String| {
            let joined: Vec<String> = cells.iter().map(|c| cell(c)).collect();
            let _ = writeln!(out, "{}", joined.join(","));
        };
        line(&self.header, &mut out);
        for r in &self.rows {
            line(r, &mut out);
        }
        out
    }

    /// Renders as aligned, human-readable text.
    pub fn to_aligned(&self) -> String {
        let ncols = self.header.len();
        let mut widths: Vec<usize> = self.header.iter().map(|h| h.len()).collect();
        for r in &self.rows {
            for (i, c) in r.iter().enumerate() {
                widths[i] = widths[i].max(c.len());
            }
        }
        let mut out = String::new();
        let fmt_row = |cells: &[String], out: &mut String| {
            for (i, c) in cells.iter().enumerate() {
                let _ = write!(out, "{:>width$}", c, width = widths[i]);
                if i + 1 < ncols {
                    let _ = write!(out, "  ");
                }
            }
            let _ = writeln!(out);
        };
        fmt_row(&self.header, &mut out);
        let total: usize = widths.iter().sum::<usize>() + 2 * (ncols - 1);
        let _ = writeln!(out, "{}", "-".repeat(total));
        for r in &self.rows {
            fmt_row(r, &mut out);
        }
        out
    }
}

/// Formats a float with 4 significant-ish digits, the precision the paper's
/// plots convey.
pub fn fmt_f64(x: f64) -> String {
    if x == 0.0 {
        "0".to_string()
    } else if x.abs() >= 1000.0 || x.abs() < 0.001 {
        format!("{x:.3e}")
    } else {
        format!("{x:.4}")
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn csv_rendering() {
        let mut t = Table::new(["a", "b"]);
        t.push_row(["1", "2"]);
        t.push_row(["x,y", "q\"z"]);
        let csv = t.to_csv();
        assert_eq!(csv, "a,b\n1,2\n\"x,y\",\"q\"\"z\"\n");
    }

    #[test]
    fn aligned_rendering_pads() {
        let mut t = Table::new(["col", "x"]);
        t.push_row(["1", "22"]);
        let txt = t.to_aligned();
        let lines: Vec<&str> = txt.lines().collect();
        assert_eq!(lines.len(), 3);
        assert!(lines[0].contains("col"));
        assert!(lines[1].chars().all(|c| c == '-'));
    }

    #[test]
    #[should_panic(expected = "arity")]
    fn arity_mismatch_panics() {
        let mut t = Table::new(["a", "b"]);
        t.push_row(["only-one"]);
    }

    #[test]
    fn fmt_f64_ranges() {
        assert_eq!(fmt_f64(0.0), "0");
        assert_eq!(fmt_f64(0.12345), "0.1235");
        assert!(fmt_f64(123456.0).contains('e'));
        assert!(fmt_f64(0.000012).contains('e'));
    }

    #[test]
    fn len_and_empty() {
        let mut t = Table::new(["a"]);
        assert!(t.is_empty());
        t.push_row(["1"]);
        assert_eq!(t.len(), 1);
    }
}
