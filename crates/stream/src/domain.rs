//! Value domains and their dyadic decomposition.
//!
//! Streams range over an integer domain `[0, N)`. The optimized SKIMDENSE
//! procedure organizes the domain into *dyadic levels*: at level `ℓ` the
//! domain is partitioned into intervals of length `2^ℓ`, and a value `v`
//! belongs to the interval indexed by `v >> ℓ`. [`Domain`] centralizes the
//! bookkeeping (sizes per level, parent/child navigation) so the sketching
//! code never re-derives it ad hoc.

/// An integer value domain `[0, size)` with `size = 2^log2_size`.
///
/// The paper assumes (for exposition) that the domain size is a power of
/// two; we enforce it, padding workloads up when needed.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Domain {
    log2_size: u32,
}

impl Domain {
    /// Creates a domain of `2^log2_size` values. `log2_size ≤ 63`.
    pub fn with_log2(log2_size: u32) -> Self {
        assert!(log2_size <= 63, "domain too large: 2^{log2_size}");
        Self { log2_size }
    }

    /// Creates the smallest power-of-two domain containing `[0, min_size)`.
    pub fn covering(min_size: u64) -> Self {
        assert!(min_size > 0, "domain must be non-empty");
        let log2 = 64 - (min_size - 1).leading_zeros();
        Self::with_log2(log2.min(63))
    }

    /// Number of values in the domain.
    #[inline]
    pub fn size(&self) -> u64 {
        1u64 << self.log2_size
    }

    /// `log2` of the domain size; also the index of the topmost dyadic
    /// level that still distinguishes more than one interval... precisely:
    /// level `log2_size` has exactly one interval covering everything.
    #[inline]
    pub fn log2_size(&self) -> u32 {
        self.log2_size
    }

    /// Whether `v` is a member.
    #[inline]
    pub fn contains(&self, v: u64) -> bool {
        v < self.size()
    }

    /// Number of dyadic levels `0 ..= log2_size` (level 0 = singletons,
    /// top level = the whole domain as one interval).
    #[inline]
    pub fn levels(&self) -> u32 {
        self.log2_size + 1
    }

    /// Number of dyadic intervals at `level`.
    #[inline]
    pub fn intervals_at(&self, level: u32) -> u64 {
        debug_assert!(level <= self.log2_size);
        1u64 << (self.log2_size - level)
    }

    /// The index of the level-`level` interval containing `v`.
    #[inline]
    pub fn interval_of(&self, v: u64, level: u32) -> u64 {
        debug_assert!(self.contains(v));
        v >> level
    }

    /// The two children (at `level - 1`) of interval `idx` at `level`.
    #[inline]
    pub fn children(&self, idx: u64) -> (u64, u64) {
        (2 * idx, 2 * idx + 1)
    }

    /// The half-open value range `[lo, hi)` covered by interval `idx` at
    /// `level`.
    #[inline]
    pub fn interval_range(&self, idx: u64, level: u32) -> (u64, u64) {
        let lo = idx << level;
        (lo, lo + (1u64 << level))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn covering_rounds_up() {
        assert_eq!(Domain::covering(1).size(), 1);
        assert_eq!(Domain::covering(2).size(), 2);
        assert_eq!(Domain::covering(3).size(), 4);
        assert_eq!(Domain::covering(256).size(), 256);
        assert_eq!(Domain::covering(257).size(), 512);
    }

    #[test]
    fn membership() {
        let d = Domain::with_log2(4);
        assert!(d.contains(0));
        assert!(d.contains(15));
        assert!(!d.contains(16));
    }

    #[test]
    fn levels_and_intervals() {
        let d = Domain::with_log2(3); // 8 values
        assert_eq!(d.levels(), 4);
        assert_eq!(d.intervals_at(0), 8);
        assert_eq!(d.intervals_at(1), 4);
        assert_eq!(d.intervals_at(3), 1);
    }

    #[test]
    fn interval_navigation_is_consistent() {
        let d = Domain::with_log2(5);
        for v in 0..d.size() {
            for level in 0..d.levels() {
                let idx = d.interval_of(v, level);
                let (lo, hi) = d.interval_range(idx, level);
                assert!(lo <= v && v < hi, "v={v} level={level}");
                if level > 0 {
                    let (c0, c1) = d.children(idx);
                    let child = d.interval_of(v, level - 1);
                    assert!(child == c0 || child == c1);
                }
            }
        }
    }

    #[test]
    fn top_level_is_single_interval() {
        let d = Domain::with_log2(6);
        for v in 0..d.size() {
            assert_eq!(d.interval_of(v, 6), 0);
        }
    }
}
