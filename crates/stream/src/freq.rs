//! Exact frequency vectors — the ground truth every estimator is judged
//! against.
//!
//! [`FrequencyVector`] is a dense `i64` vector over a [`Domain`]; it is the
//! formal object `f` the paper reasons about, and doubles as the exact
//! (memory-unconstrained) reference implementation of every aggregate the
//! sketches approximate: join size `f·g`, self-join `F₂`, L1 mass, heavy
//! hitters.

use crate::domain::Domain;
use crate::update::{StreamSink, Update};

/// A dense exact frequency vector over a power-of-two domain.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct FrequencyVector {
    domain: Domain,
    counts: Vec<i64>,
}

impl FrequencyVector {
    /// All-zero vector over `domain`.
    pub fn new(domain: Domain) -> Self {
        Self {
            domain,
            counts: vec![0; domain.size() as usize],
        }
    }

    /// Builds the vector by replaying `updates`.
    pub fn from_updates<I: IntoIterator<Item = Update>>(domain: Domain, updates: I) -> Self {
        let mut fv = Self::new(domain);
        for u in updates {
            fv.update(u);
        }
        fv
    }

    /// Builds directly from explicit counts (padded/truncated to the
    /// domain size must match exactly).
    pub fn from_counts(domain: Domain, counts: Vec<i64>) -> Self {
        assert_eq!(
            counts.len() as u64,
            domain.size(),
            "counts length must equal domain size"
        );
        Self { domain, counts }
    }

    /// The underlying domain.
    pub fn domain(&self) -> Domain {
        self.domain
    }

    /// Frequency of `v`.
    #[inline]
    pub fn get(&self, v: u64) -> i64 {
        self.counts[v as usize]
    }

    /// Mutable access to the frequency of `v`.
    #[inline]
    pub fn get_mut(&mut self, v: u64) -> &mut i64 {
        &mut self.counts[v as usize]
    }

    /// Read-only view of all counts.
    pub fn counts(&self) -> &[i64] {
        &self.counts
    }

    /// Iterator over `(value, frequency)` pairs with nonzero frequency.
    pub fn nonzero(&self) -> impl Iterator<Item = (u64, i64)> + '_ {
        self.counts
            .iter()
            .enumerate()
            .filter(|(_, &c)| c != 0)
            .map(|(v, &c)| (v as u64, c))
    }

    /// Number of distinct values with nonzero frequency (`F₀`).
    pub fn distinct(&self) -> usize {
        self.counts.iter().filter(|&&c| c != 0).count()
    }

    /// Total mass `Σ_v f(v)` (signed; equals the stream length for
    /// insert-only streams).
    pub fn total(&self) -> i64 {
        self.counts.iter().sum()
    }

    /// `L1` norm `Σ_v |f(v)|`.
    pub fn l1(&self) -> i64 {
        self.counts.iter().map(|c| c.abs()).sum()
    }

    /// Self-join size / second frequency moment `F₂ = Σ_v f(v)²`.
    pub fn self_join(&self) -> i64 {
        self.counts.iter().map(|&c| c * c).sum()
    }

    /// Join size `Σ_v f(v)·g(v)` with another vector over the same domain.
    pub fn join(&self, other: &FrequencyVector) -> i64 {
        assert_eq!(self.domain, other.domain, "domains must match");
        self.counts
            .iter()
            .zip(&other.counts)
            .map(|(&a, &b)| a * b)
            .sum()
    }

    /// Maximum absolute frequency (`F_∞`).
    pub fn max_abs(&self) -> i64 {
        self.counts.iter().map(|c| c.abs()).max().unwrap_or(0)
    }

    /// Values whose absolute frequency is ≥ `threshold`, with their
    /// frequencies, in decreasing order of |frequency|.
    pub fn dense_values(&self, threshold: i64) -> Vec<(u64, i64)> {
        let mut out: Vec<(u64, i64)> = self
            .nonzero()
            .filter(|&(_, c)| c.abs() >= threshold)
            .collect();
        out.sort_by_key(|&(v, c)| (std::cmp::Reverse(c.abs()), v));
        out
    }

    /// The `k` most frequent values (by |frequency|), ties broken by value.
    pub fn top_k(&self, k: usize) -> Vec<(u64, i64)> {
        let mut all: Vec<(u64, i64)> = self.nonzero().collect();
        all.sort_by_key(|&(v, c)| (std::cmp::Reverse(c.abs()), v));
        all.truncate(k);
        all
    }

    /// Pointwise sum (e.g. for union-of-streams checks).
    pub fn add(&self, other: &FrequencyVector) -> FrequencyVector {
        assert_eq!(self.domain, other.domain, "domains must match");
        let counts = self
            .counts
            .iter()
            .zip(&other.counts)
            .map(|(&a, &b)| a + b)
            .collect();
        Self {
            domain: self.domain,
            counts,
        }
    }

    /// Pointwise difference.
    pub fn sub(&self, other: &FrequencyVector) -> FrequencyVector {
        assert_eq!(self.domain, other.domain, "domains must match");
        let counts = self
            .counts
            .iter()
            .zip(&other.counts)
            .map(|(&a, &b)| a - b)
            .collect();
        Self {
            domain: self.domain,
            counts,
        }
    }

    /// Splits into `(dense, sparse)` at `threshold`: `dense` keeps the
    /// entries with `|f(v)| ≥ threshold` (others zero), `sparse` the rest.
    /// This is the exact analogue of the paper's dense/sparse frequency
    /// decomposition, used by the analysis module and the tests.
    pub fn split_at(&self, threshold: i64) -> (FrequencyVector, FrequencyVector) {
        let mut dense = FrequencyVector::new(self.domain);
        let mut sparse = FrequencyVector::new(self.domain);
        for (v, c) in self.nonzero() {
            if c.abs() >= threshold {
                *dense.get_mut(v) = c;
            } else {
                *sparse.get_mut(v) = c;
            }
        }
        (dense, sparse)
    }

    /// Expands the vector back into a canonical stream of unit updates
    /// (positive frequencies become inserts, negative ones deletes).
    pub fn to_unit_updates(&self) -> Vec<Update> {
        let mut out = Vec::with_capacity(self.l1() as usize);
        for (v, c) in self.nonzero() {
            let w = if c > 0 { 1 } else { -1 };
            for _ in 0..c.abs() {
                out.push(Update {
                    value: v,
                    weight: w,
                });
            }
        }
        out
    }
}

impl StreamSink for FrequencyVector {
    #[inline]
    fn update(&mut self, u: Update) {
        assert!(
            self.domain.contains(u.value),
            "value {} outside domain of size {}",
            u.value,
            self.domain.size()
        );
        self.counts[u.value as usize] += u.weight;
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn d16() -> Domain {
        Domain::with_log2(4)
    }

    #[test]
    fn replay_updates() {
        let fv = FrequencyVector::from_updates(
            d16(),
            [
                Update::insert(3),
                Update::insert(3),
                Update::delete(3),
                Update::with_measure(7, 5),
            ],
        );
        assert_eq!(fv.get(3), 1);
        assert_eq!(fv.get(7), 5);
        assert_eq!(fv.total(), 6);
        assert_eq!(fv.distinct(), 2);
    }

    #[test]
    fn join_and_self_join() {
        let f = FrequencyVector::from_counts(Domain::with_log2(2), vec![1, 2, 0, 3]);
        let g = FrequencyVector::from_counts(Domain::with_log2(2), vec![4, 0, 5, 1]);
        assert_eq!(f.join(&g), 4 + 3);
        assert_eq!(f.self_join(), 1 + 4 + 9);
        assert_eq!(f.join(&f), f.self_join());
        assert_eq!(f.join(&g), g.join(&f));
    }

    #[test]
    fn paper_example_1_numbers() {
        // Example 1 of the paper: f = (50, 50, 1, ..., 1), g = (1, ..., 1, 50, 50)
        // over a domain with J = f·g = 210? We reproduce the *structure*:
        // the exact split arithmetic is validated in the core crate's
        // analysis tests; here just check split_at is a partition.
        let f = FrequencyVector::from_counts(Domain::with_log2(3), vec![50, 50, 1, 1, 1, 1, 1, 1]);
        let (dense, sparse) = f.split_at(5);
        assert_eq!(dense.add(&sparse), f);
        assert_eq!(dense.distinct(), 2);
        assert_eq!(sparse.max_abs(), 1);
    }

    #[test]
    fn l1_and_max_abs_handle_negatives() {
        let f = FrequencyVector::from_counts(Domain::with_log2(2), vec![-3, 1, 0, 2]);
        assert_eq!(f.l1(), 6);
        assert_eq!(f.total(), 0);
        assert_eq!(f.max_abs(), 3);
    }

    #[test]
    fn dense_values_sorted_desc() {
        let f = FrequencyVector::from_counts(Domain::with_log2(2), vec![5, -9, 2, 9]);
        let d = f.dense_values(5);
        assert_eq!(d, vec![(1, -9), (3, 9), (0, 5)]);
    }

    #[test]
    fn top_k_truncates() {
        let f = FrequencyVector::from_counts(Domain::with_log2(2), vec![5, 9, 2, 7]);
        assert_eq!(f.top_k(2), vec![(1, 9), (3, 7)]);
        assert_eq!(f.top_k(10).len(), 4);
    }

    #[test]
    fn unit_updates_round_trip() {
        let f = FrequencyVector::from_counts(Domain::with_log2(2), vec![2, 0, -1, 3]);
        let g = FrequencyVector::from_updates(Domain::with_log2(2), f.to_unit_updates());
        assert_eq!(f, g);
    }

    #[test]
    #[should_panic(expected = "outside domain")]
    fn out_of_domain_update_panics() {
        let mut f = FrequencyVector::new(Domain::with_log2(2));
        f.update(Update::insert(4));
    }

    #[test]
    fn add_sub_roundtrip() {
        let f = FrequencyVector::from_counts(Domain::with_log2(2), vec![1, 2, 3, 4]);
        let g = FrequencyVector::from_counts(Domain::with_log2(2), vec![4, 3, 2, 1]);
        assert_eq!(f.add(&g).sub(&g), f);
    }
}
