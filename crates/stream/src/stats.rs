//! Workload characterization.
//!
//! The experiment harness (and the planner in the core crate) reason about
//! workloads through a handful of statistics: frequency moments, the
//! dense-mass profile, and a fitted Zipf exponent. This module computes
//! them exactly from a [`FrequencyVector`] and renders a compact report —
//! every experiment in `EXPERIMENTS.md` logs one so that results can be
//! interpreted without rerunning the generator.

use crate::freq::FrequencyVector;

/// Exact summary statistics of one stream's frequency distribution.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct WorkloadStats {
    /// Number of distinct values (`F₀`).
    pub distinct: usize,
    /// Total absolute mass (`F₁` for insert-only streams).
    pub l1: i64,
    /// Second moment / self-join size (`F₂`).
    pub f2: i64,
    /// Largest absolute frequency (`F_∞`).
    pub max: i64,
    /// Fraction of L1 mass held by the 1% most frequent values.
    pub top1pct_mass: f64,
    /// Least-squares Zipf exponent fitted to the log-log rank/frequency
    /// profile (0 for degenerate distributions).
    pub zipf_fit: f64,
    /// Skew proxy `F₂·F₀ / F₁²` — 1 for uniform, grows with concentration.
    pub kurtosis_proxy: f64,
}

impl WorkloadStats {
    /// Computes all statistics from an exact frequency vector.
    pub fn of(fv: &FrequencyVector) -> Self {
        let mut freqs: Vec<i64> = fv.nonzero().map(|(_, c)| c.abs()).collect();
        freqs.sort_unstable_by_key(|&c| std::cmp::Reverse(c));
        let distinct = freqs.len();
        let l1: i64 = freqs.iter().sum();
        let f2: i64 = freqs.iter().map(|&c| c * c).sum();
        let max = freqs.first().copied().unwrap_or(0);
        let top_k = (distinct / 100).max(1).min(distinct);
        let top1pct_mass = if l1 > 0 {
            freqs.iter().take(top_k).sum::<i64>() as f64 / l1 as f64
        } else {
            0.0
        };
        let zipf_fit = fit_zipf(&freqs);
        let kurtosis_proxy = if l1 > 0 && distinct > 0 {
            f2 as f64 * distinct as f64 / (l1 as f64 * l1 as f64)
        } else {
            0.0
        };
        Self {
            distinct,
            l1,
            f2,
            max,
            top1pct_mass,
            zipf_fit,
            kurtosis_proxy,
        }
    }

    /// One-line rendering for harness logs.
    pub fn summary(&self) -> String {
        format!(
            "F0={} F1={} F2={} Fmax={} top1%={:.3} zipf≈{:.2} kurt={:.2}",
            self.distinct,
            self.l1,
            self.f2,
            self.max,
            self.top1pct_mass,
            self.zipf_fit,
            self.kurtosis_proxy
        )
    }
}

/// Least-squares slope of `log(freq)` against `log(rank)` over the sorted
/// (descending) frequency profile; the Zipf exponent is its negation.
/// Ranks with frequency 0 never occur (input is the nonzero profile).
fn fit_zipf(sorted_desc: &[i64]) -> f64 {
    if sorted_desc.len() < 2 {
        return 0.0;
    }
    let n = sorted_desc.len() as f64;
    let (mut sx, mut sy, mut sxx, mut sxy) = (0.0, 0.0, 0.0, 0.0);
    for (i, &c) in sorted_desc.iter().enumerate() {
        let x = ((i + 1) as f64).ln();
        let y = (c as f64).ln();
        sx += x;
        sy += y;
        sxx += x * x;
        sxy += x * y;
    }
    let denom = n * sxx - sx * sx;
    if denom.abs() < f64::EPSILON {
        return 0.0;
    }
    let slope = (n * sxy - sx * sy) / denom;
    (-slope).max(0.0)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::domain::Domain;
    use crate::gen::ZipfGenerator;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    #[test]
    fn moments_on_known_vector() {
        let fv = FrequencyVector::from_counts(Domain::with_log2(2), vec![3, 0, -2, 5]);
        let s = WorkloadStats::of(&fv);
        assert_eq!(s.distinct, 3);
        assert_eq!(s.l1, 10);
        assert_eq!(s.f2, 9 + 4 + 25);
        assert_eq!(s.max, 5);
    }

    #[test]
    fn uniform_has_kurtosis_proxy_one_and_low_zipf() {
        let fv = FrequencyVector::from_counts(Domain::with_log2(6), vec![10; 64]);
        let s = WorkloadStats::of(&fv);
        assert!((s.kurtosis_proxy - 1.0).abs() < 1e-9);
        assert!(s.zipf_fit < 0.05, "zipf_fit={}", s.zipf_fit);
    }

    #[test]
    fn zipf_fit_recovers_the_generator_exponent() {
        let d = Domain::with_log2(12);
        let mut rng = StdRng::seed_from_u64(1);
        for z in [0.8f64, 1.2] {
            let fv = FrequencyVector::from_updates(
                d,
                ZipfGenerator::new(d, z, 0).generate(&mut rng, 400_000),
            );
            let s = WorkloadStats::of(&fv);
            // Sampling flattens the tail (singletons), so the fit runs a
            // little low; accept a generous band around the truth.
            assert!((s.zipf_fit - z).abs() < 0.4, "z={z} fit={}", s.zipf_fit);
            assert!(s.kurtosis_proxy > 1.5, "z={z} kurt={}", s.kurtosis_proxy);
        }
    }

    #[test]
    fn skew_orders_by_top_mass() {
        let d = Domain::with_log2(12);
        let mut rng = StdRng::seed_from_u64(2);
        let low = WorkloadStats::of(&FrequencyVector::from_updates(
            d,
            ZipfGenerator::new(d, 0.5, 0).generate(&mut rng, 100_000),
        ));
        let high = WorkloadStats::of(&FrequencyVector::from_updates(
            d,
            ZipfGenerator::new(d, 1.5, 0).generate(&mut rng, 100_000),
        ));
        assert!(high.top1pct_mass > low.top1pct_mass);
        assert!(high.zipf_fit > low.zipf_fit);
    }

    #[test]
    fn empty_vector_is_all_zero() {
        let s = WorkloadStats::of(&FrequencyVector::new(Domain::with_log2(4)));
        assert_eq!(s.distinct, 0);
        assert_eq!(s.l1, 0);
        assert_eq!(s.zipf_fit, 0.0);
        assert!(s.summary().contains("F0=0"));
    }
}
