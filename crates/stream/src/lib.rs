//! # stream-model
//!
//! The data-stream substrate of the skimmed-sketches reproduction: the
//! update model (§2.1 of the paper — unordered insert/delete streams over
//! an integer domain), exact reference computation, workload generators for
//! every experiment in §5, the paper's error metric, and trace I/O.
//!
//! Nothing in this crate approximates anything; it is the ground truth that
//! the sketch crates are tested and benchmarked against.

#![forbid(unsafe_code)]
#![deny(missing_docs)]
#![warn(clippy::all)]

pub mod domain;
pub mod freq;
pub mod gen;
pub mod io;
pub mod metrics;
pub mod stats;
pub mod table;
pub mod trace;
pub mod update;

pub use domain::Domain;
pub use freq::FrequencyVector;
pub use metrics::{ratio_error, Summary, ERROR_SANITY_BOUND};
pub use stats::WorkloadStats;
pub use update::{StreamSink, Update, UpdateKind};
