//! Binary trace codec for update streams.
//!
//! The experiment grid replays the same generated streams across many
//! sketch configurations; persisting them as compact binary traces makes
//! runs reproducible and lets the harness share one workload across
//! processes. Format (little-endian):
//!
//! ```text
//! magic "SSTR" | version u16 | log2(domain) u16 | count u64
//! then `count` records of: value varint | zigzag(weight) varint
//! ```
//!
//! Varint + zigzag keeps unit-weight traces at ~1–3 bytes per update for
//! the domains the paper uses.

use crate::domain::Domain;
use crate::update::Update;
use bytes::{Buf, BufMut, Bytes, BytesMut};

const MAGIC: &[u8; 4] = b"SSTR";
const VERSION: u16 = 1;

/// Errors produced while decoding a trace.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum TraceError {
    /// Header magic did not match.
    BadMagic,
    /// Unsupported format version.
    BadVersion(u16),
    /// Buffer ended before the declared record count was read.
    Truncated,
    /// A varint ran past its maximum length.
    MalformedVarint,
    /// A decoded value fell outside the declared domain.
    ValueOutOfDomain(u64),
}

impl std::fmt::Display for TraceError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            TraceError::BadMagic => write!(f, "bad trace magic"),
            TraceError::BadVersion(v) => write!(f, "unsupported trace version {v}"),
            TraceError::Truncated => write!(f, "trace truncated"),
            TraceError::MalformedVarint => write!(f, "malformed varint"),
            TraceError::ValueOutOfDomain(v) => write!(f, "value {v} outside declared domain"),
        }
    }
}

impl std::error::Error for TraceError {}

fn put_varint(buf: &mut BytesMut, mut x: u64) {
    loop {
        let byte = (x & 0x7F) as u8;
        x >>= 7;
        if x == 0 {
            buf.put_u8(byte);
            return;
        }
        buf.put_u8(byte | 0x80);
    }
}

fn get_varint(buf: &mut Bytes) -> Result<u64, TraceError> {
    let mut x = 0u64;
    for shift in (0..64).step_by(7) {
        if !buf.has_remaining() {
            return Err(TraceError::Truncated);
        }
        let byte = buf.get_u8();
        x |= ((byte & 0x7F) as u64) << shift;
        if byte & 0x80 == 0 {
            return Ok(x);
        }
    }
    Err(TraceError::MalformedVarint)
}

#[inline]
fn zigzag(w: i64) -> u64 {
    ((w << 1) ^ (w >> 63)) as u64
}

#[inline]
fn unzigzag(z: u64) -> i64 {
    ((z >> 1) as i64) ^ -((z & 1) as i64)
}

/// Encodes `updates` over `domain` into a trace buffer.
pub fn encode(domain: Domain, updates: &[Update]) -> Bytes {
    let mut buf = BytesMut::with_capacity(16 + updates.len() * 3);
    buf.put_slice(MAGIC);
    buf.put_u16_le(VERSION);
    buf.put_u16_le(domain.log2_size() as u16);
    buf.put_u64_le(updates.len() as u64);
    for u in updates {
        debug_assert!(domain.contains(u.value));
        put_varint(&mut buf, u.value);
        put_varint(&mut buf, zigzag(u.weight));
    }
    buf.freeze()
}

/// Decodes a trace buffer into `(domain, updates)`.
pub fn decode(mut buf: Bytes) -> Result<(Domain, Vec<Update>), TraceError> {
    if buf.remaining() < 16 {
        return Err(TraceError::Truncated);
    }
    let mut magic = [0u8; 4];
    buf.copy_to_slice(&mut magic);
    if &magic != MAGIC {
        return Err(TraceError::BadMagic);
    }
    let version = buf.get_u16_le();
    if version != VERSION {
        return Err(TraceError::BadVersion(version));
    }
    let log2 = buf.get_u16_le();
    let domain = Domain::with_log2(log2 as u32);
    let count = buf.get_u64_le();
    let mut updates = Vec::with_capacity(count.min(1 << 24) as usize);
    for _ in 0..count {
        let value = get_varint(&mut buf)?;
        if !domain.contains(value) {
            return Err(TraceError::ValueOutOfDomain(value));
        }
        let weight = unzigzag(get_varint(&mut buf)?);
        updates.push(Update { value, weight });
    }
    Ok((domain, updates))
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn zigzag_round_trips() {
        for w in [0i64, 1, -1, 2, -2, 63, -64, i64::MAX, i64::MIN] {
            assert_eq!(unzigzag(zigzag(w)), w, "w={w}");
        }
    }

    #[test]
    fn encode_decode_round_trip() {
        let d = Domain::with_log2(10);
        let updates: Vec<Update> = (0..500)
            .map(|i| Update {
                value: (i * 37) % 1024,
                weight: ((i as i64) % 7) - 3,
            })
            .collect();
        let buf = encode(d, &updates);
        let (d2, u2) = decode(buf).unwrap();
        assert_eq!(d2, d);
        assert_eq!(u2, updates);
    }

    #[test]
    fn empty_trace_round_trips() {
        let d = Domain::with_log2(3);
        let (d2, u2) = decode(encode(d, &[])).unwrap();
        assert_eq!(d2, d);
        assert!(u2.is_empty());
    }

    #[test]
    fn unit_inserts_are_compact() {
        let d = Domain::with_log2(8);
        let updates: Vec<Update> = (0..1000).map(|i| Update::insert(i % 256)).collect();
        let buf = encode(d, &updates);
        // Header 16 bytes + at most 3 bytes per update (2-byte value max).
        assert!(buf.len() <= 16 + 3 * updates.len());
    }

    #[test]
    fn rejects_bad_magic() {
        let mut raw = encode(Domain::with_log2(2), &[]).to_vec();
        raw[0] = b'X';
        assert_eq!(decode(Bytes::from(raw)), Err(TraceError::BadMagic));
    }

    #[test]
    fn rejects_bad_version() {
        let mut raw = encode(Domain::with_log2(2), &[]).to_vec();
        raw[4] = 99;
        assert_eq!(decode(Bytes::from(raw)), Err(TraceError::BadVersion(99)));
    }

    #[test]
    fn rejects_truncation() {
        let raw = encode(Domain::with_log2(2), &[Update::insert(1)]).to_vec();
        let cut = Bytes::from(raw[..raw.len() - 1].to_vec());
        assert_eq!(decode(cut), Err(TraceError::Truncated));
    }

    #[test]
    fn rejects_out_of_domain_values() {
        // Hand-craft a trace declaring domain 2^1 but carrying value 5.
        let mut buf = BytesMut::new();
        buf.put_slice(MAGIC);
        buf.put_u16_le(VERSION);
        buf.put_u16_le(1);
        buf.put_u64_le(1);
        put_varint(&mut buf, 5);
        put_varint(&mut buf, zigzag(1));
        assert_eq!(decode(buf.freeze()), Err(TraceError::ValueOutOfDomain(5)));
    }
}
