//! Time-evolving workloads.
//!
//! Continuous queries and windowed estimation need streams whose
//! distribution *changes*: regime shifts (a flash crowd appears), drift
//! (the popular head slowly rotates), and periodic cycles. This module
//! composes the stationary generators into phase schedules that the
//! change-detection and windowing tests exercise.

use crate::domain::Domain;
use crate::gen::zipf::ZipfGenerator;
use crate::update::Update;
use rand::Rng;

/// One phase of a schedule: a stationary generator run for a fixed number
/// of elements.
#[derive(Debug, Clone)]
pub struct Phase {
    /// Generator active during this phase.
    pub generator: ZipfGenerator,
    /// Elements drawn in this phase.
    pub length: usize,
    /// Label for diagnostics.
    pub label: String,
}

/// A piecewise-stationary workload: phases played back to back.
#[derive(Debug, Clone)]
pub struct PhasedWorkload {
    phases: Vec<Phase>,
}

impl PhasedWorkload {
    /// Builds from explicit phases.
    pub fn new(phases: Vec<Phase>) -> Self {
        assert!(!phases.is_empty(), "need at least one phase");
        Self { phases }
    }

    /// A regime-shift schedule: stationary Zipf(z, shift₀) for
    /// `pre` elements, then an abrupt jump to shift₁ for `post` elements —
    /// the flash-crowd shape used by the alarm tests.
    pub fn regime_shift(
        domain: Domain,
        z: f64,
        shift_before: u64,
        shift_after: u64,
        pre: usize,
        post: usize,
    ) -> Self {
        Self::new(vec![
            Phase {
                generator: ZipfGenerator::new(domain, z, shift_before),
                length: pre,
                label: format!("shift={shift_before}"),
            },
            Phase {
                generator: ZipfGenerator::new(domain, z, shift_after),
                length: post,
                label: format!("shift={shift_after}"),
            },
        ])
    }

    /// A drifting schedule: `steps` phases whose shift advances by
    /// `step_shift` each time — the slowly rotating head.
    pub fn drift(domain: Domain, z: f64, steps: usize, step_shift: u64, per_step: usize) -> Self {
        assert!(steps > 0);
        Self::new(
            (0..steps)
                .map(|i| Phase {
                    generator: ZipfGenerator::new(domain, z, i as u64 * step_shift),
                    length: per_step,
                    label: format!("drift step {i}"),
                })
                .collect(),
        )
    }

    /// Total elements across all phases.
    pub fn total_length(&self) -> usize {
        self.phases.iter().map(|p| p.length).sum()
    }

    /// The phases.
    pub fn phases(&self) -> &[Phase] {
        &self.phases
    }

    /// Materializes the whole schedule as unit inserts.
    pub fn generate<R: Rng>(&self, rng: &mut R) -> Vec<Update> {
        let mut out = Vec::with_capacity(self.total_length());
        for p in &self.phases {
            out.extend(p.generator.generate(rng, p.length));
        }
        out
    }

    /// Streams the schedule through a callback with the phase index —
    /// what the continuous-query tests use to check alarms fire at the
    /// right boundary.
    pub fn stream<R: Rng, F: FnMut(usize, Update)>(&self, rng: &mut R, mut f: F) {
        for (i, p) in self.phases.iter().enumerate() {
            for _ in 0..p.length {
                f(i, Update::insert(p.generator.sample(rng)));
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::freq::FrequencyVector;
    use crate::update::StreamSink;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    #[test]
    fn regime_shift_changes_the_head() {
        let d = Domain::with_log2(10);
        let w = PhasedWorkload::regime_shift(d, 1.2, 0, 500, 20_000, 20_000);
        assert_eq!(w.total_length(), 40_000);
        let mut rng = StdRng::seed_from_u64(1);
        let mut pre = FrequencyVector::new(d);
        let mut post = FrequencyVector::new(d);
        w.stream(&mut rng, |phase, u| {
            if phase == 0 {
                pre.update(u);
            } else {
                post.update(u);
            }
        });
        // Heads: value 0 before, value 500 after.
        assert!(pre.get(0) > pre.get(500) * 5, "pre head misplaced");
        assert!(post.get(500) > post.get(0) * 5, "post head misplaced");
    }

    #[test]
    fn drift_rotates_gradually() {
        let d = Domain::with_log2(10);
        let w = PhasedWorkload::drift(d, 1.5, 4, 100, 10_000);
        assert_eq!(w.phases().len(), 4);
        let mut rng = StdRng::seed_from_u64(2);
        let mut per_phase: Vec<FrequencyVector> = (0..4).map(|_| FrequencyVector::new(d)).collect();
        w.stream(&mut rng, |phase, u| per_phase[phase].update(u));
        for (i, fv) in per_phase.iter().enumerate() {
            let head = (i as u64 * 100) % d.size();
            assert_eq!(fv.top_k(1)[0].0, head, "phase {i} head should be {head}");
        }
    }

    #[test]
    fn generate_matches_stream_totals() {
        let d = Domain::with_log2(8);
        let w = PhasedWorkload::drift(d, 1.0, 3, 7, 500);
        let mut rng = StdRng::seed_from_u64(3);
        assert_eq!(w.generate(&mut rng).len(), 1500);
    }

    #[test]
    #[should_panic(expected = "at least one phase")]
    fn empty_schedule_rejected() {
        let _ = PhasedWorkload::new(vec![]);
    }
}
