//! Uniform and deletion-mixed stream generators.
//!
//! Used by stress and property tests: the sketching guarantees are
//! distribution-free, and the delete-handling claims (a linear sketch after
//! `insert(v); delete(v)` equals the sketch without either) need workloads
//! that actually exercise deletions.

use crate::domain::Domain;
use crate::update::Update;
use rand::Rng;

/// Uniform unit-insert generator over a domain.
#[derive(Debug, Clone, Copy)]
pub struct UniformGenerator {
    domain: Domain,
}

impl UniformGenerator {
    /// Creates a generator over `domain`.
    pub fn new(domain: Domain) -> Self {
        Self { domain }
    }

    /// Draws one value.
    #[inline]
    pub fn sample<R: Rng>(&self, rng: &mut R) -> u64 {
        rng.gen_range(0..self.domain.size())
    }

    /// Draws `n` unit inserts.
    pub fn generate<R: Rng>(&self, rng: &mut R, n: usize) -> Vec<Update> {
        (0..n).map(|_| Update::insert(self.sample(rng))).collect()
    }
}

/// Wraps any insert workload with a delete mix: each produced insert is
/// later deleted with probability `p_delete`, at a random later position.
///
/// The resulting stream has general updates while its final frequency
/// vector remains non-negative — the regime the paper's "handles deletes"
/// claim covers.
#[derive(Debug, Clone)]
pub struct DeleteMix {
    /// Probability that an insert is subsequently deleted.
    pub p_delete: f64,
}

impl DeleteMix {
    /// Creates a mix with deletion probability `p_delete ∈ \[0, 1\]`.
    pub fn new(p_delete: f64) -> Self {
        assert!((0.0..=1.0).contains(&p_delete), "p_delete must be in [0,1]");
        Self { p_delete }
    }

    /// Interleaves deletions into `inserts`, preserving the invariant that
    /// every delete follows its matching insert.
    pub fn apply<R: Rng>(&self, rng: &mut R, inserts: Vec<Update>) -> Vec<Update> {
        let mut out: Vec<Update> = Vec::with_capacity(inserts.len() * 2);
        for u in inserts {
            debug_assert!(u.weight > 0, "DeleteMix expects insert streams");
            out.push(u);
            if rng.gen::<f64>() < self.p_delete {
                out.push(u.inverse());
            }
        }
        // Shuffle tail-ward only via adjacent swaps that never move a delete
        // before its insert: a simple pass of random right-rotations.
        for i in (1..out.len()).rev() {
            if out[i].weight > 0 && rng.gen::<f64>() < 0.5 {
                out.swap(i - 1, i);
                // Swapping two inserts or moving an insert earlier is always
                // safe; moving a delete earlier could break the invariant,
                // so only inserts initiate swaps.
            }
        }
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::freq::FrequencyVector;
    use crate::update::StreamSink;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    #[test]
    fn uniform_covers_domain() {
        let d = Domain::with_log2(4);
        let g = UniformGenerator::new(d);
        let mut rng = StdRng::seed_from_u64(1);
        let fv = FrequencyVector::from_updates(d, g.generate(&mut rng, 16_000));
        assert_eq!(fv.total(), 16_000);
        for v in 0..16 {
            let c = fv.get(v);
            assert!((800..1200).contains(&c), "v={v} c={c}");
        }
    }

    #[test]
    fn delete_mix_keeps_frequencies_nonnegative() {
        let d = Domain::with_log2(6);
        let g = UniformGenerator::new(d);
        let mut rng = StdRng::seed_from_u64(2);
        let inserts = g.generate(&mut rng, 5000);
        let stream = DeleteMix::new(0.5).apply(&mut rng, inserts);
        let mut fv = FrequencyVector::new(d);
        for u in stream {
            fv.update(u);
            assert!(
                fv.get(u.value) >= 0,
                "running frequency went negative at {}",
                u.value
            );
        }
    }

    #[test]
    fn delete_mix_zero_is_identity() {
        let d = Domain::with_log2(4);
        let g = UniformGenerator::new(d);
        let mut rng = StdRng::seed_from_u64(3);
        let inserts = g.generate(&mut rng, 100);
        let mixed = DeleteMix::new(0.0).apply(&mut rng, inserts.clone());
        let a = FrequencyVector::from_updates(d, inserts);
        let b = FrequencyVector::from_updates(d, mixed);
        assert_eq!(a, b);
    }

    #[test]
    fn delete_mix_one_cancels_everything() {
        let d = Domain::with_log2(4);
        let g = UniformGenerator::new(d);
        let mut rng = StdRng::seed_from_u64(4);
        let inserts = g.generate(&mut rng, 200);
        let mixed = DeleteMix::new(1.0).apply(&mut rng, inserts);
        let fv = FrequencyVector::from_updates(d, mixed);
        assert_eq!(fv.l1(), 0);
    }
}
