//! Workload generators for the experimental harness.
//!
//! * [`zipf`] — Zipf and right-shifted-Zipf streams (the paper's synthetic
//!   workloads of §5), built on an exact alias-method sampler.
//! * [`census`] — a census-like correlated two-attribute generator standing
//!   in for the CPS extract (see `DESIGN.md` §3 for the substitution note).
//! * [`uniform`] — uniform and deletion-heavy streams for stress tests.

pub mod census;
pub mod temporal;
pub mod uniform;
pub mod zipf;

pub use census::{CensusGenerator, CensusRecord};
pub use temporal::{Phase, PhasedWorkload};
pub use uniform::{DeleteMix, UniformGenerator};
pub use zipf::{AliasTable, ZipfGenerator};
