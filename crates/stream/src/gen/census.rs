//! Census-like workload — substitute for the CPS data set.
//!
//! The paper's real-life experiment joins two numeric attributes of the
//! Current Population Survey (September 2002; 159,434 records): *weekly
//! wage* and *weekly wage overtime*, each over a domain of 2^16. That
//! extract is not redistributable, so we synthesize records with the same
//! statistical fingerprints the experiment depends on:
//!
//! * a large point mass at 0 (non-earners / no overtime),
//! * a right-skewed body (log-normal wages, clipped to the domain),
//! * "heaping" on round amounts (people report 400, 500, 750, …),
//! * overtime positively correlated with wage but mostly zero.
//!
//! The join of the two attribute streams is then dominated by the co-heaped
//! round values and the zero mass — the same moderate-skew regime in which
//! the paper reports skimmed sketches at roughly half the error of basic
//! AGMS.

use crate::domain::Domain;
use crate::update::Update;
use rand::Rng;

/// One synthetic survey record.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct CensusRecord {
    /// Weekly wage, in dollars, clipped to the attribute domain.
    pub weekly_wage: u64,
    /// Weekly overtime pay, in dollars, clipped to the attribute domain.
    pub weekly_wage_overtime: u64,
}

/// Generator of census-like records over a 2^16 attribute domain.
#[derive(Debug, Clone)]
pub struct CensusGenerator {
    domain: Domain,
    /// Probability that a record has zero wage.
    p_zero_wage: f64,
    /// Probability that a wage earner has zero overtime.
    p_zero_overtime: f64,
    /// Log-normal location of the wage body.
    mu: f64,
    /// Log-normal scale of the wage body.
    sigma: f64,
}

impl Default for CensusGenerator {
    fn default() -> Self {
        Self {
            domain: Domain::with_log2(16),
            p_zero_wage: 0.42,
            p_zero_overtime: 0.78,
            // exp(6.3) ≈ 545 $/week median, matching the CPS-era ballpark.
            mu: 6.3,
            sigma: 0.7,
        }
    }
}

impl CensusGenerator {
    /// Default CPS-like parameters over domain 2^16.
    pub fn new() -> Self {
        Self::default()
    }

    /// The attribute domain (shared by both attributes).
    pub fn domain(&self) -> Domain {
        self.domain
    }

    /// Standard-normal draw via Box–Muller (avoids pulling in
    /// `rand_distr`; two uniforms per deviate, second one discarded).
    fn normal<R: Rng>(rng: &mut R) -> f64 {
        let u1: f64 = rng.gen_range(f64::EPSILON..1.0);
        let u2: f64 = rng.gen::<f64>();
        (-2.0 * u1.ln()).sqrt() * (2.0 * std::f64::consts::PI * u2).cos()
    }

    /// Rounds `x` the way survey respondents do: to the nearest 100 with
    /// probability 0.35, nearest 50 w.p. 0.15, nearest 10 w.p. 0.25, else
    /// exact.
    fn heap<R: Rng>(rng: &mut R, x: u64) -> u64 {
        let p: f64 = rng.gen();
        let q = if p < 0.35 {
            100
        } else if p < 0.50 {
            50
        } else if p < 0.75 {
            10
        } else {
            return x;
        };
        ((x + q / 2) / q) * q
    }

    /// Draws one record.
    pub fn sample<R: Rng>(&self, rng: &mut R) -> CensusRecord {
        let max = self.domain.size() - 1;
        let wage = if rng.gen::<f64>() < self.p_zero_wage {
            0
        } else {
            let w = (self.mu + self.sigma * Self::normal(rng)).exp();
            Self::heap(rng, (w as u64).min(max)).min(max)
        };
        let overtime = if wage == 0 || rng.gen::<f64>() < self.p_zero_overtime {
            0
        } else {
            // Overtime is a noisy 5–25% slice of wage, heaped the same way.
            let frac = rng.gen_range(0.05..0.25);
            let noise = (0.25 * Self::normal(rng)).exp();
            let o = (wage as f64 * frac * noise) as u64;
            Self::heap(rng, o.min(max)).min(max)
        };
        CensusRecord {
            weekly_wage: wage,
            weekly_wage_overtime: overtime,
        }
    }

    /// Draws `n` records.
    pub fn generate<R: Rng>(&self, rng: &mut R, n: usize) -> Vec<CensusRecord> {
        (0..n).map(|_| self.sample(rng)).collect()
    }

    /// Projects records onto the two attribute update streams
    /// `(wage stream, overtime stream)` — the exact shape of the paper's
    /// Census join experiment.
    pub fn attribute_streams(records: &[CensusRecord]) -> (Vec<Update>, Vec<Update>) {
        let f = records
            .iter()
            .map(|r| Update::insert(r.weekly_wage))
            .collect();
        let g = records
            .iter()
            .map(|r| Update::insert(r.weekly_wage_overtime))
            .collect();
        (f, g)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::freq::FrequencyVector;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    #[test]
    fn records_stay_in_domain() {
        let g = CensusGenerator::new();
        let mut rng = StdRng::seed_from_u64(3);
        for r in g.generate(&mut rng, 20_000) {
            assert!(g.domain().contains(r.weekly_wage));
            assert!(g.domain().contains(r.weekly_wage_overtime));
        }
    }

    #[test]
    fn zero_masses_are_as_configured() {
        let g = CensusGenerator::new();
        let mut rng = StdRng::seed_from_u64(4);
        let recs = g.generate(&mut rng, 50_000);
        let zero_wage =
            recs.iter().filter(|r| r.weekly_wage == 0).count() as f64 / recs.len() as f64;
        assert!((zero_wage - 0.42).abs() < 0.02, "zero_wage={zero_wage}");
        let zero_ot =
            recs.iter().filter(|r| r.weekly_wage_overtime == 0).count() as f64 / recs.len() as f64;
        // 0.42 + 0.58*0.78 ≈ 0.872
        assert!((zero_ot - 0.872).abs() < 0.03, "zero_ot={zero_ot}");
    }

    #[test]
    fn heaping_creates_round_value_spikes() {
        let g = CensusGenerator::new();
        let mut rng = StdRng::seed_from_u64(5);
        let recs = g.generate(&mut rng, 50_000);
        let fv = FrequencyVector::from_updates(
            g.domain(),
            recs.iter().map(|r| Update::insert(r.weekly_wage)),
        );
        // Among nonzero wages, multiples of 100 should be strongly
        // over-represented versus a smooth distribution.
        let hundreds: i64 = (1..=20).map(|k| fv.get(k * 100)).sum();
        let offsets: i64 = (1..=20).map(|k| fv.get(k * 100 + 1)).sum();
        assert!(
            hundreds > 10 * offsets.max(1),
            "hundreds={hundreds} offsets={offsets}"
        );
    }

    #[test]
    fn overtime_correlates_with_wage() {
        let g = CensusGenerator::new();
        let mut rng = StdRng::seed_from_u64(6);
        let recs: Vec<_> = g
            .generate(&mut rng, 50_000)
            .into_iter()
            .filter(|r| r.weekly_wage_overtime > 0)
            .collect();
        assert!(recs.len() > 1000);
        // Mean overtime of the top wage quartile must exceed the bottom's.
        let mut wages: Vec<_> = recs.iter().map(|r| r.weekly_wage).collect();
        wages.sort_unstable();
        let q3 = wages[3 * wages.len() / 4];
        let q1 = wages[wages.len() / 4];
        let hi: f64 = recs
            .iter()
            .filter(|r| r.weekly_wage >= q3)
            .map(|r| r.weekly_wage_overtime as f64)
            .sum::<f64>()
            / recs.iter().filter(|r| r.weekly_wage >= q3).count() as f64;
        let lo: f64 = recs
            .iter()
            .filter(|r| r.weekly_wage <= q1)
            .map(|r| r.weekly_wage_overtime as f64)
            .sum::<f64>()
            / recs.iter().filter(|r| r.weekly_wage <= q1).count() as f64;
        assert!(hi > 1.5 * lo, "hi={hi} lo={lo}");
    }

    #[test]
    fn attribute_streams_align_with_records() {
        let g = CensusGenerator::new();
        let mut rng = StdRng::seed_from_u64(7);
        let recs = g.generate(&mut rng, 100);
        let (f, o) = CensusGenerator::attribute_streams(&recs);
        assert_eq!(f.len(), 100);
        assert_eq!(o.len(), 100);
        assert_eq!(f[17].value, recs[17].weekly_wage);
        assert_eq!(o[17].value, recs[17].weekly_wage_overtime);
    }
}
