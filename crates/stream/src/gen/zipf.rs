//! Zipfian stream generation — the paper's synthetic workload.
//!
//! The evaluation section joins a Zipf(z) stream with a *right-shifted*
//! Zipf(z) stream over a domain of 2^18 values: the shifted stream's
//! frequency vector is the original one rotated right by `shift`, so the
//! shift parameter is a knob that monotonically shrinks the join size
//! (shift 0 ⇒ self-join; larger shifts push the dense heads apart).
//!
//! Sampling uses Walker's alias method: O(N) setup, O(1) per draw, exact
//! (no truncated-CDF bias), which matters when drawing millions of elements
//! per configuration on the experiment grid.

use crate::domain::Domain;
use crate::update::Update;
use rand::Rng;

/// Walker alias table for an arbitrary discrete distribution.
#[derive(Debug, Clone)]
pub struct AliasTable {
    prob: Vec<f64>,
    alias: Vec<u32>,
}

impl AliasTable {
    /// Builds the table from non-negative weights (need not be normalized).
    pub fn new(weights: &[f64]) -> Self {
        let n = weights.len();
        assert!(n > 0, "alias table needs at least one outcome");
        assert!(n <= u32::MAX as usize, "alias table too large");
        let total: f64 = weights.iter().sum();
        assert!(
            total > 0.0 && weights.iter().all(|w| *w >= 0.0 && w.is_finite()),
            "weights must be non-negative, finite, not all zero"
        );

        let mut prob: Vec<f64> = weights.iter().map(|w| w * n as f64 / total).collect();
        let mut alias = vec![0u32; n];
        let mut small: Vec<u32> = Vec::new();
        let mut large: Vec<u32> = Vec::new();
        for (i, &p) in prob.iter().enumerate() {
            if p < 1.0 {
                small.push(i as u32);
            } else {
                large.push(i as u32);
            }
        }
        while let (Some(s), Some(l)) = (small.pop(), large.pop()) {
            alias[s as usize] = l;
            let leftover = prob[l as usize] + prob[s as usize] - 1.0;
            prob[l as usize] = leftover;
            if leftover < 1.0 {
                small.push(l);
            } else {
                large.push(l);
            }
        }
        // Numerical leftovers: both stacks drain to probability 1.
        for i in small.into_iter().chain(large) {
            prob[i as usize] = 1.0;
        }
        Self { prob, alias }
    }

    /// Number of outcomes.
    pub fn len(&self) -> usize {
        self.prob.len()
    }

    /// Whether the table is empty (never true post-construction).
    pub fn is_empty(&self) -> bool {
        self.prob.is_empty()
    }

    /// Draws one outcome index.
    #[inline]
    pub fn sample<R: Rng>(&self, rng: &mut R) -> usize {
        let i = rng.gen_range(0..self.prob.len());
        if rng.gen::<f64>() < self.prob[i] {
            i
        } else {
            self.alias[i] as usize
        }
    }
}

/// A Zipf(z) element generator over a [`Domain`], optionally right-shifted.
///
/// Value `v` receives probability ∝ `1 / (rank(v))^z` where
/// `rank(v) = ((v - shift) mod N) + 1`; with `shift = 0` value 0 is the
/// most frequent, matching the usual Zipf convention.
#[derive(Debug, Clone)]
pub struct ZipfGenerator {
    domain: Domain,
    shift: u64,
    table: AliasTable,
    z: f64,
}

impl ZipfGenerator {
    /// Creates a generator with skew `z ≥ 0` and right-shift `shift`.
    pub fn new(domain: Domain, z: f64, shift: u64) -> Self {
        assert!(z >= 0.0 && z.is_finite(), "zipf parameter must be >= 0");
        let n = domain.size();
        assert!(
            n <= 1 << 28,
            "alias table over domain 2^{} too large",
            domain.log2_size()
        );
        let weights: Vec<f64> = (1..=n).map(|r| (r as f64).powf(-z)).collect();
        Self {
            domain,
            shift: shift % n,
            table: AliasTable::new(&weights),
            z,
        }
    }

    /// The skew parameter.
    pub fn z(&self) -> f64 {
        self.z
    }

    /// The right-shift applied to sampled ranks.
    pub fn shift(&self) -> u64 {
        self.shift
    }

    /// The generator's domain.
    pub fn domain(&self) -> Domain {
        self.domain
    }

    /// Draws a single domain value.
    #[inline]
    pub fn sample<R: Rng>(&self, rng: &mut R) -> u64 {
        let rank0 = self.table.sample(rng) as u64; // rank - 1
        (rank0 + self.shift) & (self.domain.size() - 1)
    }

    /// Draws `n` unit-insert updates.
    pub fn generate<R: Rng>(&self, rng: &mut R, n: usize) -> Vec<Update> {
        (0..n).map(|_| Update::insert(self.sample(rng))).collect()
    }

    /// The *expected* frequency vector after `n` draws — i.e. `n · pmf`.
    /// Useful for deterministic tests of downstream estimators.
    pub fn expected_frequencies(&self, n: u64) -> Vec<f64> {
        let size = self.domain.size();
        let norm: f64 = (1..=size).map(|r| (r as f64).powf(-self.z)).sum();
        let mut out = vec![0.0; size as usize];
        for r in 1..=size {
            let v = ((r - 1 + self.shift) & (size - 1)) as usize;
            out[v] = n as f64 * (r as f64).powf(-self.z) / norm;
        }
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    #[test]
    fn alias_table_matches_weights() {
        let weights = [1.0, 2.0, 3.0, 4.0];
        let table = AliasTable::new(&weights);
        let mut rng = StdRng::seed_from_u64(1);
        let n = 200_000;
        let mut counts = [0u64; 4];
        for _ in 0..n {
            counts[table.sample(&mut rng)] += 1;
        }
        for (i, &c) in counts.iter().enumerate() {
            let got = c as f64 / n as f64;
            let want = weights[i] / 10.0;
            assert!((got - want).abs() < 0.01, "i={i} got={got} want={want}");
        }
    }

    #[test]
    #[should_panic(expected = "non-negative")]
    fn alias_table_rejects_negative() {
        let _ = AliasTable::new(&[1.0, -0.5]);
    }

    #[test]
    fn zipf_head_dominates() {
        let d = Domain::with_log2(10);
        let g = ZipfGenerator::new(d, 1.0, 0);
        let mut rng = StdRng::seed_from_u64(2);
        let mut head = 0u64;
        let n = 100_000;
        for _ in 0..n {
            if g.sample(&mut rng) == 0 {
                head += 1;
            }
        }
        // P(value 0) = 1/H_1024 ≈ 0.133 for z=1.0, N=1024.
        let frac = head as f64 / n as f64;
        assert!((0.11..0.16).contains(&frac), "frac={frac}");
    }

    #[test]
    fn shift_rotates_frequencies() {
        let d = Domain::with_log2(8);
        let base = ZipfGenerator::new(d, 1.2, 0).expected_frequencies(1000);
        let shifted = ZipfGenerator::new(d, 1.2, 10).expected_frequencies(1000);
        for (v, &sv) in shifted.iter().enumerate() {
            let src = (v + d.size() as usize - 10) % d.size() as usize;
            assert!((sv - base[src]).abs() < 1e-9);
        }
    }

    #[test]
    fn zero_skew_is_uniform() {
        let d = Domain::with_log2(6);
        let e = ZipfGenerator::new(d, 0.0, 0).expected_frequencies(6400);
        for &x in &e {
            assert!((x - 100.0).abs() < 1e-9);
        }
    }

    #[test]
    fn expected_frequencies_sum_to_n() {
        let d = Domain::with_log2(8);
        let e = ZipfGenerator::new(d, 1.5, 33).expected_frequencies(12345);
        let sum: f64 = e.iter().sum();
        assert!((sum - 12345.0).abs() < 1e-6);
    }

    #[test]
    fn generate_is_deterministic_per_seed() {
        let d = Domain::with_log2(8);
        let g = ZipfGenerator::new(d, 1.0, 5);
        let a = g.generate(&mut StdRng::seed_from_u64(9), 100);
        let b = g.generate(&mut StdRng::seed_from_u64(9), 100);
        assert_eq!(a, b);
    }
}
