//! The stream update model.
//!
//! A data stream is an unordered sequence of *updates*. Each update carries
//! a domain value and a signed weight: `+1` for a plain insert, `-1` for a
//! delete, and arbitrary positive weights for SUM-style measure semantics
//! (the paper reduces `SUM_m(F ⋈ G)` to `COUNT` over a stream where each
//! element is repeated `m` times — which is exactly an update of weight
//! `m`).

/// Whether an update adds to or removes from a frequency.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum UpdateKind {
    /// Increases the frequency of the value.
    Insert,
    /// Decreases the frequency of the value.
    Delete,
}

/// One element of an update stream: a domain value plus a signed weight.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct Update {
    /// The domain value `v ∈ [0, N)`.
    pub value: u64,
    /// The signed change to `f(v)`; never zero for a meaningful update.
    pub weight: i64,
}

impl Update {
    /// A unit insert of `value`.
    #[inline]
    pub fn insert(value: u64) -> Self {
        Self { value, weight: 1 }
    }

    /// A unit delete of `value`.
    #[inline]
    pub fn delete(value: u64) -> Self {
        Self { value, weight: -1 }
    }

    /// An insert of `value` carrying measure `m` (SUM semantics).
    #[inline]
    pub fn with_measure(value: u64, m: i64) -> Self {
        Self { value, weight: m }
    }

    /// The kind of this update (by sign of the weight).
    #[inline]
    pub fn kind(&self) -> UpdateKind {
        if self.weight >= 0 {
            UpdateKind::Insert
        } else {
            UpdateKind::Delete
        }
    }

    /// The update that exactly cancels this one.
    #[inline]
    pub fn inverse(&self) -> Self {
        Self {
            value: self.value,
            weight: -self.weight,
        }
    }
}

/// Anything that can absorb a stream of updates in one pass.
///
/// Implemented by every synopsis in the workspace (frequency vectors,
/// AGMS sketches, hash sketches, dyadic sketches, query-engine synopses),
/// so generators, traces, and the harness can drive any of them uniformly.
pub trait StreamSink {
    /// Applies one update.
    fn update(&mut self, update: Update);

    /// Applies a slice of updates.
    ///
    /// The default simply loops over [`StreamSink::update`] and is always
    /// semantically equivalent to it. Sketches override this with
    /// loop-interchanged kernels (outer loop over tables, inner loop over
    /// the batch) that hoist hash constants out of the hot loop and keep
    /// counter rows cache-resident — same counters, far fewer instructions
    /// per update.
    fn update_batch(&mut self, batch: &[Update]) {
        for &u in batch {
            self.update(u);
        }
    }

    /// Applies a batch of updates (override when a bulk path is cheaper).
    fn extend_updates<I: IntoIterator<Item = Update>>(&mut self, updates: I)
    where
        Self: Sized,
    {
        for u in updates {
            self.update(u);
        }
    }
}

/// Feed the same updates to several sinks at once (e.g. the exact reference
/// and a sketch under test).
pub fn broadcast<I>(updates: I, sinks: &mut [&mut dyn StreamSink])
where
    I: IntoIterator<Item = Update>,
{
    for u in updates {
        for s in sinks.iter_mut() {
            s.update(u);
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn insert_delete_kinds() {
        assert_eq!(Update::insert(5).kind(), UpdateKind::Insert);
        assert_eq!(Update::delete(5).kind(), UpdateKind::Delete);
        assert_eq!(Update::with_measure(5, 10).weight, 10);
    }

    #[test]
    fn inverse_cancels() {
        let u = Update::with_measure(9, 7);
        let v = u.inverse();
        assert_eq!(u.value, v.value);
        assert_eq!(u.weight + v.weight, 0);
        assert_eq!(v.inverse(), u);
    }

    struct Counter(i64);
    impl StreamSink for Counter {
        fn update(&mut self, u: Update) {
            self.0 += u.weight;
        }
    }

    #[test]
    fn broadcast_feeds_all_sinks() {
        let mut a = Counter(0);
        let mut b = Counter(0);
        broadcast(
            [Update::insert(1), Update::insert(2), Update::delete(3)],
            &mut [&mut a, &mut b],
        );
        assert_eq!(a.0, 1);
        assert_eq!(b.0, 1);
    }

    #[test]
    fn extend_updates_default_path() {
        let mut c = Counter(0);
        c.extend_updates((0..10).map(Update::insert));
        assert_eq!(c.0, 10);
    }

    #[test]
    fn update_batch_default_matches_loop() {
        let batch: Vec<Update> = (0..10)
            .map(|v| Update::with_measure(v, if v % 3 == 0 { -2 } else { 5 }))
            .collect();
        let mut a = Counter(0);
        let mut b = Counter(0);
        a.update_batch(&batch);
        for &u in &batch {
            b.update(u);
        }
        assert_eq!(a.0, b.0);
    }

    #[test]
    fn update_batch_is_object_safe() {
        let mut c = Counter(0);
        let sink: &mut dyn StreamSink = &mut c;
        sink.update_batch(&[Update::insert(1), Update::delete(2)]);
        assert_eq!(c.0, 0);
    }
}
