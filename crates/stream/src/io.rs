//! File-backed stream traces.
//!
//! The in-memory codec in [`crate::trace`] suits shipping buffers; this
//! module streams traces to and from disk so paper-scale workloads (4M
//! updates/stream) can be generated once and replayed across many harness
//! runs without regeneration cost or holding everything in memory.
//! [`TraceWriter`] appends incrementally; [`TraceReader`] is an iterator
//! that decodes one update at a time from a buffered reader.
//!
//! On-disk format = the [`crate::trace`] wire format with a `u64::MAX`
//! record count sentinel in the header (count unknown while appending),
//! terminated by EOF.

use crate::domain::Domain;
use crate::trace::TraceError;
use crate::update::Update;
use std::fs::File;
use std::io::{self, BufReader, BufWriter, Read, Write};
use std::path::Path;

const MAGIC: &[u8; 4] = b"SSTR";
const VERSION: u16 = 1;
const STREAMING_COUNT: u64 = u64::MAX;

/// Errors from file-trace operations.
#[derive(Debug)]
pub enum TraceIoError {
    /// Underlying I/O failure.
    Io(io::Error),
    /// Malformed trace content.
    Format(TraceError),
}

impl From<io::Error> for TraceIoError {
    fn from(e: io::Error) -> Self {
        TraceIoError::Io(e)
    }
}

impl From<TraceError> for TraceIoError {
    fn from(e: TraceError) -> Self {
        TraceIoError::Format(e)
    }
}

impl std::fmt::Display for TraceIoError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            TraceIoError::Io(e) => write!(f, "trace io error: {e}"),
            TraceIoError::Format(e) => write!(f, "trace format error: {e}"),
        }
    }
}

impl std::error::Error for TraceIoError {}

fn write_varint<W: Write>(w: &mut W, mut x: u64) -> io::Result<()> {
    loop {
        let byte = (x & 0x7F) as u8;
        x >>= 7;
        if x == 0 {
            return w.write_all(&[byte]);
        }
        w.write_all(&[byte | 0x80])?;
    }
}

/// Reads a varint; `Ok(None)` on clean EOF at a record boundary.
fn read_varint<R: Read>(r: &mut R, at_boundary: bool) -> Result<Option<u64>, TraceIoError> {
    let mut x = 0u64;
    for (i, shift) in (0..64).step_by(7).enumerate() {
        let mut byte = [0u8; 1];
        match r.read(&mut byte)? {
            0 => {
                return if i == 0 && at_boundary {
                    Ok(None)
                } else {
                    Err(TraceError::Truncated.into())
                }
            }
            _ => {
                x |= ((byte[0] & 0x7F) as u64) << shift;
                if byte[0] & 0x80 == 0 {
                    return Ok(Some(x));
                }
            }
        }
    }
    Err(TraceError::MalformedVarint.into())
}

#[inline]
fn zigzag(w: i64) -> u64 {
    ((w << 1) ^ (w >> 63)) as u64
}

#[inline]
fn unzigzag(z: u64) -> i64 {
    ((z >> 1) as i64) ^ -((z & 1) as i64)
}

/// Incrementally writes a trace file.
#[derive(Debug)]
pub struct TraceWriter {
    out: BufWriter<File>,
    domain: Domain,
    written: u64,
}

impl TraceWriter {
    /// Creates (truncates) `path` and writes the streaming header.
    pub fn create<P: AsRef<Path>>(path: P, domain: Domain) -> Result<Self, TraceIoError> {
        let mut out = BufWriter::new(File::create(path)?);
        out.write_all(MAGIC)?;
        out.write_all(&VERSION.to_le_bytes())?;
        out.write_all(&(domain.log2_size() as u16).to_le_bytes())?;
        out.write_all(&STREAMING_COUNT.to_le_bytes())?;
        Ok(Self {
            out,
            domain,
            written: 0,
        })
    }

    /// Appends one update.
    pub fn write(&mut self, u: Update) -> Result<(), TraceIoError> {
        debug_assert!(self.domain.contains(u.value));
        write_varint(&mut self.out, u.value)?;
        write_varint(&mut self.out, zigzag(u.weight))?;
        self.written += 1;
        Ok(())
    }

    /// Appends a batch.
    pub fn write_all<I: IntoIterator<Item = Update>>(&mut self, us: I) -> Result<(), TraceIoError> {
        for u in us {
            self.write(u)?;
        }
        Ok(())
    }

    /// Updates written so far.
    pub fn written(&self) -> u64 {
        self.written
    }

    /// Flushes and closes the file.
    pub fn finish(mut self) -> Result<u64, TraceIoError> {
        self.out.flush()?;
        Ok(self.written)
    }
}

/// Streams updates back out of a trace file.
#[derive(Debug)]
pub struct TraceReader {
    input: BufReader<File>,
    domain: Domain,
    /// Records remaining when the header carried an exact count;
    /// `None` in streaming (EOF-terminated) mode.
    remaining: Option<u64>,
}

impl TraceReader {
    /// Opens `path` and parses the header.
    pub fn open<P: AsRef<Path>>(path: P) -> Result<Self, TraceIoError> {
        let mut input = BufReader::new(File::open(path)?);
        let mut header = [0u8; 16];
        input.read_exact(&mut header).map_err(|e| {
            if e.kind() == io::ErrorKind::UnexpectedEof {
                TraceIoError::Format(TraceError::Truncated)
            } else {
                TraceIoError::Io(e)
            }
        })?;
        if &header[0..4] != MAGIC {
            return Err(TraceError::BadMagic.into());
        }
        let version = u16::from_le_bytes([header[4], header[5]]);
        if version != VERSION {
            return Err(TraceError::BadVersion(version).into());
        }
        let log2 = u16::from_le_bytes([header[6], header[7]]);
        let count = u64::from_le_bytes(header[8..16].try_into().expect("8 bytes"));
        Ok(Self {
            input,
            domain: Domain::with_log2(log2 as u32),
            remaining: (count != STREAMING_COUNT).then_some(count),
        })
    }

    /// The trace's declared domain.
    pub fn domain(&self) -> Domain {
        self.domain
    }

    /// Reads the next update; `Ok(None)` at end of trace.
    pub fn next_update(&mut self) -> Result<Option<Update>, TraceIoError> {
        if self.remaining == Some(0) {
            return Ok(None);
        }
        let Some(value) = read_varint(&mut self.input, true)? else {
            return if self.remaining.is_none() {
                Ok(None)
            } else {
                Err(TraceError::Truncated.into())
            };
        };
        if !self.domain.contains(value) {
            return Err(TraceError::ValueOutOfDomain(value).into());
        }
        let weight = unzigzag(read_varint(&mut self.input, false)?.ok_or(TraceError::Truncated)?);
        if let Some(r) = &mut self.remaining {
            *r -= 1;
        }
        Ok(Some(Update { value, weight }))
    }
}

impl Iterator for TraceReader {
    type Item = Result<Update, TraceIoError>;

    fn next(&mut self) -> Option<Self::Item> {
        self.next_update().transpose()
    }
}

/// Convenience: writes a whole slice to `path`.
pub fn write_trace_file<P: AsRef<Path>>(
    path: P,
    domain: Domain,
    updates: &[Update],
) -> Result<(), TraceIoError> {
    let mut w = TraceWriter::create(path, domain)?;
    w.write_all(updates.iter().copied())?;
    w.finish()?;
    Ok(())
}

/// Convenience: reads a whole trace into memory.
pub fn read_trace_file<P: AsRef<Path>>(path: P) -> Result<(Domain, Vec<Update>), TraceIoError> {
    let mut r = TraceReader::open(path)?;
    let domain = r.domain();
    let mut out = Vec::new();
    while let Some(u) = r.next_update()? {
        out.push(u);
    }
    Ok((domain, out))
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::io::Seek;

    fn tmp(name: &str) -> std::path::PathBuf {
        let mut p = std::env::temp_dir();
        p.push(format!("ss-trace-{}-{name}", std::process::id()));
        p
    }

    #[test]
    fn round_trip_through_a_file() {
        let path = tmp("roundtrip");
        let d = Domain::with_log2(10);
        let updates: Vec<Update> = (0..1000)
            .map(|i| Update {
                value: (i * 31) % 1024,
                weight: (i as i64 % 9) - 4,
            })
            .collect();
        write_trace_file(&path, d, &updates).unwrap();
        let (d2, back) = read_trace_file(&path).unwrap();
        assert_eq!(d2, d);
        assert_eq!(back, updates);
        std::fs::remove_file(&path).ok();
    }

    #[test]
    fn streaming_reader_yields_incrementally() {
        let path = tmp("incremental");
        let d = Domain::with_log2(6);
        let mut w = TraceWriter::create(&path, d).unwrap();
        for v in 0..10u64 {
            w.write(Update::insert(v)).unwrap();
        }
        assert_eq!(w.written(), 10);
        w.finish().unwrap();
        let r = TraceReader::open(&path).unwrap();
        let vals: Vec<u64> = r.map(|u| u.unwrap().value).collect();
        assert_eq!(vals, (0..10u64).collect::<Vec<_>>());
        std::fs::remove_file(&path).ok();
    }

    #[test]
    fn empty_trace_is_fine() {
        let path = tmp("empty");
        write_trace_file(&path, Domain::with_log2(4), &[]).unwrap();
        let (_, back) = read_trace_file(&path).unwrap();
        assert!(back.is_empty());
        std::fs::remove_file(&path).ok();
    }

    #[test]
    fn detects_truncated_record() {
        let path = tmp("truncated");
        let d = Domain::with_log2(4);
        write_trace_file(&path, d, &[Update::with_measure(3, 1000)]).unwrap();
        // Chop the last byte off.
        let f = std::fs::OpenOptions::new().write(true).open(&path).unwrap();
        let len = f.metadata().unwrap().len();
        f.set_len(len - 1).unwrap();
        drop(f);
        let err = read_trace_file(&path).unwrap_err();
        assert!(
            matches!(err, TraceIoError::Format(TraceError::Truncated)),
            "{err}"
        );
        std::fs::remove_file(&path).ok();
    }

    #[test]
    fn detects_bad_magic() {
        let path = tmp("badmagic");
        write_trace_file(&path, Domain::with_log2(4), &[]).unwrap();
        let mut f = std::fs::OpenOptions::new().write(true).open(&path).unwrap();
        f.rewind().unwrap();
        f.write_all(b"XXXX").unwrap();
        drop(f);
        let err = TraceReader::open(&path).unwrap_err();
        assert!(matches!(err, TraceIoError::Format(TraceError::BadMagic)));
        std::fs::remove_file(&path).ok();
    }

    #[test]
    fn rejects_out_of_domain_values() {
        let path = tmp("ood");
        // Write under a large domain, then doctor the header to claim a
        // tiny one.
        let d = Domain::with_log2(10);
        write_trace_file(&path, d, &[Update::insert(512)]).unwrap();
        let mut f = std::fs::OpenOptions::new().write(true).open(&path).unwrap();
        f.seek(io::SeekFrom::Start(6)).unwrap();
        f.write_all(&2u16.to_le_bytes()).unwrap(); // domain 2^2
        drop(f);
        let err = read_trace_file(&path).unwrap_err();
        assert!(matches!(
            err,
            TraceIoError::Format(TraceError::ValueOutOfDomain(512))
        ));
        std::fs::remove_file(&path).ok();
    }
}
